"""Setup shim for environments without the `wheel` package.

The project is fully described in pyproject.toml; this file only enables
legacy `pip install -e . --no-use-pep517` / `python setup.py develop`
workflows on offline machines.
"""

from setuptools import setup

setup()
