"""Interprocedural project model for repro-lint: symbols + call graph.

This module turns a set of python trees into a queryable *project*:

* **Symbol table** — every module, class, and function (including methods
  and nested ``def``\\ s) gets a dotted qualname (``repro.sim.kernel.
  Simulator.step``); imports are resolved across modules, following
  ``__init__`` re-exports and function-level imports, so a name used in
  one file links to its definition in another.
* **Call graph** — caller→callee edges for direct calls, constructor
  calls (``Simulator(...)`` links to ``Simulator.__init__``), and method
  calls resolved by receiver class.  Receiver types come from a light
  type inference: parameter annotations (``Optional``/``| None``
  unwrapped), annotated assignments, local ``x = ClassName(...)``
  constructor bindings, annotated return types of called functions, and
  ``self.attr`` types harvested from class bodies and ``__init__``.
  Method calls on a typed receiver also link to subclass overrides
  (class-hierarchy analysis), so dispatching through a base class does
  not lose reachability.  Function *references* (``worker=fn``) create
  edges too — passing a callable counts as potentially calling it.
* **Reachability** — BFS over the edges from any seed set; the FORK/KEY
  rule families in :mod:`tools.analysis.rules` seed it from worker entry
  points, ``@hot_path`` functions, and simulation step roots.

Everything is name-based and best-effort: unresolved externals (numpy,
stdlib) simply contribute no edges.  The model deliberately
over-approximates (a referenced function counts as called, a nested
``def`` is reachable from its definer) — for safety rules a false edge
is cheap, a missed edge is a silent contract violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from tools.analysis.core import FileContext, iter_python_files, make_context

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "CallSite",
    "Project",
    "build_project",
    "dotted_parts",
    "call_keywords",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Typing containers whose subscripts do not name a concrete class.
_GENERIC_CONTAINERS = {
    "List", "Dict", "Set", "Tuple", "Sequence", "Iterable", "Iterator",
    "Mapping", "MutableMapping", "FrozenSet", "Deque", "Callable", "Type",
    "list", "dict", "set", "tuple", "frozenset", "type",
}


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` expression -> ("a", "b", "c"), or None if not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_keywords(call: ast.Call) -> Dict[str, ast.expr]:
    """Keyword arguments of a call as name -> value expression (no **kwargs)."""
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


def _decorator_names(node: FunctionNode) -> Set[str]:
    names: Set[str] = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        parts = dotted_parts(target)
        if parts:
            names.add(parts[-1])
    return names


def walk_body(fn: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested defs/lambdas."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (*_FUNCTION_NODES, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class CallSite:
    """One resolved ``ast.Call`` inside a function."""

    caller: str
    node: ast.Call
    callees: Tuple[str, ...]


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    rel_path: str
    node: FunctionNode
    class_qualname: Optional[str] = None
    parent: Optional[str] = None  # enclosing function qualname (nested def)
    decorators: Set[str] = field(default_factory=set)
    imports: Dict[str, str] = field(default_factory=dict)  # function-level
    local_names: Set[str] = field(default_factory=set)
    _local_types: Optional[Dict[str, str]] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition: methods, resolved bases, attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef
    base_exprs: List[ast.expr] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)  # resolved project classes
    methods: Dict[str, str] = field(default_factory=dict)
    #: annotated class-body fields, in declaration order (dataclass fields)
    fields: List[str] = field(default_factory=list)
    #: attribute name -> class qualname (annotations + __init__ inference)
    attr_types: Dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False


@dataclass
class ModuleInfo:
    """One parsed module: imports, module-level names, file context."""

    name: str
    path: Path
    rel_path: str
    tree: ast.Module
    ctx: FileContext
    imports: Dict[str, str] = field(default_factory=dict)
    #: names bound at module level by assignment (constants and state)
    module_names: Set[str] = field(default_factory=set)
    #: module-level simple assignments: name -> value expression
    constants: Dict[str, ast.expr] = field(default_factory=dict)
    #: aliases bound by ``import x[.y]`` (module objects, not symbols)
    module_aliases: Set[str] = field(default_factory=set)


def _module_name(file_path: Path) -> str:
    """Dotted module name by walking up while ``__init__.py`` exists."""
    parts: List[str] = [] if file_path.stem == "__init__" else [file_path.stem]
    directory = file_path.parent
    while (directory / "__init__.py").exists() and directory.name:
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) or file_path.stem


class Project:
    """Symbol tables + call graph over a set of parsed modules."""

    def __init__(self, repo_root: Path) -> None:
        self.repo_root = repo_root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.call_sites: List[CallSite] = []
        #: method name -> class qualnames defining it
        self.method_index: Dict[str, List[str]] = {}
        #: class qualname -> direct subclasses
        self.subclasses: Dict[str, List[str]] = {}
        #: parent function qualname -> {name: nested function qualname}
        self.nested: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # symbol resolution
    # ------------------------------------------------------------------

    def resolve_global(
        self, dotted: str, _visited: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve an absolute dotted name to a project qualname.

        Follows re-exports: if ``repro.faults`` does ``from .plan import
        FaultPlan``, then ``repro.faults.FaultPlan`` resolves to
        ``repro.faults.plan.FaultPlan``.  Returns None for externals.
        """
        visited = _visited if _visited is not None else set()
        if dotted in visited:
            return None
        visited.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return prefix
            return self._resolve_in_module(module, tuple(rest), visited)
        return None

    def _resolve_in_module(
        self,
        module: ModuleInfo,
        parts: Tuple[str, ...],
        visited: Set[str],
    ) -> Optional[str]:
        head, rest = parts[0], parts[1:]
        local = f"{module.name}.{head}"
        if local in self.classes:
            if rest:
                method = self.classes[local].methods.get(rest[0])
                if method is not None and not rest[1:]:
                    return method
                return f"{local}." + ".".join(rest)
            return local
        if local in self.functions:
            return local if not rest else f"{local}." + ".".join(rest)
        if head in module.module_names:
            return local if not rest else f"{local}." + ".".join(rest)
        target = module.imports.get(head)
        if target is not None:
            dotted = target if not rest else target + "." + ".".join(rest)
            resolved = self.resolve_global(dotted, visited)
            return resolved
        return None

    def resolve_name(
        self, fn: Optional[FunctionInfo], module: ModuleInfo, parts: Tuple[str, ...]
    ) -> Optional[str]:
        """Resolve a (possibly dotted) name as seen from inside ``fn``.

        Checks nested functions of the enclosing chain (closures), then
        function-level imports, then the module's own symbols/imports.
        """
        head = parts[0]
        scope = fn
        while scope is not None:
            nested = self.nested.get(scope.qualname, {})
            if head in nested and len(parts) == 1:
                return nested[head]
            target = scope.imports.get(head)
            if target is not None:
                dotted = target
                if len(parts) > 1:
                    dotted += "." + ".".join(parts[1:])
                return self.resolve_global(dotted)
            scope = self.functions.get(scope.parent) if scope.parent else None
        return self._resolve_in_module(module, parts, set())

    def resolve_constant_str(
        self,
        module: ModuleInfo,
        name: str,
        fn: Optional[FunctionInfo] = None,
        _visited: Optional[Set[str]] = None,
    ) -> Optional[str]:
        """Resolve ``name`` to a module-level string constant, if possible.

        Follows imports (including function-level ones), so ``FAULTS_ENV``
        used in ``store/keys.py`` resolves to the literal defined in
        ``repro/faults/plan.py`` even through the package re-export.
        """
        visited = _visited if _visited is not None else set()
        key = f"{module.name}:{name}"
        if key in visited:
            return None
        visited.add(key)
        value = module.constants.get(name)
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        target: Optional[str] = None
        scope = fn
        while scope is not None and target is None:
            target = scope.imports.get(name)
            scope = self.functions.get(scope.parent) if scope.parent else None
        if target is None:
            target = module.imports.get(name)
        if target is None:
            return None
        if "." not in target:
            return None
        owner_dotted, attr = target.rsplit(".", 1)
        owner = self._find_module(owner_dotted)
        if owner is not None:
            return self.resolve_constant_str(owner, attr, _visited=visited)
        return None

    def _find_module(self, dotted: str) -> Optional[ModuleInfo]:
        module = self.modules.get(dotted)
        if module is not None:
            return module
        # The dotted path may route through a re-export chain.
        resolved = self.resolve_global(dotted)
        if resolved is not None:
            return self.modules.get(resolved)
        return None

    def resolve_ref(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> Optional[str]:
        """Resolve an expression to a project *function* qualname, if it
        names one (covers ``worker=fn`` style references)."""
        parts = dotted_parts(expr)
        if parts is None:
            return None
        module = self.modules.get(fn.module)
        if module is None:
            return None
        resolved = self.resolve_name(fn, module, parts)
        if resolved is not None and resolved in self.functions:
            return resolved
        return None

    # ------------------------------------------------------------------
    # type inference
    # ------------------------------------------------------------------

    def annotation_class(
        self, module: ModuleInfo, expr: Optional[ast.expr],
        fn: Optional[FunctionInfo] = None,
    ) -> Optional[str]:
        """Class qualname named by a type annotation, or None."""
        if expr is None:
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                expr = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(expr, ast.Subscript):
            parts = dotted_parts(expr.value)
            if parts and parts[-1] == "Optional":
                return self.annotation_class(module, expr.slice, fn)
            if parts and parts[-1] in _GENERIC_CONTAINERS:
                return None
            return None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            return (
                self.annotation_class(module, expr.left, fn)
                or self.annotation_class(module, expr.right, fn)
            )
        parts = dotted_parts(expr)
        if parts is None:
            return None
        if len(parts) == 1 and parts[0] in ("None", "Any"):
            return None
        resolved = self.resolve_name(fn, module, parts)
        if resolved is not None and resolved in self.classes:
            return resolved
        return None

    def _local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        if fn._local_types is not None:
            return fn._local_types
        module = self.modules[fn.module]
        types: Dict[str, str] = {}
        args = fn.node.args
        all_params = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ]
        for param in all_params:
            cls = self.annotation_class(module, param.annotation, fn)
            if cls is not None:
                types[param.arg] = cls
        if fn.class_qualname is not None and all_params:
            first = all_params[0].arg
            if first in ("self", "cls") and "staticmethod" not in fn.decorators:
                types[first] = fn.class_qualname
        for node in walk_body(fn.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                cls = self.annotation_class(module, node.annotation, fn)
                if cls is not None:
                    types[node.target.id] = cls
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                    cls = self._call_result_class(fn, module, node.value)
                    if cls is not None:
                        types.setdefault(target.id, cls)
        fn._local_types = types
        return types

    def _call_result_class(
        self, fn: Optional[FunctionInfo], module: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        parts = dotted_parts(call.func)
        if parts is None:
            return None
        resolved = self.resolve_name(fn, module, parts)
        if resolved is None:
            return None
        if resolved in self.classes:
            return resolved
        callee = self.functions.get(resolved)
        if callee is not None:
            owner = self.modules[callee.module]
            return self.annotation_class(owner, callee.node.returns, callee)
        return None

    def infer_type(self, fn: FunctionInfo, expr: ast.expr) -> Optional[str]:
        """Best-effort class qualname of ``expr`` evaluated inside ``fn``."""
        module = self.modules[fn.module]
        if isinstance(expr, ast.Name):
            scope: Optional[FunctionInfo] = fn
            while scope is not None:
                found = self._local_types(scope).get(expr.id)
                if found is not None:
                    return found
                scope = self.functions.get(scope.parent) if scope.parent else None
            return None
        if isinstance(expr, ast.Attribute):
            base_cls = self.infer_type(fn, expr.value)
            if base_cls is not None:
                for cls_qual in self._mro(base_cls):
                    info = self.classes.get(cls_qual)
                    if info is not None and expr.attr in info.attr_types:
                        return info.attr_types[expr.attr]
            return None
        if isinstance(expr, ast.Call):
            return self._call_result_class(fn, module, expr)
        return None

    def _mro(self, cls_qual: str) -> List[str]:
        """Ancestor chain (self first), cycles guarded."""
        order: List[str] = []
        stack = [cls_qual]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return order

    def _descendants(self, cls_qual: str) -> List[str]:
        out: List[str] = []
        stack = list(self.subclasses.get(cls_qual, []))
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(self.subclasses.get(current, []))
        return out

    def resolve_method(self, cls_qual: str, method: str) -> List[str]:
        """Implementations ``obj.method()`` may dispatch to for ``obj: cls``.

        The defining class (or nearest ancestor) plus any subclass
        overrides — class-hierarchy analysis without instantiation facts.
        """
        targets: List[str] = []
        for ancestor in self._mro(cls_qual):
            info = self.classes.get(ancestor)
            if info is not None and method in info.methods:
                targets.append(info.methods[method])
                break
        for descendant in self._descendants(cls_qual):
            info = self.classes.get(descendant)
            if info is not None and method in info.methods:
                targets.append(info.methods[method])
        return targets

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------

    def reachable(self, seeds: Iterable[str]) -> Set[str]:
        """All function qualnames reachable from ``seeds`` (inclusive)."""
        seen: Set[str] = set()
        stack = [s for s in seeds if s in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.edges.get(current, ()):
                if callee not in seen and callee in self.functions:
                    stack.append(callee)
        return seen

    def functions_matching(self, *suffixes: str) -> List[FunctionInfo]:
        """Functions whose qualname ends with any of ``suffixes``.

        Matching is suffix-based so rules written against the real repo
        layout (``.Simulator.step``) also bind inside fixture projects.
        """
        out: List[FunctionInfo] = []
        for qualname, info in self.functions.items():
            for suffix in suffixes:
                if qualname == suffix.lstrip(".") or qualname.endswith(suffix):
                    out.append(info)
                    break
        return out

    def call_sites_of(self, *suffixes: str) -> Iterator[CallSite]:
        """Call sites whose resolved callee matches any qualname suffix."""
        for site in self.call_sites:
            for callee in site.callees:
                if any(
                    callee == s.lstrip(".") or callee.endswith(s)
                    for s in suffixes
                ):
                    yield site
                    break


# ----------------------------------------------------------------------
# project construction
# ----------------------------------------------------------------------


def build_project(
    paths: Sequence[Path], repo_root: Optional[Path] = None
) -> Project:
    """Parse every python file under ``paths`` into a linked project."""
    root = (repo_root or Path.cwd()).resolve()
    project = Project(root)
    builder = _Builder(project)
    for file_path in iter_python_files(list(paths)):
        builder.add_file(file_path)
    builder.link()
    return project


class _Builder:
    def __init__(self, project: Project) -> None:
        self.project = project

    # -- pass 1: symbols ------------------------------------------------

    def add_file(self, file_path: Path) -> None:
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = make_context(file_path, source, self.project.repo_root)
        except (OSError, SyntaxError):
            return  # per-file pass reports PARSE; the graph just skips it
        name = _module_name(file_path)
        module = ModuleInfo(
            name=name,
            path=file_path,
            rel_path=ctx.rel_path,
            tree=ctx.tree,  # type: ignore[arg-type]
            ctx=ctx,
        )
        self.project.modules[name] = module
        self._collect_imports(module, module.tree, module.imports)
        self._collect_module_level(module)
        for stmt in module.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                self._add_function(module, stmt, parent=None, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)

    def _collect_imports(
        self, module: ModuleInfo, tree: ast.AST, out: Dict[str, str]
    ) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    out[bound] = target
                    module.module_aliases.add(bound)
                    if alias.asname is None and "." in alias.name:
                        # ``import a.b.c`` binds ``a`` but usage is dotted;
                        # remember the full path for prefix resolution.
                        out.setdefault(alias.name, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    out[bound] = f"{base}.{alias.name}" if base else alias.name

    def _import_base(self, module: ModuleInfo, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        if module.path.stem == "__init__":
            package = module.name
            ups = node.level - 1
        else:
            package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
            ups = node.level - 1
        for _ in range(ups):
            package = package.rsplit(".", 1)[0] if "." in package else ""
        if node.module:
            return f"{package}.{node.module}" if package else node.module
        return package

    def _collect_module_level(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    module.module_names.add(target.id)
                    if value is not None:
                        module.constants[target.id] = value

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        deco_names = {
            (dotted_parts(d.func if isinstance(d, ast.Call) else d) or ("",))[-1]
            for d in node.decorator_list
        }
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            node=node,
            base_exprs=list(node.bases),
            is_dataclass="dataclass" in deco_names,
        )
        self.project.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, _FUNCTION_NODES):
                fn = self._add_function(module, stmt, parent=None, cls=qualname)
                info.methods[stmt.name] = fn.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.fields.append(stmt.target.id)

    def _add_function(
        self,
        module: ModuleInfo,
        node: FunctionNode,
        parent: Optional[str],
        cls: Optional[str],
    ) -> FunctionInfo:
        if cls is not None:
            qualname = f"{cls}.{node.name}"
        elif parent is not None:
            qualname = f"{parent}.{node.name}"
        else:
            qualname = f"{module.name}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            rel_path=module.rel_path,
            node=node,
            class_qualname=cls,
            parent=parent,
            decorators=_decorator_names(node),
        )
        self.project.functions[qualname] = info
        if cls is not None:
            self.project.method_index.setdefault(node.name, []).append(cls)
        if parent is not None:
            self.project.nested.setdefault(parent, {})[node.name] = qualname
        # function-level imports and locally bound names
        for child in walk_body(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                self._collect_imports(module, child, info.imports)
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                info.local_names.add(child.id)
        for arg in [
            *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs,
            *( [node.args.vararg] if node.args.vararg else [] ),
            *( [node.args.kwarg] if node.args.kwarg else [] ),
        ]:
            info.local_names.add(arg.arg)
        # nested defs
        for child in walk_body(node):
            if isinstance(child, _FUNCTION_NODES):
                self._add_function(module, child, parent=qualname, cls=None)
        return info

    # -- pass 2: linking ------------------------------------------------

    def link(self) -> None:
        project = self.project
        for cls in project.classes.values():
            module = project.modules[cls.module]
            for base_expr in cls.base_exprs:
                parts = dotted_parts(base_expr)
                if parts is None:
                    continue
                resolved = project.resolve_name(None, module, parts)
                if resolved is not None and resolved in project.classes:
                    cls.bases.append(resolved)
                    project.subclasses.setdefault(resolved, []).append(
                        cls.qualname
                    )
        for cls in project.classes.values():
            self._collect_attr_types(cls)
        for fn in list(project.functions.values()):
            self._link_function(fn)

    def _collect_attr_types(self, cls: ClassInfo) -> None:
        project = self.project
        module = project.modules[cls.module]
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotated = project.annotation_class(module, stmt.annotation)
                if annotated is not None:
                    cls.attr_types[stmt.target.id] = annotated
        init_qual = cls.methods.get("__init__")
        init = project.functions.get(init_qual) if init_qual else None
        if init is None:
            return
        param_types: Dict[str, str] = {}
        for param in [*init.node.args.posonlyargs, *init.node.args.args,
                      *init.node.args.kwonlyargs]:
            annotated = project.annotation_class(module, param.annotation, init)
            if annotated is not None:
                param_types[param.arg] = annotated
        for node in walk_body(init.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                annotated = project.annotation_class(module, annotation, init)
                if annotated is not None:
                    cls.attr_types.setdefault(attr, annotated)
                    continue
            if isinstance(value, ast.Name) and value.id in param_types:
                cls.attr_types.setdefault(attr, param_types[value.id])
            elif isinstance(value, ast.Call):
                result = project._call_result_class(init, module, value)
                if result is not None:
                    cls.attr_types.setdefault(attr, result)

    def _link_function(self, fn: FunctionInfo) -> None:
        project = self.project
        module = project.modules[fn.module]
        edges = project.edges.setdefault(fn.qualname, set())
        # A nested def is conservatively reachable from its definer.
        for nested_qual in project.nested.get(fn.qualname, {}).values():
            edges.add(nested_qual)
        for node in walk_body(fn.node):
            if isinstance(node, ast.Call):
                callees = self._resolve_call(fn, module, node)
                if callees:
                    edges.update(callees)
                project.call_sites.append(
                    CallSite(caller=fn.qualname, node=node, callees=tuple(callees))
                )
                # function references in arguments count as potential calls
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    ref = self._resolve_function_ref(fn, module, arg)
                    if ref is not None:
                        edges.add(ref)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                ref = self._resolve_function_ref(fn, module, node)
                if ref is not None:
                    edges.add(ref)

    def _resolve_function_ref(
        self, fn: FunctionInfo, module: ModuleInfo, expr: ast.expr
    ) -> Optional[str]:
        parts = dotted_parts(expr)
        if parts is None:
            return None
        resolved = self.project.resolve_name(fn, module, parts)
        if resolved is not None and resolved in self.project.functions:
            return resolved
        return None

    def _resolve_call(
        self, fn: FunctionInfo, module: ModuleInfo, call: ast.Call
    ) -> Set[str]:
        project = self.project
        out: Set[str] = set()
        func = call.func
        parts = dotted_parts(func)
        if parts is not None:
            resolved = project.resolve_name(fn, module, parts)
            if resolved is not None:
                if resolved in project.functions:
                    out.add(resolved)
                    return out
                if resolved in project.classes:
                    init = project.classes[resolved].methods.get("__init__")
                    if init is not None:
                        out.add(init)
                    out.add(resolved)  # marker edge to the class qualname
                    return out
        if isinstance(func, ast.Attribute):
            receiver_cls = project.infer_type(fn, func.value)
            if receiver_cls is not None:
                out.update(project.resolve_method(receiver_cls, func.attr))
                if out:
                    return out
            # unique-name fallback: one project class defines this method
            owners = project.method_index.get(func.attr, [])
            if len(owners) == 1:
                out.update(project.resolve_method(owners[0], func.attr))
        return out
