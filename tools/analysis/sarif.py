"""SARIF 2.1.0 output for CI code-scanning integration.

One run, one driver ("repro-lint"), one result per violation.  Paths
are repo-relative URIs (guaranteed by the core driver), so uploads from
any checkout produce identical artifacts.
"""

from __future__ import annotations

import json
from typing import Sequence

from tools.analysis.core import Rule, Violation

__all__ = ["report_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def report_sarif(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> str:
    rule_descriptors = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {
                "text": " ".join((rule.__class__.__doc__ or "").split())
            },
        }
        for rule in rules
    ]
    results = []
    for violation in violations:
        result = {
            "ruleId": violation.rule_id,
            "level": "warning" if violation.rule_id == "IGNORE" else "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": violation.path},
                        "region": {"startLine": max(1, violation.line)},
                    }
                }
            ],
        }
        if violation.symbol:
            result["properties"] = {"symbol": violation.symbol}
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/architecture.md",
                        "rules": rule_descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
