"""``repro-lint``: repo-specific static analysis.

Run as ``python -m tools.analysis src/`` from the repository root; add
``--interprocedural`` to also build the call graph and run the
FORK/KEY/PAR project rules.  See :mod:`tools.analysis.core` for the
per-file framework, :mod:`tools.analysis.callgraph` +
:mod:`tools.analysis.interproc` for the project layer, and
``tools/analysis/rules/`` for the rule set.  ``docs/architecture.md``
documents every rule id, the inline allowlist syntax, the suppression
baseline workflow, and how to add a rule.
"""

from __future__ import annotations

from typing import List, Optional

from tools.analysis.core import (
    FileContext,
    Rule,
    RuleRegistry,
    Violation,
    analyze_paths,
    analyze_source,
    report_json,
)
from tools.analysis.registry import PROJECT_REGISTRY, REGISTRY
import tools.analysis.rules  # noqa: F401  (registers the rule set)
from tools.analysis.callgraph import Project, build_project
from tools.analysis.interproc import (
    ProjectRule,
    analyze_project,
    default_project_rules,
)

__all__ = [
    "FileContext",
    "Project",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "Violation",
    "REGISTRY",
    "PROJECT_REGISTRY",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "build_project",
    "report_json",
    "default_rules",
    "default_project_rules",
]


def default_rules(only: Optional[List[str]] = None) -> List[Rule]:
    """Instantiate the per-file rule set (optionally a subset)."""
    return REGISTRY.instantiate(only)
