"""``repro-lint``: repo-specific static analysis.

Run as ``python -m tools.analysis src/`` from the repository root; see
:mod:`tools.analysis.core` for the framework and ``tools/analysis/rules/``
for the rule set.  ``docs/architecture.md`` documents every rule id, the
inline allowlist syntax, and how to add a rule.
"""

from __future__ import annotations

from typing import List, Optional

from tools.analysis.core import (
    FileContext,
    Rule,
    RuleRegistry,
    Violation,
    analyze_paths,
    analyze_source,
    report_json,
)
from tools.analysis.registry import REGISTRY
import tools.analysis.rules  # noqa: F401  (registers the rule set)

__all__ = [
    "FileContext",
    "Rule",
    "RuleRegistry",
    "Violation",
    "REGISTRY",
    "analyze_paths",
    "analyze_source",
    "report_json",
    "default_rules",
]


def default_rules(only: Optional[List[str]] = None) -> List[Rule]:
    """Instantiate the full registered rule set (optionally a subset)."""
    return REGISTRY.instantiate(only)
