"""The global rule registry shared by all rule modules.

Kept in its own module so ``core`` stays import-cycle-free: rule modules do
``from tools.analysis.registry import REGISTRY`` and decorate their rule
classes with ``@REGISTRY.register``; importing :mod:`tools.analysis.rules`
populates the registry.
"""

from __future__ import annotations

from tools.analysis.core import RuleRegistry

#: Per-file AST rules (DET/UNIT/FLT/HOT): one parsed file at a time.
REGISTRY = RuleRegistry()

#: Interprocedural project rules (FORK/KEY/PAR): run over the whole
#: call graph built by :mod:`tools.analysis.callgraph`; only active with
#: ``python -m tools.analysis --interprocedural``.
PROJECT_REGISTRY = RuleRegistry()
