"""The ``repro-lint`` checker framework.

``repro-lint`` is an AST-based static analyzer with repo-specific rules that
mechanically enforce the invariants the reproduction's headline claims rest
on: deterministic randomness, unambiguous time units, tolerance-based float
comparison, and allocation-lean hot paths.

Architecture
------------
* A **rule** is a small class (subclass of :class:`Rule`) with a stable
  ``rule_id``, a one-line ``summary``, and a ``check(ctx)`` generator that
  yields :class:`Violation` objects for one parsed file.
* A :class:`FileContext` bundles everything a rule may want: the path, the
  source text, the parsed ``ast`` tree, per-line comment text, and the
  repo-relative posix path used for scoping decisions.
* The driver (:func:`analyze_paths`) parses each file once, runs every
  registered rule, and filters violations through the **inline allowlist**:
  a ``# repro-lint: ignore[rule-id]`` (or ``ignore[id1,id2]``) comment on
  the flagged line suppresses those rule ids for that line.  The allowlist
  is statement-aware: a comment anywhere on a multi-line simple statement,
  or on the decorator/signature lines of a ``def``/``class``, covers the
  whole span, so black-style reformatting cannot silently detach a waiver.
  Ignore comments naming a rule id that does not exist are themselves
  reported (pseudo-rule ``IGNORE``) so stale waivers get cleaned up.

Output is ``file:line rule-id message`` per violation plus an optional
machine-readable JSON report (see :func:`report_json`).  Violation paths
are repo-relative posix paths so reports and the suppression baseline are
stable across machines.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "RuleRegistry",
    "analyze_source",
    "analyze_paths",
    "report_json",
    "iter_python_files",
    "relative_path",
    "parse_ignore_ids",
    "known_rule_ids",
    "unknown_ignore_warnings",
    "PSEUDO_RULE_IDS",
]


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line rule-id message``.

    ``path`` is repo-relative (posix separators) whenever the analyzed file
    sits under the repo root, so JSON reports and the suppression baseline
    are identical across checkouts.  ``symbol`` is the dotted name of the
    enclosing function for interprocedural findings (empty for per-file
    rules); the baseline matches on ``(rule_id, path, symbol)`` so entries
    survive unrelated line churn.
    """

    path: str
    line: int
    rule_id: str
    message: str
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule_id} {self.message}"


_IGNORE_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s-]+)\]")


def parse_ignore_ids(comment: str) -> Set[str]:
    """Rule ids named by a ``# repro-lint: ignore[...]`` comment (or empty)."""
    match = _IGNORE_RE.search(comment)
    if not match:
        return set()
    return {part.strip() for part in match.group(1).split(",") if part.strip()}


@dataclass
class FileContext:
    """Everything a rule needs to check one parsed file."""

    path: Path
    source: str
    tree: ast.AST
    #: Repo-relative posix-style path ("src/repro/sim/kernel.py"); rules use
    #: it for scoping (e.g. hot-path rules only fire on marked functions, the
    #: determinism rules exempt ``repro/utils/rng.py``).
    rel_path: str
    #: line number -> comment text (trailing or full-line), via tokenize.
    comments: Dict[int, str] = field(default_factory=dict)
    #: Lazily built line -> suppressed-ids map with statement spans expanded.
    _expanded_ignores: Optional[Dict[int, Set[str]]] = field(
        default=None, repr=False, compare=False
    )

    def ignored_rules_on_line(self, line: int) -> Set[str]:
        """Rule ids suppressed on exactly ``line`` by an allowlist comment."""
        comment = self.comments.get(line)
        if not comment:
            return set()
        return parse_ignore_ids(comment)

    def ignored_rules_for(self, line: int) -> Set[str]:
        """Rule ids suppressed at ``line``, honoring statement spans.

        An ignore comment on any line of a multi-line *simple* statement
        (e.g. a call split across lines) covers the whole statement, and a
        comment on the decorator/signature lines of a ``def``/``class``
        covers that header — but never a compound statement's body, so a
        waiver on an ``if`` cannot blanket everything under it.
        """
        if self._expanded_ignores is None:
            self._expanded_ignores = _expand_ignores(self.tree, self.comments)
        return self._expanded_ignores.get(line, set())

    def ignore_comment_lines(self) -> Dict[int, Set[str]]:
        """Every allowlist comment in the file: line -> ids it names."""
        out: Dict[int, Set[str]] = {}
        for line, comment in self.comments.items():
            ids = parse_ignore_ids(comment)
            if ids:
                out[line] = ids
        return out


def _statement_spans(tree: ast.AST) -> List[tuple]:
    """(start, end) line spans over which an ignore comment is shared.

    Simple statements span their full source range; ``def``/``class`` and
    compound statements (``if``/``for``/``with``/``try``...) span only their
    header — decorators through the line before the first body statement.
    """
    spans: List[tuple] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.decorator_list:
                start = min(start, min(d.lineno for d in node.decorator_list))
            first = node.body[0].lineno if node.body else node.lineno
            end = first - 1 if first > node.lineno else node.lineno
        elif isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # Compound statement: cover the header only, not the body.
            first = body[0].lineno
            end = first - 1 if first > node.lineno else node.lineno
        if end > start:
            spans.append((start, end))
    return spans


def _expand_ignores(
    tree: ast.AST, comments: Dict[int, str]
) -> Dict[int, Set[str]]:
    per_line: Dict[int, Set[str]] = {}
    for line, comment in comments.items():
        ids = parse_ignore_ids(comment)
        if ids:
            per_line[line] = ids
    expanded: Dict[int, Set[str]] = {
        line: set(ids) for line, ids in per_line.items()
    }
    if not per_line:
        return expanded
    for start, end in _statement_spans(tree):
        ids: Set[str] = set()
        for line in range(start, end + 1):
            ids |= per_line.get(line, set())
        if ids:
            for line in range(start, end + 1):
                expanded.setdefault(line, set()).update(ids)
    return expanded


class Rule:
    """Base class for repro-lint rules.

    Subclasses set ``rule_id`` (stable, referenced by allowlist comments and
    fixtures) and ``summary`` (one line, shown by ``--list-rules``), and
    implement :meth:`check`.  The class docstring is the long-form
    documentation surfaced by the CLI.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            message=message,
        )


class RuleRegistry:
    """An ordered collection of rule classes, instantiable as a checker set."""

    def __init__(self) -> None:
        self._rules: List[Type[Rule]] = []

    def register(self, rule_cls: Type[Rule]) -> Type[Rule]:
        """Class decorator: add ``rule_cls`` to the registry."""
        if not rule_cls.rule_id:
            raise ValueError(f"{rule_cls.__name__} has no rule_id")
        if any(r.rule_id == rule_cls.rule_id for r in self._rules):
            raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
        self._rules.append(rule_cls)
        return rule_cls

    def instantiate(
        self, only: Optional[Iterable[str]] = None
    ) -> List[Rule]:
        wanted = set(only) if only is not None else None
        rules = [cls() for cls in self._rules]
        if wanted is None:
            return rules
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
        return [r for r in rules if r.rule_id in wanted]

    @property
    def rule_classes(self) -> List[Type[Rule]]:
        return list(self._rules)


def _collect_comments(source: str) -> Dict[int, str]:
    """Map line number -> comment text using tokenize (string-literal safe)."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse will report the real problem; comments are best-effort.
        pass
    return comments


def relative_path(path: Path, repo_root: Optional[Path] = None) -> str:
    """Repo-relative posix path, falling back to ``path`` as-is outside."""
    try:
        rel = path.resolve().relative_to((repo_root or Path.cwd()).resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def make_context(path: Path, source: str, repo_root: Optional[Path] = None) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=str(path))
    rel_path = relative_path(path, repo_root)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        rel_path=rel_path,
        comments=_collect_comments(source),
    )


#: Pseudo-rule ids emitted by the driver itself (not in any registry).
PSEUDO_RULE_IDS = frozenset({"PARSE", "IGNORE"})


def known_rule_ids() -> Set[str]:
    """Every registered rule id (per-file and project) plus pseudo-rules."""
    # Imported lazily: the registries are populated by the rule modules,
    # which themselves import this module.
    from tools.analysis.registry import PROJECT_REGISTRY, REGISTRY

    ids = {cls.rule_id for cls in REGISTRY.rule_classes}
    ids |= {cls.rule_id for cls in PROJECT_REGISTRY.rule_classes}
    return ids | set(PSEUDO_RULE_IDS)


def unknown_ignore_warnings(
    ctx: FileContext, known: Optional[Set[str]] = None
) -> List[Violation]:
    """``IGNORE`` findings for allowlist comments naming nonexistent rules."""
    known_ids = known if known is not None else known_rule_ids()
    warnings: List[Violation] = []
    for line, ids in sorted(ctx.ignore_comment_lines().items()):
        for rule_id in sorted(ids - known_ids):
            warnings.append(
                Violation(
                    path=ctx.rel_path,
                    line=line,
                    rule_id="IGNORE",
                    message=(
                        f"allowlist comment names unknown rule id "
                        f"{rule_id!r}; remove or fix the stale waiver"
                    ),
                )
            )
    return warnings


def analyze_source(
    source: str,
    rules: Sequence[Rule],
    path: Path = Path("<string>"),
    repo_root: Optional[Path] = None,
    honor_allowlist: bool = True,
) -> List[Violation]:
    """Run ``rules`` over one source string (the unit-test entry point)."""
    ctx = make_context(path, source, repo_root)
    found: List[Violation] = []
    for rule in rules:
        for violation in rule.check(ctx):
            if honor_allowlist and violation.rule_id in ctx.ignored_rules_for(
                violation.line
            ):
                continue
            found.append(violation)
    if honor_allowlist:
        found.extend(unknown_ignore_warnings(ctx))
    found.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return found


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under each path (files pass through directly)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        else:
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())


def analyze_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    repo_root: Optional[Path] = None,
) -> List[Violation]:
    """Analyze every python file under ``paths`` with ``rules``."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            violations.extend(
                analyze_source(source, rules, path=file_path, repo_root=repo_root)
            )
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=relative_path(file_path, repo_root),
                    line=exc.lineno or 1,
                    rule_id="PARSE",
                    message=f"could not parse: {exc.msg}",
                )
            )
    return violations


def report_json(violations: Sequence[Violation], rules: Sequence[Rule]) -> str:
    """Machine-readable report: rule table + violation list + totals."""
    payload = {
        "tool": "repro-lint",
        "rules": [
            {"id": r.rule_id, "summary": r.summary} for r in rules
        ],
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "rule_id": v.rule_id,
                "message": v.message,
                "symbol": v.symbol,
            }
            for v in violations
        ],
        "counts": _count_by_rule(violations),
        "total": len(violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _count_by_rule(violations: Sequence[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for v in violations:
        counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
    return counts
