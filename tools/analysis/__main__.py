"""CLI entry point: ``python -m tools.analysis [paths...]``.

Exit status 0 when clean, 1 when violations were found, 2 on usage
errors.  ``--interprocedural`` additionally builds the project call
graph and runs the FORK/KEY/PAR rule families; findings are filtered
through the committed suppression baseline (``--baseline`` /
``--no-baseline``), and ``--json`` / ``--sarif`` emit machine-readable
reports for CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.analysis import (
    analyze_paths,
    analyze_project,
    default_project_rules,
    default_rules,
    report_json,
)
from tools.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.analysis.callgraph import build_project
from tools.analysis.registry import PROJECT_REGISTRY, REGISTRY
from tools.analysis.rules.parity import DEFAULT_REGISTRY_PATH, update_parity
from tools.analysis.sarif import report_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="repro-lint: determinism / unit-safety / float-equality / "
        "hot-path static analysis, plus interprocedural fork-safety, "
        "cache-key-integrity, and scalar/batch parity checks",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write a machine-readable JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write a SARIF 2.1.0 report ('-' for stdout)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, summary, doc) and exit",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        help="build the call graph and run the FORK/KEY/PAR project rules",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=str(DEFAULT_BASELINE_PATH),
        help="suppression baseline to apply (default: tools/analysis/"
        "baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the suppression baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--update-parity",
        action="store_true",
        help="recompute the scalar/batch parity registry hashes and exit",
    )
    return parser


def _split_rule_ids(spec: Optional[str]) -> Optional[List[str]]:
    if not spec:
        return None
    return [r.strip() for r in spec.split(",") if r.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    only = _split_rule_ids(args.rules)
    file_rule_ids = {cls.rule_id for cls in REGISTRY.rule_classes}
    project_rule_ids = {cls.rule_id for cls in PROJECT_REGISTRY.rule_classes}
    if only is not None:
        unknown = set(only) - file_rule_ids - project_rule_ids
        if unknown:
            print(
                f"error: unknown rule id(s): {sorted(unknown)}",
                file=sys.stderr,
            )
            return 2
    try:
        rules = default_rules(
            None
            if only is None
            else [r for r in only if r in file_rule_ids] or None
        )
        project_rules = default_project_rules(
            None
            if only is None
            else [r for r in only if r in project_rule_ids] or None
        )
    except KeyError as exc:  # pragma: no cover - guarded above
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if only is not None:
        rules = [r for r in rules if r.rule_id in only]
        project_rules = [r for r in project_rules if r.rule_id in only]

    if args.list_rules:
        for rule in [*rules, *project_rules]:
            scope = (
                " (interprocedural)"
                if rule.rule_id in project_rule_ids
                else ""
            )
            print(f"{rule.rule_id}  {rule.summary}{scope}")
            doc = (rule.__class__.__doc__ or "").strip()
            for line in doc.splitlines():
                print(f"    {line.strip()}")
            print()
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    if args.update_parity:
        project = build_project(paths, repo_root=Path.cwd())
        refreshed = update_parity(project, DEFAULT_REGISTRY_PATH)
        if refreshed:
            print(f"parity registry refreshed: {', '.join(sorted(refreshed))}")
        else:
            print("parity registry already up to date")
        return 0

    violations = analyze_paths(paths, rules, repo_root=Path.cwd())
    if args.interprocedural:
        violations.extend(
            analyze_project(paths, project_rules, repo_root=Path.cwd())
        )
        violations.sort(key=lambda v: (v.path, v.line, v.rule_id))

    if args.write_baseline:
        count = write_baseline(violations, Path(args.baseline))
        print(f"baseline written: {count} entr(y/ies) -> {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    if not args.no_baseline and baseline_path.exists():
        entries = load_baseline(baseline_path)
        violations, suppressed, stale = apply_baseline(violations, entries)
        if suppressed:
            print(
                f"repro-lint: {len(suppressed)} finding(s) suppressed by "
                f"baseline {baseline_path}",
                file=sys.stderr,
            )
        for entry in stale:
            print(
                f"repro-lint: stale baseline entry "
                f"{entry.rule_id} {entry.path} {entry.symbol!r} "
                f"(no longer fires; remove it)",
                file=sys.stderr,
            )

    for violation in violations:
        print(violation.render())

    all_rules = [*rules, *project_rules] if args.interprocedural else rules
    if args.json:
        payload = report_json(violations, all_rules)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
    if args.sarif:
        payload = report_sarif(violations, all_rules)
        if args.sarif == "-":
            print(payload)
        else:
            Path(args.sarif).write_text(payload + "\n", encoding="utf-8")

    if violations:
        print(
            f"repro-lint: {len(violations)} violation(s) in "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
