"""CLI entry point: ``python -m tools.analysis [paths...]``.

Exit status 0 when clean, 1 when violations were found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.analysis import default_rules, analyze_paths, report_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="repro-lint: determinism / unit-safety / float-equality / "
        "hot-path static analysis for this repository",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write a machine-readable JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id, summary, doc) and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    only = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        rules = default_rules(only)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
            doc = (rule.__class__.__doc__ or "").strip()
            for line in doc.splitlines():
                print(f"    {line.strip()}")
            print()
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    violations = analyze_paths(paths, rules, repo_root=Path.cwd())
    for violation in violations:
        print(violation.render())

    if args.json:
        payload = report_json(violations, rules)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")

    if violations:
        print(
            f"repro-lint: {len(violations)} violation(s) in "
            f"{len({v.path for v in violations})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
