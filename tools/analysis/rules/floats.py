"""Float-comparison rules (FLT0xx).

Temperatures, powers, and times are floats produced by matrix exponentials
and accumulations; exact ``==`` on them is either a latent bug or an
undocumented exact-sentinel check.  The approved spellings live in
``repro.utils.floatcmp`` (``approx_eq``, ``is_zero``); genuinely exact
checks carry a ``# repro-lint: ignore[FLT001]`` allowlist comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis.core import FileContext, Rule, Violation
from tools.analysis.registry import REGISTRY


def _is_floatish(node: ast.AST) -> bool:
    """Conservatively true when an expression is float-valued.

    Matches float literals, unary +/- on them, arithmetic that contains a
    float literal or a true division, and ``float(...)`` casts.  Name-only
    comparisons are deliberately not flagged (no type information at the
    AST level; exact equality of two table-sourced set points is legal).
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


@REGISTRY.register
class FloatEqualityRule(Rule):
    """No ``==``/``!=`` against float expressions.

    Flags equality comparisons where an operand is a float literal, a true
    division, or a ``float(...)`` cast.  Use
    ``repro.utils.floatcmp.approx_eq`` for tolerance comparison or
    ``repro.utils.floatcmp.is_zero`` for zero guards; allowlist the rare
    justified exact check.
    """

    rule_id = "FLT001"
    summary = "==/!= on a float expression; use repro.utils.floatcmp"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    yield self.violation(
                        ctx,
                        node,
                        "exact ==/!= on a float expression; use "
                        "repro.utils.floatcmp.approx_eq / is_zero "
                        "(or allowlist a justified exact check)",
                    )
                    break
