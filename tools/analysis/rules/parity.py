"""Scalar/batch parity rule (PAR001) — interprocedural.

``repro/sim/batch.py`` re-implements the scalar kernel's per-step
pipeline as lockstep tensor operations, and the repo's headline claim
is that the two are *bit-identical*.  That claim is enforced by the
equivalence property tests — but only for behaviours the tests cover.
The parity registry (``tools/analysis/parity.json``) makes the pairing
itself a checked artifact: every scalar kernel function is mapped to
its batch twin (grouped, because the batch side often splits one scalar
method across several phases), and a normalized body hash of each side
is recorded.

PAR001 fires when:

* one side of a group changed since the recorded hash but the other did
  not — the classic "fixed the scalar kernel, forgot the batch twin";
* both sides changed without refreshing the registry — the edit may be
  fine, but the hashes must be re-recorded (``--update-parity``) *after*
  re-running the equivalence suite, making that verification step
  visible in the diff;
* a registry entry names a function that no longer exists; or
* a new private method becomes reachable from ``Simulator.step`` without
  being mapped in any group or listed in ``scalar_only`` (batch-
  ineligible behaviours, with the reason recorded).

Hashes are over ``ast.dump`` with docstrings stripped, so comments and
formatting never trigger the rule — only structural edits do.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.analysis.callgraph import FunctionNode, Project
from tools.analysis.core import Violation
from tools.analysis.interproc import ProjectRule
from tools.analysis.registry import PROJECT_REGISTRY

DEFAULT_REGISTRY_PATH = Path(__file__).resolve().parents[1] / "parity.json"

__all__ = [
    "DEFAULT_REGISTRY_PATH",
    "ParityGroup",
    "ParityRegistry",
    "load_registry",
    "function_hash",
    "group_hash",
    "update_parity",
]


def function_hash(node: FunctionNode) -> str:
    """Normalized structural hash of one function body (+signature).

    Docstrings are stripped and the hash is over ``ast.dump`` (no line
    numbers), so reformatting and comment edits never change it.
    """
    clone = copy.deepcopy(node)
    if (
        clone.body
        and isinstance(clone.body[0], ast.Expr)
        and isinstance(clone.body[0].value, ast.Constant)
        and isinstance(clone.body[0].value.value, str)
    ):
        clone.body = clone.body[1:] or [ast.Pass()]
    return hashlib.sha256(ast.dump(clone).encode("utf-8")).hexdigest()[:16]


def group_hash(pairs: Sequence[Tuple[str, FunctionNode]]) -> str:
    payload = "\n".join(f"{qual}={function_hash(node)}" for qual, node in pairs)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class ParityGroup:
    name: str
    scalar: List[str]
    batch: List[str]
    scalar_hash: str = ""
    batch_hash: str = ""


@dataclass
class ParityRegistry:
    kernel_root: str
    groups: List[ParityGroup] = field(default_factory=list)
    #: scalar-only kernel functions: qualname -> reason they have no twin
    scalar_only: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    def mapped_scalar(self) -> Set[str]:
        mapped: Set[str] = set(self.scalar_only)
        for group in self.groups:
            mapped.update(group.scalar)
        return mapped

    def to_json(self) -> str:
        payload = {
            "description": self.description,
            "kernel_root": self.kernel_root,
            "groups": [
                {
                    "name": g.name,
                    "scalar": g.scalar,
                    "batch": g.batch,
                    "scalar_hash": g.scalar_hash,
                    "batch_hash": g.batch_hash,
                }
                for g in self.groups
            ],
            "scalar_only": self.scalar_only,
        }
        return json.dumps(payload, indent=2) + "\n"


def load_registry(path: Path) -> ParityRegistry:
    raw = json.loads(path.read_text(encoding="utf-8"))
    return ParityRegistry(
        kernel_root=raw["kernel_root"],
        groups=[
            ParityGroup(
                name=g["name"],
                scalar=list(g["scalar"]),
                batch=list(g["batch"]),
                scalar_hash=g.get("scalar_hash", ""),
                batch_hash=g.get("batch_hash", ""),
            )
            for g in raw.get("groups", [])
        ],
        scalar_only=dict(raw.get("scalar_only", {})),
        description=raw.get("description", ""),
    )


def _module_present(project: Project, qualname: str) -> bool:
    parts = qualname.split(".")
    return any(
        ".".join(parts[:cut]) in project.modules
        for cut in range(len(parts) - 1, 0, -1)
    )


def _side_nodes(
    project: Project, quals: Sequence[str]
) -> Tuple[Optional[List[Tuple[str, FunctionNode]]], List[str]]:
    """(resolved (qual, node) pairs or None if module absent, missing quals)."""
    pairs: List[Tuple[str, FunctionNode]] = []
    missing: List[str] = []
    any_module = False
    for qual in quals:
        if not _module_present(project, qual):
            continue
        any_module = True
        fn = project.functions.get(qual)
        if fn is None:
            missing.append(qual)
        else:
            pairs.append((qual, fn.node))
    if not any_module:
        return None, []
    return pairs, missing


@PROJECT_REGISTRY.register
class ScalarBatchParityRule(ProjectRule):
    """Scalar kernel and ``BatchSimulator`` twin drifted apart.

    The parity registry pins a normalized body hash for each side of
    every scalar↔batch function group; editing one side without the
    other (or without refreshing the registry after re-running the
    equivalence tests via ``--update-parity``) breaks the gate.  New
    private methods reachable from ``Simulator.step`` must be mapped or
    explicitly recorded as batch-ineligible in ``scalar_only``.
    """

    rule_id = "PAR001"
    summary = "scalar kernel / batch twin drift (parity registry mismatch)"

    #: Overridable for fixture tests.
    registry_path: Path = DEFAULT_REGISTRY_PATH

    def check_project(self, project: Project) -> Iterator[Violation]:
        if not self.registry_path.exists():
            return
        registry = load_registry(self.registry_path)
        for group in registry.groups:
            yield from self._check_group(project, group)
        yield from self._check_unmapped(project, registry)

    def _violation_at(
        self, project: Project, qual: str, message: str
    ) -> Violation:
        fn = project.functions.get(qual)
        if fn is not None:
            return Violation(
                path=fn.rel_path,
                line=fn.line,
                rule_id=self.rule_id,
                message=message,
                symbol=qual,
            )
        return Violation(
            path=str(self.registry_path),
            line=1,
            rule_id=self.rule_id,
            message=message,
            symbol=qual,
        )

    def _check_group(
        self, project: Project, group: ParityGroup
    ) -> Iterator[Violation]:
        scalar_pairs, scalar_missing = _side_nodes(project, group.scalar)
        batch_pairs, batch_missing = _side_nodes(project, group.batch)
        for qual in [*scalar_missing, *batch_missing]:
            yield self._violation_at(
                project,
                qual,
                f"parity group {group.name!r} lists {qual} but it no longer "
                f"exists; update tools/analysis/parity.json",
            )
        if scalar_missing or batch_missing:
            return
        if scalar_pairs is None or batch_pairs is None:
            return  # that side's module isn't part of this analysis run
        scalar_now = group_hash(scalar_pairs)
        batch_now = group_hash(batch_pairs)
        scalar_changed = scalar_now != group.scalar_hash
        batch_changed = batch_now != group.batch_hash
        anchor_scalar = group.scalar[0]
        anchor_batch = group.batch[0]
        if not group.scalar_hash or not group.batch_hash:
            yield self._violation_at(
                project,
                anchor_scalar,
                f"parity group {group.name!r} has no recorded hash; run "
                f"python -m tools.analysis --update-parity after verifying "
                f"equivalence",
            )
        elif scalar_changed and not batch_changed:
            yield self._violation_at(
                project,
                anchor_scalar,
                f"scalar side of parity group {group.name!r} changed but its "
                f"batch twin did not; port the change to "
                f"{', '.join(group.batch)} (or re-verify bit-identity and "
                f"run --update-parity)",
            )
        elif batch_changed and not scalar_changed:
            yield self._violation_at(
                project,
                anchor_batch,
                f"batch side of parity group {group.name!r} changed but its "
                f"scalar twin did not; port the change to "
                f"{', '.join(group.scalar)} (or re-verify bit-identity and "
                f"run --update-parity)",
            )
        elif scalar_changed and batch_changed:
            yield self._violation_at(
                project,
                anchor_scalar,
                f"both sides of parity group {group.name!r} changed; re-run "
                f"the batch equivalence suite and refresh the registry with "
                f"--update-parity",
            )

    def _check_unmapped(
        self, project: Project, registry: ParityRegistry
    ) -> Iterator[Violation]:
        root = project.functions.get(registry.kernel_root)
        if root is None or root.class_qualname is None:
            return
        mapped = registry.mapped_scalar()
        for qual in sorted(project.reachable([registry.kernel_root])):
            fn = project.functions[qual]
            if fn.class_qualname != root.class_qualname:
                continue
            if not fn.name.startswith("_"):
                continue
            if qual in mapped:
                continue
            yield self._violation_at(
                project,
                qual,
                f"kernel function {fn.name!r} is reachable from "
                f"{registry.kernel_root} but unmapped in the parity "
                f"registry; pair it with its batch twin or record it in "
                f"scalar_only with a reason",
            )


def update_parity(
    project: Project, path: Path = DEFAULT_REGISTRY_PATH
) -> List[str]:
    """Recompute and write registry hashes; returns refreshed group names."""
    registry = load_registry(path)
    refreshed: List[str] = []
    for group in registry.groups:
        scalar_pairs, scalar_missing = _side_nodes(project, group.scalar)
        batch_pairs, batch_missing = _side_nodes(project, group.batch)
        if scalar_missing or batch_missing:
            continue
        if scalar_pairs is None or batch_pairs is None:
            continue
        scalar_now = group_hash(scalar_pairs)
        batch_now = group_hash(batch_pairs)
        if scalar_now != group.scalar_hash or batch_now != group.batch_hash:
            refreshed.append(group.name)
        group.scalar_hash = scalar_now
        group.batch_hash = batch_now
    path.write_text(registry.to_json(), encoding="utf-8")
    return refreshed
