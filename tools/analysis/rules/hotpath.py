"""Hot-path hygiene rules (HOT0xx).

The PR 1 fast-path rewrite holds only while the per-step functions stay
allocation-lean: no fresh containers, no name-keyed dict rebuilds — those
are exactly the costs the array-native thermal/power surface removed.
Functions on the hot path are marked with the no-op decorator
``repro.utils.hotpath.hot_path``; these rules fire only inside marked
functions, so the rest of the codebase can use comprehensions freely.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from tools.analysis.core import FileContext, Rule, Violation
from tools.analysis.registry import REGISTRY

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

_COMP_KIND = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}


def _is_hot_path_marked(node: FunctionNode) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "hot_path":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hot_path":
            return True
    return False


def iter_hot_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_hot_path_marked(node):
                yield node


def _walk_function_body(fn: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@REGISTRY.register
class HotPathComprehensionRule(Rule):
    """No comprehension allocation inside ``@hot_path`` functions.

    List/set/dict comprehensions and generator expressions allocate a fresh
    container (or frame) per step; inside a function that runs every 10 ms
    of simulated time that shows up directly in throughput.  Hoist the
    container to construction time and refill it, or switch to preallocated
    arrays (see ``RCThermalNetwork.step_vector`` for the pattern).
    """

    rule_id = "HOT001"
    summary = "comprehension allocation inside a @hot_path function"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in iter_hot_functions(ctx.tree):
            for node in _walk_function_body(fn):
                if isinstance(node, _COMPREHENSIONS):
                    yield self.violation(
                        ctx,
                        node,
                        f"{_COMP_KIND[type(node)]} allocates per call in "
                        f"@hot_path function {fn.name!r}; hoist or prefill",
                    )


@REGISTRY.register
class HotPathDictRebuildRule(Rule):
    """No name-keyed dict rebuilds inside ``@hot_path`` functions.

    Building ``{name: value, ...}`` maps (dict displays with keys, or
    ``dict(...)`` with arguments) per step is the pattern the array-native
    kernel surface exists to avoid: use index arrays from
    ``RCThermalNetwork.indices_of`` and write into preallocated vectors.
    Empty-dict initialisation (``{}``) is allowed.
    """

    rule_id = "HOT002"
    summary = "name-keyed dict rebuild inside a @hot_path function"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in iter_hot_functions(ctx.tree):
            for node in _walk_function_body(fn):
                if isinstance(node, ast.Dict) and node.keys:
                    yield self.violation(
                        ctx,
                        node,
                        f"dict literal rebuilt per call in @hot_path function "
                        f"{fn.name!r}; use preallocated arrays/index maps",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "dict"
                    and (node.args or node.keywords)
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"dict(...) rebuilt per call in @hot_path function "
                        f"{fn.name!r}; use preallocated arrays/index maps",
                    )
