"""Cache-key integrity rules (KEY0xx) — interprocedural.

The artifact store serves a cached result whenever the
:class:`~repro.store.keys.ArtifactKey` fingerprint matches; anything
that changes a simulation's output but is *not* folded into the key
makes the store serve stale science.  Two rule families guard the two
fold surfaces:

* **KEY001** — every ``REPRO_*`` environment variable read anywhere in
  simulation-reachable code must either be folded into the key (it is
  read by code reachable from ``ArtifactKey.create`` /
  ``cell_artifact_key``, like the fault carriers) or appear on the
  documented *result-neutral* allowlist — variables whose bit-identity
  is proven by an equivalence test (traced==untraced, sanitized==plain,
  serial==parallel).
* **KEY002** — at every ``run_cells`` fan-out that passes both
  ``cell_key=`` and ``worker=``, the config-dataclass attributes the
  worker (and ``init=``/``batch_plan=``) actually reads must be a
  subset of the attributes the cell-key function folds into
  ``ArtifactKey.create``.  Passing the whole config object folds every
  field; folding a dict of attributes folds exactly those named.

Both rules compare *reachable read-sets* against *folded sets* over the
call graph — per-file analysis cannot see either side.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analysis.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_parts,
    walk_body,
)
from tools.analysis.core import Violation
from tools.analysis.interproc import (
    GridSite,
    ProjectRule,
    grid_call_sites,
    sim_entry_seeds,
)
from tools.analysis.registry import PROJECT_REGISTRY

#: Qualname suffixes of the key-construction surface: env vars read from
#: here are folded into every artifact fingerprint.
KEY_FOLD_SUFFIXES = (".ArtifactKey.create", ".cell_artifact_key")

#: Env vars proven result-neutral by an equivalence test, in the order
#: they were admitted:
#: * ``REPRO_TRACE``/``REPRO_TRACE_DIR`` — traced==untraced bit-identity
#:   (the observer never reads the sensor RNG).
#: * ``REPRO_SANITIZE`` — sanitized==plain golden-trace equivalence.
#: * ``REPRO_PARALLEL`` — serial==parallel grid determinism tests.
RESULT_NEUTRAL_ENV = frozenset(
    {"REPRO_TRACE", "REPRO_TRACE_DIR", "REPRO_SANITIZE", "REPRO_PARALLEL"}
)


class _EnvRead:
    __slots__ = ("node", "name", "resolvable")

    def __init__(self, node: ast.AST, name: Optional[str], resolvable: bool):
        self.node = node
        self.name = name
        self.resolvable = resolvable


def _iter_env_reads(
    project: Project, module: ModuleInfo, fn: FunctionInfo
) -> Iterator[_EnvRead]:
    """``os.environ.get/[]`` and ``os.getenv`` reads with resolved names."""
    for node in walk_body(fn.node):
        arg: Optional[ast.expr] = None
        if isinstance(node, ast.Call):
            parts = dotted_parts(node.func)
            if parts is None:
                continue
            if parts[-1] == "get" and len(parts) >= 2 and parts[-2] == "environ":
                arg = node.args[0] if node.args else None
            elif parts[-1] == "getenv":
                arg = node.args[0] if node.args else None
            else:
                continue
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            parts = dotted_parts(node.value)
            if parts is None or parts[-1] != "environ":
                continue
            arg = node.slice
        else:
            continue
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield _EnvRead(node, arg.value, True)
        elif isinstance(arg, ast.Name):
            resolved = project.resolve_constant_str(module, arg.id, fn)
            yield _EnvRead(node, resolved, resolved is not None)
        # dynamic expressions (f-strings, calls) are out of scope


def _env_reads_in(
    project: Project, quals: Set[str]
) -> List[Tuple[FunctionInfo, _EnvRead]]:
    out: List[Tuple[FunctionInfo, _EnvRead]] = []
    for qual in sorted(quals):
        fn = project.functions.get(qual)
        if fn is None:
            continue
        module = project.modules[fn.module]
        for read in _iter_env_reads(project, module, fn):
            out.append((fn, read))
    return out


@PROJECT_REGISTRY.register
class EnvReadNotFoldedRule(ProjectRule):
    """``REPRO_*`` env read in sim-reachable code, not folded into the key.

    A ``REPRO_*`` variable read while constructing or stepping a
    simulation changes the result; unless the key-construction surface
    reads the same variable (folding it into every fingerprint) or an
    equivalence test proves it result-neutral, a cache hit under a
    different env silently serves the wrong run.
    """

    rule_id = "KEY001"
    summary = "REPRO_* env read reachable from a sim entry, not key-folded"

    def check_project(self, project: Project) -> Iterator[Violation]:
        fold_roots = {
            f.qualname for f in project.functions_matching(*KEY_FOLD_SUFFIXES)
        }
        folded: Set[str] = set()
        for _fn, read in _env_reads_in(project, project.reachable(fold_roots)):
            if read.name is not None:
                folded.add(read.name)
        sim_reachable = project.reachable(sim_entry_seeds(project))
        for fn, read in _env_reads_in(project, sim_reachable):
            if read.name is None:
                yield self.project_violation(
                    fn,
                    read.node,
                    f"sim-reachable function {fn.name!r} reads an env var "
                    f"whose name could not be resolved to a constant; use a "
                    f"literal or module-level constant so key folding is "
                    f"checkable",
                )
                continue
            if not read.name.startswith("REPRO_"):
                continue
            if read.name in folded or read.name in RESULT_NEUTRAL_ENV:
                continue
            yield self.project_violation(
                fn,
                read.node,
                f"sim-reachable function {fn.name!r} reads {read.name!r} "
                f"but the ArtifactKey surface never folds it; fold it into "
                f"the key or prove it result-neutral and allowlist it",
            )


def _attr_reads_by_class(
    project: Project,
    quals: Set[str],
    restrict_to: Optional[Set[str]] = None,
) -> Dict[str, Dict[str, int]]:
    """``{class_qual: {field: line}}`` for dataclass-field attribute reads
    inside ``quals`` (method calls excluded — calling ``cfg.copy()`` is
    not a field read)."""
    reads: Dict[str, Dict[str, int]] = {}
    for qual in sorted(quals):
        fn = project.functions.get(qual)
        if fn is None:
            continue
        call_funcs = {
            id(n.func) for n in walk_body(fn.node) if isinstance(n, ast.Call)
        }
        for node in walk_body(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load) or id(node) in call_funcs:
                continue
            owner = project.infer_type(fn, node.value)
            if owner is None:
                continue
            if restrict_to is not None and owner not in restrict_to:
                continue
            info = project.classes.get(owner)
            if info is None or node.attr not in info.fields:
                continue
            reads.setdefault(owner, {}).setdefault(node.attr, node.lineno)
    return reads


def _folded_attrs(
    project: Project, ck_fn: FunctionInfo, create_call: ast.Call
) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """Attributes folded by a key-construction call inside ``ck_fn``.

    Returns ``(per-class folded attr names, classes folded whole)``; a
    bare name of a config type anywhere in the arguments folds the whole
    object (``config=config`` serialises every field).
    """
    folded: Dict[str, Set[str]] = {}
    whole: Set[str] = set()
    exprs: List[ast.expr] = list(create_call.args) + [
        kw.value for kw in create_call.keywords if kw.value is not None
    ]
    for expr in exprs:
        # Names that only appear as the receiver of an attribute access
        # (`cfg` in `cfg.alpha`) fold that one field, not the object.
        receiver_names: Set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        receiver_names.add(id(sub))
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                owner = project.infer_type(ck_fn, node.value)
                if owner is not None and owner in project.classes:
                    if node.attr in project.classes[owner].fields:
                        folded.setdefault(owner, set()).add(node.attr)
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in receiver_names
            ):
                owner = project.infer_type(ck_fn, node)
                if owner is not None and owner in project.classes:
                    whole.add(owner)
    return folded, whole


@PROJECT_REGISTRY.register
class CellKeyFieldOmittedRule(ProjectRule):
    """Worker-read config field missing from the cell-key fingerprint.

    For every fan-out passing both ``cell_key=`` and ``worker=``: the
    set of config-dataclass fields read by the worker/init/batch_plan
    functions (and everything they call) must be covered by the fields
    the cell-key folds into ``ArtifactKey.create``.  An omitted field
    means two configs differing only in that field share a cache key —
    the second run silently reuses the first run's results.
    """

    rule_id = "KEY002"
    summary = "config field read by worker but not folded into cell_key"

    def check_project(self, project: Project) -> Iterator[Violation]:
        for grid in grid_call_sites(project):
            if grid.cell_key is None or grid.worker is None:
                continue
            yield from self._check_site(project, grid)

    def _check_site(
        self, project: Project, grid: GridSite
    ) -> Iterator[Violation]:
        ck_fn = project.functions.get(grid.cell_key or "")
        if ck_fn is None:
            return
        create_calls = [
            node
            for node in walk_body(ck_fn.node)
            if isinstance(node, ast.Call)
            and self._is_create_call(project, ck_fn, node)
        ]
        if not create_calls:
            return
        folded: Dict[str, Set[str]] = {}
        whole: Set[str] = set()
        for call in create_calls:
            call_folded, call_whole = _folded_attrs(project, ck_fn, call)
            for owner, attrs in call_folded.items():
                folded.setdefault(owner, set()).update(attrs)
            whole |= call_whole
        # Only classes the key actually touches are comparable: a class
        # never mentioned in the create call is derived data, not config.
        comparable = set(folded) | whole
        if not comparable:
            return
        worker_quals = project.reachable(grid.bound_functions())
        reads = _attr_reads_by_class(project, worker_quals, comparable)
        for owner in sorted(reads):
            if owner in whole:
                continue
            missing = sorted(set(reads[owner]) - folded.get(owner, set()))
            if not missing:
                continue
            cls_name = owner.rsplit(".", 1)[-1]
            yield self.project_violation(
                ck_fn,
                create_calls[0],
                f"cell_key {ck_fn.name!r} folds only "
                f"{sorted(folded.get(owner, set()))} of {cls_name} but the "
                f"worker also reads {missing}; fold the missing field(s) "
                f"or pass the whole config",
                symbol=ck_fn.qualname,
            )

    def _is_create_call(
        self, project: Project, ck_fn: FunctionInfo, call: ast.Call
    ) -> bool:
        parts = dotted_parts(call.func)
        if parts is None:
            return False
        module = project.modules[ck_fn.module]
        resolved = project.resolve_name(ck_fn, module, parts)
        if resolved is None:
            return False
        return any(
            resolved == s.lstrip(".") or resolved.endswith(s)
            for s in KEY_FOLD_SUFFIXES
        )
