"""Fork-safety rules (FORK0xx) — interprocedural.

The fork pool in ``repro/experiments/parallel.py`` relies on workers
being pure functions of (stash, cell): a forked child that mutates
module-level state, the process environment, or the global RNG can make
a grid's result depend on cell scheduling order — exactly the
nondeterminism the serial==parallel bit-identity tests exist to rule
out.  These rules walk the call graph from every worker entry point
(``worker=``/``init=``/``batch_plan=`` bindings at ``run_cells`` call
sites, ``_worker_loop``, ``@hot_path`` functions, and the simulation
step roots) and flag the three mutation classes inside that reachable
set.

The one sanctioned exception: functions bound directly to ``init=`` are
the per-worker stash writers (``_WORKER_STATE["config"] = ...``).  They
run exactly once per child, after fork and before any cell, so their
module-state writes are private to the child and scheduling-invariant;
FORK001 exempts the bound function itself but not its callees.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analysis.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_parts,
    walk_body,
)
from tools.analysis.core import Violation
from tools.analysis.interproc import (
    ProjectRule,
    worker_init_functions,
    worker_seeds,
)
from tools.analysis.registry import PROJECT_REGISTRY

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
    "appendleft", "popleft",
}

#: ``np.random`` attributes that are explicit-Generator machinery, not
#: the shared global stream (mirrors DET002).
_APPROVED_NP_RANDOM = {"Generator", "BitGenerator", "PCG64", "SeedSequence"}

#: The sanctioned RNG wrapper module: it is *allowed* to touch numpy's
#: Generator construction surface.
_RNG_MODULE_SUFFIX = "repro/utils/rng.py"


def _root_name(expr: ast.expr) -> Optional[str]:
    """Peel ``x[...].attr[...]`` down to the root ``Name``, if any."""
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _scope_local_names(project: Project, fn: FunctionInfo) -> Set[str]:
    """Names bound locally in ``fn`` or any enclosing function (closures)."""
    names: Set[str] = set()
    scope: Optional[FunctionInfo] = fn
    while scope is not None:
        names |= scope.local_names
        names |= set(scope.imports)
        scope = project.functions.get(scope.parent) if scope.parent else None
    return names


def _module_state_target(
    project: Project, module: ModuleInfo, fn: FunctionInfo, expr: ast.expr
) -> Optional[str]:
    """If storing through ``expr`` mutates module-level state, name it."""
    if not isinstance(expr, (ast.Subscript, ast.Attribute)):
        return None
    root = _root_name(expr)
    if root is None or root in _scope_local_names(project, fn):
        return None
    if root in module.module_names:
        return root
    if isinstance(expr, ast.Attribute) and root in module.module_aliases:
        return root  # ``mod.attr = ...`` on an imported module
    return None


def _reachable_workers(
    project: Project,
) -> Tuple[Dict[str, FunctionInfo], Set[str]]:
    reachable = {
        qual: project.functions[qual]
        for qual in project.reachable(worker_seeds(project))
    }
    return reachable, worker_init_functions(project)


@PROJECT_REGISTRY.register
class ForkModuleStateRule(ProjectRule):
    """No module-level state writes in worker-reachable code.

    A forked worker that assigns a module global, stores into a
    module-level container, or mutates it in place (``append``/
    ``update``/...) couples cells through scheduling order.  Stash
    per-worker state via the ``init=`` hook instead — functions bound
    directly to ``init=`` are exempt because they run once per child
    before any cell.
    """

    rule_id = "FORK001"
    summary = "module-level state write in worker-reachable code"

    def check_project(self, project: Project) -> Iterator[Violation]:
        reachable, init_fns = _reachable_workers(project)
        for qual in sorted(reachable):
            if qual in init_fns:
                continue
            fn = reachable[qual]
            module = project.modules[fn.module]
            yield from self._check_function(project, module, fn)

    def _check_function(
        self, project: Project, module: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Violation]:
        global_names: Set[str] = set()
        for node in walk_body(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        for node in walk_body(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_names:
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} assigns "
                        f"module global {target.id!r}; stash per-worker "
                        f"state via the init= hook instead",
                    )
                    continue
                name = _module_state_target(project, module, fn, target)
                if name is not None:
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} writes "
                        f"module-level state {name!r}; forked cells must "
                        f"not share mutable module state",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                root = _root_name(node.func.value)
                if (
                    root is not None
                    and root not in _scope_local_names(project, fn)
                    and root in module.module_names
                ):
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} calls "
                        f".{node.func.attr}() on module-level "
                        f"{root!r}; forked cells must not mutate shared "
                        f"containers",
                    )


@PROJECT_REGISTRY.register
class ForkEnvironMutationRule(ProjectRule):
    """No ``os.environ`` mutation in worker-reachable code.

    The env carriers (``REPRO_FAULTS``, ``REPRO_TRACE``...) are set by
    the parent *before* fork so children inherit them read-only; a
    worker that writes the environment desynchronises siblings and
    poisons ``ArtifactKey`` fault-env folding for every later cell in
    the same process.
    """

    rule_id = "FORK002"
    summary = "os.environ mutation in worker-reachable code"

    def check_project(self, project: Project) -> Iterator[Violation]:
        reachable, _ = _reachable_workers(project)
        for qual in sorted(reachable):
            fn = reachable[qual]
            yield from self._check_function(fn)

    def _is_environ(self, expr: ast.expr) -> bool:
        parts = dotted_parts(expr)
        return parts is not None and parts[-1] == "environ"

    def _check_function(self, fn: FunctionInfo) -> Iterator[Violation]:
        for node in walk_body(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and self._is_environ(
                        target.value
                    ):
                        yield self.project_violation(
                            fn,
                            node,
                            f"worker-reachable function {fn.name!r} mutates "
                            f"os.environ; carriers must be set pre-fork by "
                            f"the parent only",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                parts = dotted_parts(node.func)
                if parts is None:
                    continue
                if (
                    len(parts) >= 2
                    and parts[-2] == "environ"
                    and parts[-1] in _MUTATOR_METHODS
                ):
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} calls "
                        f"os.environ.{parts[-1]}(); carriers must be set "
                        f"pre-fork by the parent only",
                    )
                elif parts[-1] in ("putenv", "unsetenv"):
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} calls "
                        f"os.{parts[-1]}(); carriers must be set pre-fork "
                        f"by the parent only",
                    )


@PROJECT_REGISTRY.register
class ForkGlobalRngRule(ProjectRule):
    """No global-RNG use in worker-reachable code.

    ``np.random.*`` module functions and stdlib ``random`` share hidden
    global state; after fork every child inherits the same stream, so
    draws depend on how many cells each worker has already run.  All
    worker randomness must come from explicitly seeded
    ``np.random.Generator`` streams (see ``repro/utils/rng.py``).
    """

    rule_id = "FORK003"
    summary = "global RNG (np.random.*/random.*) in worker-reachable code"

    def check_project(self, project: Project) -> Iterator[Violation]:
        reachable, _ = _reachable_workers(project)
        for qual in sorted(reachable):
            fn = reachable[qual]
            if fn.rel_path.endswith(_RNG_MODULE_SUFFIX):
                continue
            module = project.modules[fn.module]
            yield from self._check_function(project, module, fn)

    def _normalized(
        self,
        project: Project,
        module: ModuleInfo,
        fn: FunctionInfo,
        parts: Tuple[str, ...],
    ) -> Tuple[str, ...]:
        """Rewrite the leading alias through the import table
        (``np`` -> ``numpy``, ``from random import random`` -> dotted)."""
        head = parts[0]
        target: Optional[str] = None
        scope: Optional[FunctionInfo] = fn
        while scope is not None and target is None:
            target = scope.imports.get(head)
            scope = project.functions.get(scope.parent) if scope.parent else None
        if target is None:
            target = module.imports.get(head)
        if target is None:
            return parts
        return tuple(target.split(".")) + parts[1:]

    def _check_function(
        self, project: Project, module: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Violation]:
        reported: Set[int] = set()
        for node in walk_body(fn.node):
            parts = dotted_parts(node) if isinstance(node, ast.Attribute) else None
            if parts is not None and len(parts) >= 3:
                full = self._normalized(project, module, fn, parts)
                if (
                    len(full) >= 3
                    and full[0] == "numpy"
                    and full[1] == "random"
                    and full[2] not in _APPROVED_NP_RANDOM
                    and node.lineno not in reported
                ):
                    reported.add(node.lineno)
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} uses global "
                        f"numpy RNG np.random.{full[2]}; draw from an "
                        f"explicit seeded Generator instead",
                    )
            if isinstance(node, ast.Call):
                call_parts = dotted_parts(node.func)
                if call_parts is None:
                    continue
                head = call_parts[0]
                target: Optional[str] = None
                scope: Optional[FunctionInfo] = fn
                while scope is not None and target is None:
                    target = scope.imports.get(head)
                    scope = (
                        project.functions.get(scope.parent)
                        if scope.parent
                        else None
                    )
                if target is None:
                    target = module.imports.get(head)
                if target is None:
                    continue
                full = tuple(target.split(".")) + call_parts[1:]
                if (
                    full[0] == "random"
                    and len(full) >= 2
                    and node.lineno not in reported
                ):
                    reported.add(node.lineno)
                    yield self.project_violation(
                        fn,
                        node,
                        f"worker-reachable function {fn.name!r} calls stdlib "
                        f"random.{full[-1]}(); its hidden global state is "
                        f"shared across forked cells",
                    )
