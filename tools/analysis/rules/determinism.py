"""Determinism rules (DET0xx).

The reproduction's claims (bit-identical controller decisions, seed-stable
parallel fan-out) require every random draw to flow through
``repro.utils.rng.RandomSource`` and no code to consult wall clocks inside
the simulation/learning stack.  These rules make that mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.analysis.core import FileContext, Rule, Violation
from tools.analysis.registry import REGISTRY

#: The one module allowed to touch numpy's RNG construction machinery.
_RNG_MODULE = "repro/utils/rng.py"

#: np.random attributes that are seed-explicit construction types, not
#: global-state draws.  Everything else on np.random is flagged.
_APPROVED_NP_RANDOM = {"Generator", "BitGenerator", "PCG64", "SeedSequence"}

#: (module, attribute) pairs that read a wall clock.
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _dotted_parts(node: ast.AST) -> tuple:
    """``a.b.c`` -> ("a", "b", "c"); empty tuple when not a plain dotted name."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@REGISTRY.register
class StdlibRandomRule(Rule):
    """Ban the stdlib ``random`` module.

    ``random`` holds hidden global state that is not captured by the
    experiment seed, so any use breaks run-to-run reproducibility.  Draw
    from ``repro.utils.rng.RandomSource`` (or a ``.child(key)`` stream)
    instead.
    """

    rule_id = "DET001"
    summary = "stdlib `random` is banned; use repro.utils.rng.RandomSource"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.violation(
                            ctx, node, "import of stdlib `random` (unseeded global state)"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        ctx, node, "import from stdlib `random` (unseeded global state)"
                    )


@REGISTRY.register
class NumpyGlobalRandomRule(Rule):
    """Ban ``np.random`` module-level state outside ``repro.utils.rng``.

    ``np.random.seed`` / ``np.random.rand`` / ``np.random.default_rng`` et
    al. either mutate or depend on process-global state (or draw fresh OS
    entropy), which silently decouples results from the experiment seed.
    The explicit construction types (``Generator``, ``PCG64``,
    ``SeedSequence``) are allowed because they force a seed decision, and
    ``repro/utils/rng.py`` is exempt as the one sanctioned wrapper.
    """

    rule_id = "DET002"
    summary = "np.random global-state use outside repro.utils.rng"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.rel_path.endswith(_RNG_MODULE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                parts = _dotted_parts(node)
                if (
                    len(parts) >= 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in _APPROVED_NP_RANDOM
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"np.random.{parts[2]} uses module-level RNG state; "
                        "use repro.utils.rng.RandomSource",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
                "np.random",
            ):
                for alias in node.names:
                    if alias.name not in _APPROVED_NP_RANDOM:
                        yield self.violation(
                            ctx,
                            node,
                            f"from numpy.random import {alias.name} bypasses "
                            "repro.utils.rng.RandomSource",
                        )


@REGISTRY.register
class WallClockRule(Rule):
    """Ban wall-clock reads in simulation/learning code.

    Simulated time is ``Simulator.now_s``; real time leaking into ``sim/``,
    ``il/``, ``rl/`` (or anywhere in the library) makes results depend on
    host speed.  Justified profiling sites (e.g. section timings in
    ``experiments/report.py``) carry an explicit
    ``# repro-lint: ignore[DET003]`` allowlist comment.
    """

    rule_id = "DET003"
    summary = "wall-clock call (time.time & friends); sim time is now_s"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted_parts(node.func)
            if len(parts) < 2:
                continue
            # Match on the trailing (module, attr) pair so both
            # `time.time()` and `datetime.datetime.now()` are caught.
            if (parts[-2], parts[-1]) in _WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call {'.'.join(parts)}(); "
                    "use simulated time or allowlist a profiling site",
                )


@REGISTRY.register
class UnseededRandomSourceRule(Rule):
    """Require an explicit seed when constructing ``RandomSource``.

    ``RandomSource()`` (or ``seed=None``) pulls fresh OS entropy, so two
    runs of the "same" experiment diverge.  Pass the experiment seed or
    derive a child stream: ``RandomSource(seed).child("component")``.
    """

    rule_id = "DET004"
    summary = "RandomSource() constructed without an explicit seed"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted_parts(node.func)
            if not parts or parts[-1] != "RandomSource":
                continue
            if self._is_unseeded(node):
                yield self.violation(
                    ctx,
                    node,
                    "RandomSource constructed without a seed draws OS entropy; "
                    "pass the experiment seed",
                )

    @staticmethod
    def _is_unseeded(call: ast.Call) -> bool:
        if call.args:
            return _is_none(call.args[0])
        for kw in call.keywords:
            if kw.arg == "seed":
                return _is_none(kw.value)
        return True  # no positional, no seed= keyword


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None
