"""Retry-hygiene rules (RETRY0xx).

The store/pool hardening added bounded, jittered retry around host I/O
(:mod:`repro.store.store`, :mod:`repro.experiments.parallel`).  The shape
that must never appear is the *unbounded* variant: ``while True`` around a
``try`` with a ``sleep`` in the loop — under a persistent failure (a
read-only cache directory, a dead worker pipe) it spins forever and turns
an infrastructure hiccup into a hung experiment.  Retry loops must carry
an explicit attempt bound (``for attempt in range(n)``, or a counted
``while`` condition); a deliberately infinite supervision loop can waive
the rule with ``# repro-lint: ignore[RETRY001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from tools.analysis.core import FileContext, Rule, Violation
from tools.analysis.registry import REGISTRY


def _is_constant_true(test: ast.expr) -> bool:
    """``while True:`` / ``while 1:`` — a loop only ``break`` can leave."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _walk_loop_body(loop: ast.While) -> Iterator[ast.AST]:
    """Walk a loop's body without descending into nested functions.

    A sleep inside a callback *defined* in the loop runs on someone
    else's schedule; only sleeps the loop itself executes make it a
    retry-with-backoff loop.
    """
    stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_sleep_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        return True
    return isinstance(func, ast.Name) and func.id == "sleep"


@REGISTRY.register
class UnboundedRetryLoopRule(Rule):
    """No unbounded retry loops: ``while True`` + ``try`` + ``sleep``.

    Fires on a constant-true ``while`` whose body contains both a ``try``
    statement and a ``sleep(...)`` call — the retry-with-backoff shape
    with no attempt bound.  Under a *persistent* failure such a loop
    never exits, so a broken cache directory or dead peer hangs the whole
    experiment instead of failing it.  Bound the attempts
    (``for attempt in range(max_attempts)``, or ``while attempt <= n``)
    and re-raise on exhaustion — see ``ArtifactStore._io_retry`` for the
    pattern.  Genuine supervision loops (that must outlive any failure)
    take an explicit ``# repro-lint: ignore[RETRY001]`` waiver.
    """

    rule_id = "RETRY001"
    summary = "unbounded retry loop (while True + try + sleep)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not _is_constant_true(node.test):
                continue
            has_try = False
            has_sleep = False
            for child in _walk_loop_body(node):
                if isinstance(child, ast.Try):
                    has_try = True
                elif _is_sleep_call(child):
                    has_sleep = True
                if has_try and has_sleep:
                    break
            if has_try and has_sleep:
                yield self.violation(
                    ctx,
                    node,
                    "unbounded retry loop: `while True` with try+sleep "
                    "never exits under a persistent failure; bound the "
                    "attempts (e.g. `for attempt in range(n)`) and "
                    "re-raise on exhaustion",
                )
