"""Unit-safety rules (UNIT0xx).

The kernel steps at 10 ms, the DVFS loop fires every 50 ms, and migration
every 500 ms — mixing seconds and milliseconds is exactly the silent-error
class that corrupts figure-level results.  The repo convention (see
``repro/utils/units.py``) is: time values are floats in seconds with a
``_s`` suffix (``_ms``/``_us``/``_ns`` where another unit is deliberate).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.analysis.core import FileContext, Rule, Violation
from tools.analysis.registry import REGISTRY

#: Final name segments that denote a time quantity.
_TIME_WORDS = {
    "period",
    "periods",
    "interval",
    "intervals",
    "timeout",
    "duration",
    "durations",
    "delay",
    "delays",
    "latency",
    "latencies",
    "deadline",
    "deadlines",
}

#: Unit suffixes that make a time-valued name unambiguous.  Count-like
#: suffixes (steps/cycles/iters) are included: "duration_steps" is a count,
#: not an ambiguous time.
_UNIT_SUFFIXES = (
    "_s",
    "_ms",
    "_us",
    "_ns",
    "_min",
    "_h",
    "_hz",
    "_steps",
    "_cycles",
    "_iters",
    "_epochs",
)

_TIME_UNIT_SUFFIXES = ("_ns", "_us", "_ms", "_s")


def _has_unit_suffix(name: str) -> bool:
    return name.endswith(_UNIT_SUFFIXES)


def _is_ambiguous_time_name(name: str) -> bool:
    """True for names like ``period``/``dvfs_period`` (no unit suffix)."""
    if _has_unit_suffix(name):
        return False
    segment = name.lower().strip("_").rsplit("_", 1)[-1]
    return segment in _TIME_WORDS


def _time_suffix_of(node: ast.AST) -> Optional[str]:
    """The time-unit suffix of a Name/Attribute terminal identifier."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    for suffix in _TIME_UNIT_SUFFIXES:
        if name.endswith(suffix):
            return suffix
    return None


@REGISTRY.register
class AmbiguousTimeNameRule(Rule):
    """Time-valued names must carry a unit suffix.

    Flags function parameters, assignment targets (incl. ``self.x`` and
    annotated dataclass fields), and loop variables whose final name segment
    is a time word (``period``, ``interval``, ``timeout``, ``duration``,
    ``delay``, ``latency``, ``deadline``) without a unit suffix (``_s``,
    ``_ms``, ``_us``, ``_ns``, or a count suffix like ``_steps``).
    Rename ``period`` -> ``period_s`` (or the unit actually stored).
    """

    rule_id = "UNIT001"
    summary = "time-valued name without _s/_ms unit suffix"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *filter(None, [args.vararg, args.kwarg]),
                ]:
                    if _is_ambiguous_time_name(arg.arg):
                        yield self.violation(
                            ctx,
                            arg,
                            f"parameter {arg.arg!r} is time-valued but has no "
                            f"unit suffix (rename e.g. to {arg.arg}_s)",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.For)):
                targets: list
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.For):
                    targets = [node.target]
                else:
                    targets = [node.target]
                for target in targets:
                    yield from self._check_target(ctx, target)

    def _check_target(self, ctx: FileContext, target: ast.AST) -> Iterator[Violation]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_target(ctx, elt)
        elif isinstance(target, ast.Starred):
            yield from self._check_target(ctx, target.value)
        elif isinstance(target, (ast.Name, ast.Attribute)):
            name = target.id if isinstance(target, ast.Name) else target.attr
            if _is_ambiguous_time_name(name):
                yield self.violation(
                    ctx,
                    target,
                    f"name {name!r} is time-valued but has no unit suffix "
                    f"(rename e.g. to {name}_s)",
                )


@REGISTRY.register
class MixedUnitArithmeticRule(Rule):
    """No arithmetic/comparison across different time-unit suffixes.

    ``a_s + b_ms`` (or ``a_s < b_ms``) is a unit error: convert explicitly
    first (``b_ms * 1e-3`` or via ``repro.utils.units.MS``).  Additive
    operators and comparisons are checked; multiplication/division are unit
    transformations and therefore exempt.  Also flags bare numeric literals
    passed to a suffix-less time keyword (``period=0.5``): the callee's
    parameter is ambiguous, so the call site cannot be audited.
    """

    rule_id = "UNIT002"
    summary = "arithmetic mixing _s/_ms names, or literal to bare time kwarg"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(ctx, node, left, right)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg
                        and _is_ambiguous_time_name(kw.arg)
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, (int, float))
                        and not isinstance(kw.value.value, bool)
                    ):
                        yield self.violation(
                            ctx,
                            kw.value,
                            f"bare numeric literal passed to ambiguous time "
                            f"parameter {kw.arg!r}; the parameter needs a "
                            "unit suffix",
                        )

    def _check_pair(
        self, ctx: FileContext, node: ast.AST, left: ast.AST, right: ast.AST
    ) -> Iterator[Violation]:
        ls, rs = _time_suffix_of(left), _time_suffix_of(right)
        if ls and rs and ls != rs:
            yield self.violation(
                ctx,
                node,
                f"mixing time units: operand with {ls!r} combined with "
                f"{rs!r}; convert explicitly first",
            )
