"""Rule modules — importing this package populates the registry."""

from tools.analysis.rules import determinism, floats, hotpath, units  # noqa: F401
