"""Rule modules — importing this package populates both registries."""

from tools.analysis.rules import (  # noqa: F401
    cachekeys,
    determinism,
    floats,
    forksafety,
    hotpath,
    parity,
    retry,
    units,
)
