"""Suppression baseline: accepted findings that must not block the gate.

The baseline (``tools/analysis/baseline.json``, committed) records
findings that were reviewed and deliberately accepted — typically
pre-existing debt discovered when a new rule lands.  Entries match on
``(rule_id, path, symbol)`` (never on line numbers), so unrelated edits
to the same file don't detach them; ``path`` is repo-relative, so the
file is identical across machines.

Workflow (see docs/architecture.md "Reviewing the baseline"):

* a rule fires on pre-existing code → fix it, or if the finding is
  accepted debt, add it with ``--write-baseline`` and justify in review;
* entries whose finding no longer fires are *stale* — the CLI reports
  them so the file burns down instead of accreting;
* new code never gets baselined: the gate compares against the committed
  file, so any new finding fails CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from tools.analysis.core import Violation

DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "BaselineEntry",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]


@dataclass(frozen=True)
class BaselineEntry:
    rule_id: str
    path: str
    symbol: str = ""
    reason: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule_id, self.path, self.symbol)


def load_baseline(path: Path) -> List[BaselineEntry]:
    raw = json.loads(path.read_text(encoding="utf-8"))
    return [
        BaselineEntry(
            rule_id=e["rule_id"],
            path=e["path"],
            symbol=e.get("symbol", ""),
            reason=e.get("reason", ""),
        )
        for e in raw.get("findings", [])
    ]


def apply_baseline(
    violations: Sequence[Violation], entries: Sequence[BaselineEntry]
) -> Tuple[List[Violation], List[Violation], List[BaselineEntry]]:
    """Split into (kept, suppressed) and report stale baseline entries."""
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        e.key: e for e in entries
    }
    kept: List[Violation] = []
    suppressed: List[Violation] = []
    hit: Set[Tuple[str, str, str]] = set()
    for violation in violations:
        key = (violation.rule_id, violation.path, violation.symbol)
        if key in by_key:
            suppressed.append(violation)
            hit.add(key)
        else:
            kept.append(violation)
    stale = [e for e in entries if e.key not in hit]
    return kept, suppressed, stale


def write_baseline(violations: Sequence[Violation], path: Path) -> int:
    """Write the current findings as the new baseline; returns entry count."""
    seen: Set[Tuple[str, str, str]] = set()
    findings: List[Dict[str, str]] = []
    for violation in sorted(
        violations, key=lambda v: (v.rule_id, v.path, v.symbol)
    ):
        key = (violation.rule_id, violation.path, violation.symbol)
        if key in seen:
            continue
        seen.add(key)
        findings.append(
            {
                "rule_id": violation.rule_id,
                "path": violation.path,
                "symbol": violation.symbol,
                "reason": "",
            }
        )
    payload = {
        "comment": (
            "Reviewed-and-accepted findings; matched on (rule_id, path, "
            "symbol). Fill in 'reason' when adding an entry. Stale entries "
            "are reported by the CLI — remove them."
        ),
        "findings": findings,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(findings)
