"""Interprocedural rule driver: seeds, grid call sites, project analysis.

Per-file rules (:class:`tools.analysis.core.Rule`) see one parsed file;
*project rules* (:class:`ProjectRule`) see the whole call graph built by
:mod:`tools.analysis.callgraph` and enforce cross-function contracts:
fork safety (FORK), cache-key integrity (KEY), and scalar/batch parity
(PAR).  They run only with ``python -m tools.analysis --interprocedural``
because building the graph costs a full second pass over the tree.

This module also centralises the *seed* conventions the rule families
share, so "worker-reachable" means the same thing everywhere:

* ``worker_seeds`` — every function bound to ``worker=`` / ``init=`` /
  ``batch_plan=`` at a ``run_cells`` / ``run_cells_report`` call site,
  the fork-pool ``_worker_loop`` itself, every ``@hot_path``-marked
  function, and the simulation step roots (``Simulator.step`` /
  ``run_for`` / ``run_until_complete``, ``BatchSimulator.run``).
* ``sim_entry_seeds`` — the run construction/finalisation surface
  (``run_workload`` / ``prepare_run`` / ``finalize_run``), simulator
  constructors, and the step roots: everything whose behaviour feeds a
  cached result and therefore must be folded into the
  :class:`~repro.store.keys.ArtifactKey` fingerprint.

Matching is qualname-*suffix* based (``.Simulator.step``) so the same
rules bind inside the small fixture projects the unit tests build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from tools.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    Project,
    build_project,
    call_keywords,
)
from tools.analysis.core import Rule, Violation
from tools.analysis.registry import PROJECT_REGISTRY

__all__ = [
    "ProjectRule",
    "GridSite",
    "grid_call_sites",
    "worker_seeds",
    "sim_entry_seeds",
    "step_root_suffixes",
    "analyze_project",
    "default_project_rules",
]

#: Step roots: the functions that advance simulated time.
STEP_ROOT_SUFFIXES = (
    ".Simulator.step",
    ".Simulator.run_for",
    ".Simulator.run_until_complete",
    ".BatchSimulator.run",
)

#: Entry points that construct/consume a run whose result gets cached.
SIM_ENTRY_SUFFIXES = (
    ".run_workload",
    ".prepare_run",
    ".finalize_run",
    ".Simulator.__init__",
    ".BatchSimulator.__init__",
    *STEP_ROOT_SUFFIXES,
)

#: Callees whose call sites fan work out to forked workers.
GRID_CALL_SUFFIXES = (".run_cells", ".run_cells_report")


def step_root_suffixes() -> Sequence[str]:
    return STEP_ROOT_SUFFIXES


class ProjectRule(Rule):
    """Base class for interprocedural rules (FORK/KEY/PAR families).

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`check` is inert so project rules can share the registry
    plumbing (ids, summaries, ``--list-rules``) with per-file rules.
    """

    def check(self, ctx: object) -> Iterator[Violation]:  # pragma: no cover
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        raise NotImplementedError

    def project_violation(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        message: str,
        symbol: Optional[str] = None,
    ) -> Violation:
        return Violation(
            path=fn.rel_path,
            line=getattr(node, "lineno", fn.line),
            rule_id=self.rule_id,
            message=message,
            symbol=symbol if symbol is not None else fn.qualname,
        )


@dataclass
class GridSite:
    """One ``run_cells(_report)`` call site with its bound callables."""

    site: CallSite
    caller: FunctionInfo
    worker: Optional[str] = None
    init: Optional[str] = None
    batch_plan: Optional[str] = None
    cell_key: Optional[str] = None

    def bound_functions(self) -> List[str]:
        return [
            q for q in (self.worker, self.init, self.batch_plan) if q is not None
        ]


def grid_call_sites(project: Project) -> List[GridSite]:
    """Every fan-out call site with worker/init/batch_plan/cell_key resolved."""
    sites: List[GridSite] = []
    for call_site in project.call_sites_of(*GRID_CALL_SUFFIXES):
        caller = project.functions.get(call_site.caller)
        if caller is None:
            continue
        kwargs = call_keywords(call_site.node)
        grid = GridSite(site=call_site, caller=caller)
        worker_expr = kwargs.get("worker")
        if worker_expr is None and len(call_site.node.args) >= 2:
            worker_expr = call_site.node.args[1]
        for attr, expr in (
            ("worker", worker_expr),
            ("init", kwargs.get("init")),
            ("batch_plan", kwargs.get("batch_plan")),
            ("cell_key", kwargs.get("cell_key")),
        ):
            if expr is None:
                continue
            resolved = project.resolve_ref(caller, expr)
            if resolved is not None:
                setattr(grid, attr, resolved)
        sites.append(grid)
    return sites


def worker_seeds(project: Project) -> Set[str]:
    """Functions that execute inside a forked worker (or the hot loop)."""
    seeds: Set[str] = set()
    for grid in grid_call_sites(project):
        seeds.update(grid.bound_functions())
    seeds.update(
        f.qualname for f in project.functions_matching("._worker_loop")
    )
    seeds.update(
        f.qualname
        for f in project.functions.values()
        if "hot_path" in f.decorators
    )
    seeds.update(
        f.qualname for f in project.functions_matching(*STEP_ROOT_SUFFIXES)
    )
    return seeds


def worker_init_functions(project: Project) -> Set[str]:
    """Functions bound directly to ``init=``: the sanctioned per-worker
    stash writers (they run once after fork, before any cell)."""
    return {
        grid.init for grid in grid_call_sites(project) if grid.init is not None
    }


def sim_entry_seeds(project: Project) -> Set[str]:
    """Functions whose behaviour determines a cached simulation result."""
    seeds = {
        f.qualname for f in project.functions_matching(*SIM_ENTRY_SUFFIXES)
    }
    seeds.update(
        f.qualname
        for f in project.functions.values()
        if "hot_path" in f.decorators
    )
    return seeds


def analyze_project(
    paths: Sequence[Path],
    rules: Sequence[ProjectRule],
    repo_root: Optional[Path] = None,
    honor_allowlist: bool = True,
    project: Optional[Project] = None,
) -> List[Violation]:
    """Build the project over ``paths`` and run every project rule."""
    if project is None:
        project = build_project(paths, repo_root)
    by_rel_path = {m.rel_path: m for m in project.modules.values()}
    found: List[Violation] = []
    for rule in rules:
        for violation in rule.check_project(project):
            module = by_rel_path.get(violation.path)
            if (
                honor_allowlist
                and module is not None
                and violation.rule_id
                in module.ctx.ignored_rules_for(violation.line)
            ):
                continue
            found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return found


def default_project_rules(
    only: Optional[List[str]] = None,
) -> List[ProjectRule]:
    """Instantiate the registered project rule set (optionally a subset)."""
    import tools.analysis.rules  # noqa: F401  (registers the rule set)

    return PROJECT_REGISTRY.instantiate(only)  # type: ignore[return-value]
