"""Fig. 12 — run-time overhead vs. number of running applications."""

from conftest import paper_scale, run_once

from repro.experiments.overhead import OverheadConfig, run_overhead


def test_bench_fig12_overhead(benchmark, assets):
    config = OverheadConfig.paper() if paper_scale() else OverheadConfig.smoke()
    result = run_once(benchmark, lambda: run_overhead(assets, config))
    print("\n[Fig. 12] Run-time overhead")
    print(result.report())
    rows = sorted(result.rows, key=lambda r: r.n_apps)
    # Paper shapes: the DVFS loop scales with applications; the
    # NPU-batched migration policy stays flat; total stays negligible.
    assert rows[-1].dvfs_ms_per_s > rows[0].dvfs_ms_per_s
    npu_growth = rows[-1].migration_npu_ms_per_s / rows[0].migration_npu_ms_per_s
    cpu_growth = rows[-1].migration_cpu_ms_per_s / rows[0].migration_cpu_ms_per_s
    assert npu_growth < 1.6
    assert cpu_growth > 2.0
    assert result.max_total_fraction() < 0.03
    benchmark.extra_info["max_total_fraction"] = result.max_total_fraction()
