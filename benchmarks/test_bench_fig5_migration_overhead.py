"""Fig. 5 — worst-case ping-pong migration overhead per application."""

from conftest import paper_scale, run_once

from repro.experiments.migration import (
    MigrationOverheadConfig,
    run_migration_overhead,
)


def test_bench_fig5_migration_overhead(benchmark, platform):
    config = (
        MigrationOverheadConfig.paper()
        if paper_scale()
        else MigrationOverheadConfig.smoke()
    )
    result = run_once(
        benchmark, lambda: run_migration_overhead(config, platform)
    )
    print("\n[Fig. 5] Worst-case migration overhead")
    print(result.report())
    # Paper shape: worst case < ~4 %, mean well below.
    assert result.max_overhead() < 0.05
    assert result.mean_overhead() < 0.03
    benchmark.extra_info["max_overhead"] = result.max_overhead()
    benchmark.extra_info["mean_overhead"] = result.mean_overhead()
