"""Ablation: one migration per epoch vs. greedy multi-migration."""

from conftest import paper_scale, run_once

from repro.experiments.ablation import (
    AblationConfig,
    run_migration_granularity_ablation,
)


def test_bench_ablation_migration_granularity(benchmark, assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    result = run_once(
        benchmark, lambda: run_migration_granularity_ablation(assets, config)
    )
    print("\n[Ablation] Migration granularity")
    print(result.report())
    one = result.get("one per epoch (paper)")
    greedy = result.get("greedy multi-migration")
    # The paper's choice must not lose on QoS, and greedy migrates at
    # least as often (each extra move risks interacting transients).
    assert one[2] <= greedy[2]
    assert greedy[3] >= one[3]
    benchmark.extra_info["one_per_epoch_migrations"] = one[3]
    benchmark.extra_info["greedy_migrations"] = greedy[3]
