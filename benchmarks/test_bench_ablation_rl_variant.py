"""Ablation: plain Q vs. Double Q for the RL baseline."""

from conftest import paper_scale, run_once

from repro.experiments.ablation import AblationConfig, run_rl_variant_ablation


def test_bench_ablation_rl_variant(benchmark, assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    result = run_once(benchmark, lambda: run_rl_variant_ablation(assets, config))
    print("\n[Ablation] RL learner variant (plain Q vs Double Q)")
    print(result.report())
    plain = result.get("plain Q (paper)")
    double = result.get("double Q")
    # A better learner does not cure the structural RL problems: Double Q
    # must not suddenly reach TOP-IL-like zero-violation behaviour while
    # plain Q violates (both should be in the same ballpark).
    assert abs(plain[1] - double[1]) < 5.0  # temperatures comparable
    benchmark.extra_info["plain_violations"] = plain[2]
    benchmark.extra_info["double_violations"] = double[2]
