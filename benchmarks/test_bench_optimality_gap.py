"""Extension: optimality gap of TOP-IL vs. the privileged oracle."""

from conftest import paper_scale, run_once

from repro.experiments.optimality import OptimalityConfig, run_optimality_gap


def test_bench_optimality_gap(benchmark, assets):
    config = OptimalityConfig.paper() if paper_scale() else OptimalityConfig.smoke()
    result = run_once(benchmark, lambda: run_optimality_gap(assets, config))
    print("\n[Extension] Optimality gap vs. oracle static mapping")
    print(result.report())
    # The learned policy should track the oracle closely (paper Sec. 7.4:
    # 0.5 +/- 0.2 degC mean excess at design time).
    assert result.mean_gap_c() < 2.0
    assert result.il_violations() == 0
    benchmark.extra_info["mean_gap_c"] = result.mean_gap_c()
