"""Ablation: the RL reward's QoS-violation penalty (paper: tuned to -200)."""

from conftest import paper_scale, run_once

from repro.experiments.ablation import AblationConfig, run_rl_reward_ablation


def test_bench_ablation_rl_reward(benchmark, assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    result = run_once(
        benchmark,
        lambda: run_rl_reward_ablation(
            assets, config, penalties=(-50.0, -200.0, -800.0)
        ),
    )
    print("\n[Ablation] RL violation-penalty sweep")
    print(result.report())
    assert len(result.rows) == 3
    # Reward shaping moves the operating point: the sweep must not be
    # degenerate (identical outcomes would mean the penalty is ignored).
    outcomes = {(r.violations, r.migrations) for r in result.rows}
    assert len(outcomes) >= 2
