"""Fig. 7 — illustrative IL vs RL mapping stability on adi / seidel-2d."""

from conftest import paper_scale, run_once

from repro.experiments.illustrative import IllustrativeConfig, run_illustrative


def test_bench_fig7_illustrative(benchmark, assets):
    config = (
        IllustrativeConfig.paper() if paper_scale() else IllustrativeConfig.smoke()
    )
    result = run_once(benchmark, lambda: run_illustrative(assets, config))
    print("\n[Fig. 7] Illustrative example: IL vs RL")
    print(result.report())
    # Paper shape: IL maps adi to big consistently; IL is at least as
    # stable as RL (fewer or equal cluster switches).
    assert result.get("adi", "TOP-IL").fraction_on_big > 0.6
    il_switches = sum(
        r.cluster_switches for r in result.runs if r.technique == "TOP-IL"
    )
    rl_switches = sum(
        r.cluster_switches for r in result.runs if r.technique == "TOP-RL"
    )
    assert il_switches <= rl_switches
    benchmark.extra_info["il_switches"] = il_switches
    benchmark.extra_info["rl_switches"] = rl_switches
