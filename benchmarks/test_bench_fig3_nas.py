"""Fig. 3 — NN topology grid search (depth x width vs. test loss)."""

from conftest import paper_scale, run_once

from repro.experiments.nas import NASConfig, run_nas


def test_bench_fig3_nas(benchmark, assets):
    config = NASConfig.paper() if paper_scale() else NASConfig.smoke()
    result = run_once(benchmark, lambda: run_nas(assets, config))
    print("\n[Fig. 3] NAS grid search")
    print(result.report())
    best = (result.grid.best_depth, result.grid.best_width)
    assert result.grid.losses[best] == min(result.grid.losses.values())
    benchmark.extra_info["best_depth"] = result.grid.best_depth
    benchmark.extra_info["best_width"] = result.grid.best_width
    benchmark.extra_info["best_loss"] = result.grid.best_loss
