"""Extension: quantify the IL-vs-RL stability claim directly."""

from conftest import paper_scale, run_once

from repro.experiments.stability import StabilityConfig, run_stability


def test_bench_stability(benchmark, assets):
    config = StabilityConfig.paper() if paper_scale() else StabilityConfig.smoke()
    result = run_once(benchmark, lambda: run_stability(assets, config))
    print("\n[Extension] Policy stability: IL vs RL")
    print(result.report())
    il = result.get("TOP-IL")
    rl = result.get("TOP-RL")
    # The paper's claim: RL's continual exploration destabilizes mappings.
    assert il.migrations_per_min <= rl.migrations_per_min
    assert il.mapping_entropy <= rl.mapping_entropy + 0.05
    benchmark.extra_info["il_migrations_per_min"] = il.migrations_per_min
    benchmark.extra_info["rl_migrations_per_min"] = rl.migrations_per_min
