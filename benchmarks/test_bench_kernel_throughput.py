"""Simulation-kernel throughput: simulated seconds per wall-clock second.

Runs the same fixed-seed mixed workload as the fast-path equivalence
fixture and reports the headline number in
``benchmark.extra_info["sim_s_per_wall_s"]`` so it lands in the
pytest-benchmark JSON (``--benchmark-json=...``).  At smoke scale the
seed kernel measured ~64 sim-s/wall-s; the fast-path kernel must hold
well above that (the CI gate in ``tests/perf`` enforces a floor).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.governors.techniques import GTSOndemand
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload

SEED = 11
N_APPS = 6
ARRIVAL_RATE = 1.0 / 6.0
INSTRUCTION_SCALE = 0.02


def test_bench_kernel_throughput(benchmark, platform):
    workload = mixed_workload(
        platform,
        n_apps=N_APPS,
        arrival_rate_per_s=ARRIVAL_RATE,
        seed=SEED,
        instruction_scale=INSTRUCTION_SCALE,
    )

    def run():
        start = time.perf_counter()
        result = run_workload(
            platform, GTSOndemand(), workload, cooling=FAN_COOLING, seed=SEED
        )
        wall_s = time.perf_counter() - start
        return result.sim.now_s, wall_s

    sim_s, wall_s = run_once(benchmark, run)
    throughput = sim_s / wall_s
    benchmark.extra_info["sim_s"] = sim_s
    benchmark.extra_info["wall_s"] = wall_s
    benchmark.extra_info["sim_s_per_wall_s"] = throughput
    assert sim_s > 10.0  # the scenario actually ran
    assert throughput > 0.0
