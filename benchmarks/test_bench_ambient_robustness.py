"""Extension: ambient-temperature robustness of the trained policy."""

from conftest import paper_scale, run_once

from repro.experiments.robustness import AmbientConfig, run_ambient_robustness


def test_bench_ambient_robustness(benchmark, assets):
    config = AmbientConfig.paper() if paper_scale() else AmbientConfig.smoke()
    result = run_once(benchmark, lambda: run_ambient_robustness(assets, config))
    print("\n[Extension] Ambient-temperature robustness")
    print(result.report())
    # Decisions are temperature-free, so QoS must hold at every ambient
    # and the rise above ambient must barely move.
    assert result.max_violations() == 0
    assert result.rise_spread_c() < 2.0
    benchmark.extra_info["rise_spread_c"] = result.rise_spread_c()
