"""Fig. 8 — the main experiment: mixed workloads, fan and no fan."""

import pytest
from conftest import paper_scale, run_once

from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.thermal import FAN_COOLING, PASSIVE_COOLING


@pytest.fixture(scope="module")
def main_result(assets):
    if paper_scale():
        config = MainMixedConfig.paper()
    else:
        config = MainMixedConfig(
            n_apps=8,
            arrival_rates=(1.0 / 8.0,),
            repetitions=2,
            coolings=(FAN_COOLING, PASSIVE_COOLING),
            instruction_scale=0.03,
        )
    return run_main_mixed(assets, config)


def test_bench_fig8_main(benchmark, assets, main_result):
    result = run_once(benchmark, lambda: main_result)
    print("\n[Fig. 8] Mixed workloads — avg temperature and QoS violations")
    print(result.report())
    for cooling in ("fan", "no_fan"):
        il = result.aggregate("TOP-IL", cooling)
        rl = result.aggregate("TOP-RL", cooling)
        ondemand = result.aggregate("GTS/ondemand", cooling)
        powersave = result.aggregate("GTS/powersave", cooling)
        # Paper shapes, per cooling configuration:
        assert il.mean_temp_c < ondemand.mean_temp_c, cooling
        assert powersave.mean_violations >= il.mean_violations, cooling
        assert il.mean_violations <= rl.mean_violations, cooling
    fan = result.aggregate("TOP-IL", "fan")
    benchmark.extra_info["il_temp_fan"] = fan.mean_temp_c
    benchmark.extra_info["il_violations_fan"] = fan.mean_violations
    benchmark.extra_info["ondemand_minus_il_c"] = (
        result.aggregate("GTS/ondemand", "fan").mean_temp_c - fan.mean_temp_c
    )


def test_bench_fig10_frequency_usage(benchmark, main_result):
    """Fig. 10 — CPU time per cluster and VF level (no-fan runs)."""
    result = run_once(benchmark, lambda: main_result)
    print("\n[Fig. 10] CPU time per cluster and VF level (no fan)")
    print(result.frequency_usage_report(cooling="no_fan"))
    ondemand = result.aggregate("GTS/ondemand", "no_fan").cpu_time_by_vf
    powersave = result.aggregate("GTS/powersave", "no_fan").cpu_time_by_vf
    # Paper shapes: GTS favors big; ondemand runs mostly at the top big
    # level; powersave only ever uses the lowest levels.
    assert ondemand.cluster_total("big") > ondemand.cluster_total("LITTLE")
    top_big = max(f for (c, f) in ondemand.seconds if c == "big")
    assert ondemand.fraction("big", top_big) > 0.3
    for (cluster, freq), seconds in powersave.seconds.items():
        if seconds > 0:
            assert freq < 0.7e9
