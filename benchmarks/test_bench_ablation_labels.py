"""Ablations of the IL training-data design: labels and features.

These quantify two silent design choices of the paper: the Eq.-4 soft
labels (vs. hard one-hot labels) and the f_tilde_{x\\AoI} features.
"""

import pytest
from conftest import paper_scale, run_once

from repro.experiments.ablation import (
    AblationConfig,
    _collect_grids,
    run_feature_ablation,
    run_label_ablation,
)


@pytest.fixture(scope="module")
def ablation_setup(assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    return config, _collect_grids(assets, config)


def test_bench_ablation_labels(benchmark, assets, ablation_setup):
    config, grids = ablation_setup
    result = run_once(benchmark, lambda: run_label_ablation(assets, config, grids))
    print("\n[Ablation] Soft vs hard labels")
    print(result.report())
    soft = result.get("soft alpha=1 (paper)")
    hard = result.get("hard one-hot")
    # The paper's soft labels must not lose to hard one-hot labels.
    assert soft.within_1c >= hard.within_1c - 0.02
    benchmark.extra_info["soft_within"] = soft.within_1c
    benchmark.extra_info["hard_within"] = hard.within_1c


def test_bench_ablation_features(benchmark, assets, ablation_setup):
    config, grids = ablation_setup
    result = run_once(
        benchmark, lambda: run_feature_ablation(assets, config, grids)
    )
    print("\n[Ablation] Feature importance")
    print(result.report())
    full = result.get("full features (paper)")
    reduced = result.get("no f_wo_aoi, no L2D")
    # Dropping information must not *improve* the mean excess noticeably.
    assert full.excess_c <= reduced.excess_c + 0.1
    benchmark.extra_info["full_within"] = full.within_1c
    benchmark.extra_info["reduced_within"] = reduced.within_1c
