"""Ablation: control-period sweep around the paper's 500 ms / 50 ms."""

from conftest import paper_scale, run_once

from repro.experiments.ablation import AblationConfig, run_period_ablation


def test_bench_ablation_periods(benchmark, assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    result = run_once(benchmark, lambda: run_period_ablation(assets, config))
    print("\n[Ablation] Migration / DVFS period sweep")
    print(result.report())
    paper_rows = [
        r
        for r in result.rows
        if r.migration_period_s == 0.5 and r.dvfs_period_s == 0.05
    ]
    assert paper_rows, "paper operating point missing from the sweep"
    # The paper's operating point must be competitive: no violations and
    # within 1 degC of the best sweep point.
    best_temp = min(r.mean_temp_c for r in result.rows)
    assert paper_rows[0].violations == 0
    assert paper_rows[0].mean_temp_c <= best_temp + 1.0
    # Slower migration epochs mean fewer migrations.
    slowest = max(result.rows, key=lambda r: r.migration_period_s)
    fastest = min(result.rows, key=lambda r: r.migration_period_s)
    assert slowest.migrations <= fastest.migrations
