"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table and figure of the paper's evaluation at
a CI-friendly scale.  Design-time artifacts are cached in a repo-local
directory (``.repro_cache``) so repeated benchmark invocations skip the
expensive oracle-trace collection and RL pre-training.

Set ``REPRO_BENCH_SCALE=paper`` to run the full-size configurations
instead of the smoke ones (hours instead of minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.assets import AssetConfig, AssetStore
from repro.platform import hikey970

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
CACHE_DIR = os.path.join(os.path.dirname(__file__), os.pardir, ".repro_cache")


def paper_scale() -> bool:
    return BENCH_SCALE == "paper"


@pytest.fixture(scope="session")
def platform():
    return hikey970()


@pytest.fixture(scope="session")
def assets(platform):
    if paper_scale():
        config = AssetConfig.paper(cache_dir=CACHE_DIR)
    else:
        config = AssetConfig.smoke(cache_dir=CACHE_DIR)
    store = AssetStore(platform, config)
    store.dataset()
    store.models()
    store.qtables()
    return store


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
