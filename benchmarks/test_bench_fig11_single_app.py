"""Fig. 11 — single-application workloads with unseen applications."""

from conftest import paper_scale, run_once

from repro.experiments.single_app import SingleAppConfig, run_single_app


def test_bench_fig11_single_app(benchmark, assets):
    if paper_scale():
        config = SingleAppConfig.paper()
    else:
        config = SingleAppConfig(
            apps=("canneal", "swaptions", "bodytrack", "jacobi-2d"),
            repetitions=2,
            instruction_scale=0.02,
        )
    result = run_once(benchmark, lambda: run_single_app(assets, config))
    print("\n[Fig. 11] Single-application workloads (all unseen)")
    print(result.report())
    # Paper shapes: TOP-IL has zero violations; powersave violates
    # everything except the memory-bound canneal; ondemand is hottest.
    assert result.total_violations("TOP-IL") == 0
    assert result.get("canneal", "GTS/powersave").violations == 0
    non_canneal = [
        o
        for o in result.outcomes
        if o.technique == "GTS/powersave" and o.app != "canneal"
    ]
    assert all(o.violations > 0 for o in non_canneal)
    assert result.mean_temp("GTS/ondemand") >= result.mean_temp("TOP-IL") - 0.2
    benchmark.extra_info["il_violations"] = result.total_violations("TOP-IL")
    benchmark.extra_info["powersave_violations"] = result.total_violations(
        "GTS/powersave"
    )
