"""Grid throughput: the batched lockstep backend vs the fork pool.

Runs one replication grid — the same fixed-seed smoke workload swept
over simulator seeds, the lockstep backend's sweet-spot shape (every
cell has identical length, so the batch fill ratio stays ~1.0) — once
through the supervised fork pool and once through
``backend="batched"``, and reports both throughputs plus their ratio in
``benchmark.extra_info``:

* ``pool_cells_per_wall_s`` — fork-pool grid throughput
* ``batched_cells_per_wall_s`` — batched-backend grid throughput
* ``batched_speedup_over_pool`` — the headline ratio

Both legs include workload construction, cell preparation, and summary
finalization, so the ratio is end-to-end.  The batched leg must also
return results equal to the pool's — the backend's bit-identity
contract, asserted here on top of the property suite.  The CI gate in
``tests/perf`` enforces a floor on the batched leg only.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.experiments.parallel import BatchCellPlan, run_cells_report
from repro.governors.techniques import GTSOndemand
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import finalize_run, prepare_run, run_workload

WORKLOAD_SEED = 11
N_APPS = 6
ARRIVAL_RATE = 1.0 / 6.0
INSTRUCTION_SCALE = 0.02
N_CELLS = 64
POOL_WORKERS = 4


def _workload(platform):
    return mixed_workload(
        platform,
        n_apps=N_APPS,
        arrival_rate_per_s=ARRIVAL_RATE,
        seed=WORKLOAD_SEED,
        instruction_scale=INSTRUCTION_SCALE,
    )


def test_bench_grid_throughput(benchmark, platform):
    cells = list(range(100, 100 + N_CELLS))

    def worker(seed):
        return run_workload(
            platform, GTSOndemand(), _workload(platform), FAN_COOLING,
            seed=seed,
        ).summary

    def batch_plan(seed):
        def prepare():
            return prepare_run(
                platform, GTSOndemand(), _workload(platform), FAN_COOLING,
                seed=seed,
            )

        def finalize(sim):
            return finalize_run(
                sim, GTSOndemand(), _workload(platform), seed=seed
            ).summary

        return BatchCellPlan(prepare=prepare, finalize=finalize)

    def run():
        start = time.perf_counter()
        pool = run_cells_report(
            cells, worker, parallel=True, n_workers=POOL_WORKERS
        )
        pool_s = time.perf_counter() - start
        start = time.perf_counter()
        batched = run_cells_report(
            cells, worker, backend="batched", batch_plan=batch_plan
        )
        batched_s = time.perf_counter() - start
        return pool, pool_s, batched, batched_s

    pool, pool_s, batched, batched_s = run_once(benchmark, run)
    assert pool.ok() and batched.ok()
    assert pool.results == batched.results
    pool_tp = N_CELLS / pool_s
    batched_tp = N_CELLS / batched_s
    benchmark.extra_info["n_cells"] = N_CELLS
    benchmark.extra_info["pool_cells_per_wall_s"] = pool_tp
    benchmark.extra_info["batched_cells_per_wall_s"] = batched_tp
    benchmark.extra_info["batched_speedup_over_pool"] = batched_tp / pool_tp
    assert batched_tp > pool_tp
