"""Sec. 7.4 — held-out model evaluation (within 1 degC of optimal)."""

from conftest import paper_scale, run_once

from repro.experiments.model_eval import ModelEvalConfig, run_model_eval


def test_bench_model_eval(benchmark, assets):
    config = ModelEvalConfig.paper() if paper_scale() else ModelEvalConfig.smoke()
    result = run_once(benchmark, lambda: run_model_eval(assets, config))
    print("\n[Sec. 7.4] Model evaluation on held-out AoIs")
    print(result.report())
    # Paper: within 1 degC in 82 +/- 5 % of cases, 0.5 +/- 0.2 degC excess.
    # The smoke-scale model clears relaxed thresholds.
    assert result.mean_within > 0.5
    assert result.mean_excess_c < 2.0
    benchmark.extra_info["within_1c"] = result.mean_within
    benchmark.extra_info["excess_c"] = result.mean_excess_c
