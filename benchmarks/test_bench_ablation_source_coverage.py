"""Ablation: the paper's no-DAgger claim (exhaustive source coverage)."""

from conftest import paper_scale, run_once

from repro.experiments.ablation import (
    AblationConfig,
    run_source_coverage_ablation,
)


def test_bench_ablation_source_coverage(benchmark, assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    result = run_once(
        benchmark, lambda: run_source_coverage_ablation(assets, config)
    )
    print("\n[Ablation] Source coverage (no-DAgger claim)")
    print(result.report())
    full = result.get("all sources (paper)")
    optimal_only = result.get("optimal source only")
    # Training on every source must help recovery from bad mappings —
    # this is the paper's argument for not needing DAgger.
    assert full.within_1c >= optimal_only.within_1c
    benchmark.extra_info["all_sources_within"] = full.within_1c
    benchmark.extra_info["optimal_only_within"] = optimal_only.within_1c
