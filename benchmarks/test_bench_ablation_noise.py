"""Ablation: measurement noise vs. label sharpness (the alpha trade-off)."""

from conftest import paper_scale, run_once

from repro.experiments.ablation import AblationConfig, run_noise_ablation


def test_bench_ablation_noise(benchmark, assets):
    config = AblationConfig.paper() if paper_scale() else AblationConfig.smoke()
    result = run_once(
        benchmark,
        lambda: run_noise_ablation(
            assets, config, noise_stds_c=(0.0, 1.0), alphas=(0.5, 2.0)
        ),
    )
    print("\n[Ablation] Measurement noise x label alpha")
    print(result.report())
    # Sec. 4.2's claim: sharper labels (high alpha) are more susceptible
    # to measurement noise.  The degradation under noise must be at least
    # as bad for alpha=2 as for alpha=0.5.
    drop_sharp = (
        result.get("noise=0.0C alpha=2").within_1c
        - result.get("noise=1.0C alpha=2").within_1c
    )
    drop_tolerant = (
        result.get("noise=0.0C alpha=0.5").within_1c
        - result.get("noise=1.0C alpha=0.5").within_1c
    )
    assert drop_sharp >= drop_tolerant - 0.05
    benchmark.extra_info["drop_sharp"] = drop_sharp
    benchmark.extra_info["drop_tolerant"] = drop_tolerant
