"""Fig. 1 — motivational example: regenerate the per-mapping temperatures."""

from conftest import paper_scale, run_once

from repro.experiments.motivation import MotivationConfig, run_motivation
from repro.platform.hikey import BIG, LITTLE


def test_bench_fig1_motivation(benchmark, platform):
    config = MotivationConfig.paper() if paper_scale() else MotivationConfig.smoke()
    result = run_once(benchmark, lambda: run_motivation(config, platform))
    print("\n[Fig. 1] Motivational example")
    print(result.report())
    # Paper shape: adi is big-optimal alone, seidel-2d LITTLE-optimal alone.
    assert result.optimal_cluster("adi", 1) == BIG
    assert result.optimal_cluster("seidel-2d", 1) == LITTLE
    benchmark.extra_info["adi_s1_gap_c"] = result.temperature_gap("adi", 1)
    benchmark.extra_info["seidel_s1_gap_c"] = result.temperature_gap("seidel-2d", 1)
