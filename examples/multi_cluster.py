#!/usr/bin/env python
"""Beyond big.LITTLE: TOP-IL on a synthetic tri-cluster platform.

The paper notes its solution "is compatible with any number of clusters".
This example runs the complete design-time pipeline and run-time policy on
a LITTLE / big / prime platform (4 + 3 + 1 cores): collect traces for a
synthetic kernel, build the (22-feature) dataset, train the migration NN,
and watch it place a QoS-constrained application.

Usage::

    python examples/multi_cluster.py [--qos-fraction 0.4]
"""

from __future__ import annotations

import argparse
import dataclasses

import repro.apps.catalog as catalog_module
from repro.governors.qos_dvfs import QoSDVFSControlLoop
from repro.il.dataset import DatasetBuilder
from repro.il.policy import TopILMigrationPolicy
from repro.il.traces import TraceCollector, TraceScenario
from repro.nn.layers import build_mlp
from repro.nn.training import TrainingConfig, train_model
from repro.platform.synthetic import synthetic_app, tricluster
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qos-fraction", type=float, default=0.4)
    args = parser.parse_args()

    platform = tricluster()
    print(f"platform: {platform.name}")
    print(ascii_table(
        ["cluster", "cores", "f_max"],
        [
            (c.name, c.n_cores, f"{c.vf_table.max_level.frequency_hz / 1e9:.2f} GHz")
            for c in platform.clusters
        ],
    ))

    # Register synthetic kernels in the catalog for trace resolution.
    kernels = {
        "tri-compute": synthetic_app("tri-compute", mem_time=0.2e-10),
        "tri-memory": synthetic_app("tri-memory", mem_time=4.0e-10),
    }
    catalog_module._CATALOG.update(kernels)

    print("\n[1/3] collecting traces (2 scenarios x 3 candidate cores)...")
    collector = TraceCollector(platform, vf_levels_per_cluster=2,
                               max_window_s=3.0, min_window_s=2.0)
    grids = []
    for aoi in kernels:
        background = ((1, "tri-compute"), (5, "tri-memory"))
        grids.append(
            collector.collect(
                TraceScenario(aoi_app=aoi, background=background),
                aoi_cores=[0, 4, 7],
            )
        )

    print("[2/3] building the dataset and training the migration NN...")
    builder = DatasetBuilder(platform, qos_fractions=(0.25, 0.5, 0.75))
    dataset = builder.build(grids)
    print(f"      {len(dataset)} examples, {dataset.features.shape[1]} features "
          f"(21 on big.LITTLE; one extra cluster ratio here)")
    model = build_mlp(dataset.features.shape[1], platform.n_cores, 3, 32,
                      RandomSource(0))
    result = train_model(model, dataset.features, dataset.labels,
                         TrainingConfig(max_epochs=120, patience=15))
    print(f"      validation MSE {result.best_val_loss:.4f}")

    print("[3/3] managing a kernel at run time...")
    sim = Simulator(platform, FAN_COOLING, config=SimConfig(dt_s=0.02),
                    sensor_noise_std_c=0.0)
    loop = QoSDVFSControlLoop()
    loop.attach(sim)
    policy = TopILMigrationPolicy(model, dvfs_loop=loop)
    policy.attach(sim)
    app = dataclasses.replace(kernels["tri-compute"], total_instructions=1e15)
    target = args.qos_fraction * app.ips(
        "prime", platform.cluster("prime").vf_table.max_level.frequency_hz
    )
    pid = sim.submit(app, target, 0.0)
    sim.run_for(5.0)
    proc = sim.process(pid)
    cluster = platform.cluster_of_core(proc.core_id)
    print(ascii_table(
        ["metric", "value"],
        [
            ("final mapping", f"core {proc.core_id} ({cluster.name})"),
            ("QoS", "met" if sim.qos_satisfied(proc) else "violated"),
            ("VF levels", ", ".join(
                f"{n}={lv.frequency_hz / 1e9:.2f} GHz"
                for n, lv in sim.vf_levels().items()
            )),
            ("sensor temp", f"{sim.sensor_temp_c():.1f} C"),
        ],
    ))


if __name__ == "__main__":
    main()
