#!/usr/bin/env python
"""Fig. 7-style run panel: temperature and per-app mapping timelines.

Runs a small mixed workload under a chosen technique and renders the
trace as text: a temperature sparkline plus one mapping row per
application ('b' = big cluster, 'L' = LITTLE, '.' = not running), with
the fraction of time each application met its QoS target.

Usage::

    python examples/run_timeline.py [--technique top-il|top-rl|ondemand|powersave]
"""

from __future__ import annotations

import argparse

from repro.experiments.assets import AssetConfig, AssetStore
from repro.governors import GTSOndemand, GTSPowersave
from repro.il import TopIL
from repro.metrics.timeline import render_run_timelines
from repro.rl import TopRL
from repro.utils.rng import RandomSource
from repro.workloads import mixed_workload, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--technique",
        default="top-il",
        choices=["top-il", "top-rl", "ondemand", "powersave"],
    )
    parser.add_argument("--apps", type=int, default=6)
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument("--cache", default=".repro_cache")
    args = parser.parse_args()

    assets = AssetStore(config=AssetConfig.smoke(cache_dir=args.cache))
    platform = assets.platform
    technique = {
        "top-il": lambda: TopIL(assets.models()[0]),
        "top-rl": lambda: TopRL(
            qtable=assets.qtables()[0].copy(),
            rng=RandomSource(args.seed).child("rl"),
        ),
        "ondemand": GTSOndemand,
        "powersave": GTSPowersave,
    }[args.technique]()

    workload = mixed_workload(
        platform,
        n_apps=args.apps,
        arrival_rate_per_s=1.0 / 6.0,
        seed=args.seed,
        instruction_scale=0.04,
    )
    print(f"running {technique.name} on {args.apps} apps ...")
    run = run_workload(platform, technique, workload, seed=args.seed)

    targets = {p.pid: p.qos_target_ips for p in run.sim.all_processes()}
    print()
    print(render_run_timelines(run.trace, platform, targets))
    print()
    s = run.summary
    print(f"avg temp {s.mean_temp_c:.1f} C, peak {s.peak_temp_c:.1f} C, "
          f"violations {s.n_qos_violations}/{s.n_apps}, "
          f"migrations {s.migrations}")


if __name__ == "__main__":
    main()
