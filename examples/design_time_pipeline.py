#!/usr/bin/env python
"""Walk through the oracle-demonstration pipeline of Fig. 2 step by step.

For one scenario (an AoI plus a fixed background) this example:

1. collects traces over the per-cluster VF grid for each free core,
   printing the performance/temperature tables of Fig. 2a/2b;
2. picks one QoS target and background requirement and shows the Eq. 3
   trace selection and the Eq. 4 soft labels (Fig. 2c);
3. prints a few of the resulting training examples (Fig. 2d).

Usage::

    python examples/design_time_pipeline.py [--aoi seidel-2d]
"""

from __future__ import annotations

import argparse

from repro.il.dataset import DatasetBuilder
from repro.il.traces import TraceCollector, TraceScenario
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.utils.tables import ascii_table
from repro.utils.units import format_frequency


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--aoi", default="seidel-2d")
    args = parser.parse_args()

    platform = hikey970()
    scenario = TraceScenario(
        aoi_app=args.aoi,
        # Background occupies six cores; cores 3 and 6 stay free, exactly
        # like the paper's illustrative example.
        background=(
            (0, "syr2k"), (1, "heat-3d"), (2, "gramschmidt"),
            (4, "fdtd-2d"), (5, "syr2k"), (7, "floyd-warshall"),
        ),
    )
    print(f"AoI: {args.aoi}; free cores: {scenario.free_cores(platform)}")

    print("\n[1/3] collecting traces over the reduced VF grid...")
    collector = TraceCollector(platform, vf_levels_per_cluster=3)
    grid = collector.collect(scenario)

    for core in grid.aoi_cores():
        cluster = platform.cluster_of_core(core).name
        print(f"\nTrace results (AoI on core {core}, {cluster} cluster):")
        rows = []
        for f_l in grid.vf_grid[LITTLE]:
            for f_b in grid.vf_grid[BIG]:
                point = grid.lookup(core, {LITTLE: f_l, BIG: f_b})
                rows.append(
                    (
                        format_frequency(f_l),
                        format_frequency(f_b),
                        f"{point.aoi_ips / 1e6:.0f} MIPS",
                        f"{point.peak_temp_c:.1f} C",
                    )
                )
        print(ascii_table(["f_LITTLE", "f_big", "AoI perf", "peak temp"], rows))

    print("\n[2/3] sweeping one QoS target + background requirement (Eq. 3/4)...")
    builder = DatasetBuilder(platform)
    qos_target = 0.4 * grid.max_aoi_ips()
    f_wo_aoi = {
        LITTLE: grid.vf_grid[LITTLE][1],
        BIG: grid.vf_grid[BIG][0],
    }
    print(f"Q_AoI = {qos_target / 1e6:.0f} MIPS, "
          f"f~(LITTLE\\AoI) = {format_frequency(f_wo_aoi[LITTLE])}, "
          f"f~(big\\AoI) = {format_frequency(f_wo_aoi[BIG])}")
    selections = {
        core: builder.select_trace(grid, core, qos_target, f_wo_aoi)
        for core in grid.aoi_cores()
    }
    rows = []
    for core, sel in selections.items():
        if sel.point is None:
            rows.append((core, "-", "-", "QoS infeasible"))
        else:
            rows.append(
                (
                    core,
                    format_frequency(sel.f_hz[LITTLE]),
                    format_frequency(sel.f_hz[BIG]),
                    f"{sel.point.peak_temp_c:.1f} C",
                )
            )
    print(ascii_table(["core", "selected f_LITTLE", "selected f_big", "temp"], rows))
    labels = builder.make_labels(selections, sorted(scenario.background_dict()))
    print(f"labels (Eq. 4): {['%.2f' % v for v in labels]}")

    print("\n[3/3] building the full dataset for this scenario...")
    dataset = builder.build_from_grid(grid)
    print(f"{len(dataset)} training examples "
          f"(features {dataset.features.shape}, labels {dataset.labels.shape})")
    print("first example features:",
          [f"{v:.2f}" for v in dataset.features[0]])
    print("first example labels:  ",
          [f"{v:.2f}" for v in dataset.labels[0]])


if __name__ == "__main__":
    main()
