#!/usr/bin/env python
"""Characterize an application across the full VF grid (Fig. 2a/2b style).

Prints the IPS / power / energy-per-instruction table the paper's trace
campaign measures on the board, directly from the application model, and
highlights the cheapest operating point for a chosen QoS target — the
decision the whole paper revolves around.

Usage::

    python examples/app_characterization.py [--app adi] [--qos-fraction 0.3]
"""

from __future__ import annotations

import argparse

from repro.apps import app_catalog, get_app, profile_app, qos_fraction_of_big_max
from repro.platform import hikey970
from repro.utils.plots import ascii_bars
from repro.utils.units import format_frequency


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="adi", choices=sorted(app_catalog()))
    parser.add_argument("--qos-fraction", type=float, default=0.3)
    args = parser.parse_args()

    platform = hikey970()
    app = get_app(args.app)
    profile = profile_app(app, platform)

    print(profile.report())

    target = qos_fraction_of_big_max(app, platform, args.qos_fraction)
    print(f"\nQoS target: {target / 1e6:.0f} MIPS "
          f"({args.qos_fraction:.0%} of big-cluster peak)")
    point = profile.min_point_for(target)
    if point is None:
        print("-> target unreachable on this platform")
        return
    print(f"-> cheapest feasible point: {point.cluster} @ "
          f"{format_frequency(point.frequency_hz)} "
          f"({point.core_power_w * 1e3:.0f} mW core power)")

    best = profile.most_efficient_point()
    print(f"-> most energy-efficient point: {best.cluster} @ "
          f"{format_frequency(best.frequency_hz)} "
          f"({best.energy_per_instruction_nj:.2f} nJ/inst)")

    print("\ncore power of the feasible options (per cluster minimum):")
    rows = []
    for cluster in platform.clusters:
        feasible = [
            p for p in profile.on_cluster(cluster.name) if p.ips >= target
        ]
        if feasible:
            cheapest = min(feasible, key=lambda p: p.core_power_w)
            rows.append(
                (
                    f"{cluster.name} @ {format_frequency(cheapest.frequency_hz)}",
                    cheapest.core_power_w * 1e3,
                )
            )
        else:
            rows.append((f"{cluster.name} (infeasible)", 0.0))
    print(ascii_bars(rows, unit=" mW"))


if __name__ == "__main__":
    main()
