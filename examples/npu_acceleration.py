#!/usr/bin/env python
"""Why the NPU matters: migration-policy latency vs. application count.

The paper's headline engineering claim is that batching the per-AoI NN
inferences into a single NPU call keeps the migration policy's latency
constant regardless of how many applications run, whereas serial CPU
inference would scale linearly.  This example prints the Fig. 12 series
for both back-ends and the resulting total manager overhead.

Usage::

    python examples/npu_acceleration.py [--max-apps 16]
"""

from __future__ import annotations

import argparse

from repro.nn.layers import build_mlp
from repro.npu.latency import CPUInferenceLatency, NPUInferenceLatency, model_flops
from repro.npu.overhead import ManagementOverheadModel
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-apps", type=int, default=16)
    args = parser.parse_args()

    # The paper's topology: 21 features -> 4x64 ReLU -> 8 ratings.
    model = build_mlp(21, 8, 4, 64, RandomSource(0))
    print(f"model: 4x64 MLP, {model.n_parameters()} parameters, "
          f"{model_flops(model)} FLOPs per sample\n")

    npu = ManagementOverheadModel(inference=NPUInferenceLatency())
    cpu = ManagementOverheadModel(inference=CPUInferenceLatency())

    rows = []
    for n in range(1, args.max_apps + 1):
        mig_npu = npu.migration_invocation_s(n, model)
        mig_cpu = cpu.migration_invocation_s(n, model)
        dvfs = npu.dvfs_invocation_s(n)
        total = (20 * dvfs + 2 * mig_npu) * 1e3  # ms of CPU time per second
        rows.append(
            (
                n,
                f"{mig_npu * 1e3:.2f} ms",
                f"{mig_cpu * 1e3:.2f} ms",
                f"{mig_cpu / mig_npu:.1f}x",
                f"{dvfs * 1e3:.2f} ms",
                f"{total:.1f} ms/s ({total / 10:.2f} %)",
            )
        )
    print(ascii_table(
        ["apps", "migration (NPU)", "migration (CPU)", "CPU/NPU",
         "DVFS loop", "total manager overhead"],
        rows,
    ))
    print("\nPaper reference points: 4.3 ms per migration invocation, "
          "0.54 ms per DVFS invocation, total <= ~1.7 % of one core.")


if __name__ == "__main__":
    main()
