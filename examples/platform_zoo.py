#!/usr/bin/env python
"""Thermal headroom across the platform zoo.

Runs the same mixed workload (per-platform adapted, see
``docs/platforms.md``) on every stock platform — the paper's HiKey 970,
the synthetic tri-cluster phone SoC, and the NPU-less 16-core grid —
under a minimal default-placement policy, and compares how much headroom
each SoC keeps below its DTM throttle trigger.

Usage::

    python examples/platform_zoo.py [--n-apps 4] [--duration 30]
"""

from __future__ import annotations

import argparse

from repro.platform import get_platform, get_spec, platform_names
from repro.thermal import FAN_COOLING
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


class DefaultPlacement:
    """No-op technique: OS default placement, VF levels left alone."""

    name = "default"

    def attach(self, sim) -> None:
        pass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-apps", type=int, default=4)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="target busy time per app, seconds-ish")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    rows = []
    for name in platform_names():
        platform = get_platform(name)
        spec = get_spec(name)
        workload = mixed_workload(
            platform,
            n_apps=args.n_apps,
            arrival_rate_per_s=1.0 / 5.0,
            seed=args.seed,
            instruction_scale=args.duration / 3000.0,
        )
        run = run_workload(
            platform, DefaultPlacement(), workload,
            cooling=FAN_COOLING, seed=args.seed,
        )
        summary = run.summary
        headroom = spec.dtm.trigger_temp_c - summary.peak_temp_c
        rows.append((
            name,
            f"{platform.n_cores} ({'+'.join(str(c.n_cores) for c in platform.clusters)})",
            "yes" if spec.npu.present else "no",
            f"{summary.mean_temp_c:.1f}",
            f"{summary.peak_temp_c:.1f}",
            f"{spec.dtm.trigger_temp_c:.0f}",
            f"{headroom:+.1f}",
            summary.dtm_throttle_events,
        ))

    print("same workload recipe, default placement, fan cooling:\n")
    print(ascii_table(
        ["platform", "cores", "NPU", "mean C", "peak C",
         "trigger C", "headroom C", "throttles"],
        rows,
    ))
    print(
        "\nheadroom = DTM trigger minus observed peak; negative means the"
        "\nplatform throttled.  Run a managed comparison with"
        "\n  python -m repro.cli run platforms --scale smoke"
    )


if __name__ == "__main__":
    main()
