#!/usr/bin/env python
"""Explore the thermal substrate: mappings, DVFS, and cooling.

Reproduces the paper's motivational observation interactively: place an
application on either cluster at the minimum VF levels that satisfy its
QoS target and watch the temperature difference, with and without a fan.

Usage::

    python examples/thermal_playground.py [--app adi] [--qos-fraction 0.3]
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.apps import app_catalog, get_app
from repro.apps.qos import qos_fraction_of_big_max
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING, PASSIVE_COOLING
from repro.utils.tables import ascii_table
from repro.utils.units import format_frequency


def sparkline(values, width=48):
    """Render a temperature series as a one-line ASCII sparkline."""
    blocks = " .:-=+*#%@"
    if not values:
        return ""
    stride = max(1, len(values) // width)
    sampled = values[::stride][:width]
    lo, hi = min(sampled), max(sampled)
    span = max(1e-9, hi - lo)
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled)


def run_mapping(platform, cooling, app_name, target, cluster_name, duration):
    """Run one mapping at the minimum feasible VF levels; return the trace."""
    app = get_app(app_name)
    cluster = platform.cluster(cluster_name)
    level = app.min_frequency_for(cluster_name, cluster.vf_table, target)
    if level is None:
        return None, None
    sim = Simulator(
        platform,
        cooling,
        config=SimConfig(dt_s=0.02, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )
    for c in platform.clusters:
        sim.set_vf_level(
            c.name, level if c.name == cluster_name else c.vf_table.min_level
        )
    endless = dataclasses.replace(app, total_instructions=1e15)
    sim.submit(endless, target, 0.0)
    core = platform.cores_in_cluster(cluster_name)[0]
    sim.placement_policy = lambda s, p: core
    sim.run_for(duration)
    return sim, level


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="adi", choices=sorted(app_catalog()))
    parser.add_argument("--qos-fraction", type=float, default=0.3,
                        help="QoS target as a fraction of big-cluster peak IPS")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per mapping")
    args = parser.parse_args()

    platform = hikey970()
    app = get_app(args.app)
    target = qos_fraction_of_big_max(app, platform, args.qos_fraction)
    print(f"app: {args.app}   QoS target: {target / 1e6:.0f} MIPS "
          f"({args.qos_fraction:.0%} of big-cluster peak)\n")

    rows = []
    for cooling in (FAN_COOLING, PASSIVE_COOLING):
        for cluster_name in (LITTLE, BIG):
            sim, level = run_mapping(
                platform, cooling, args.app, target, cluster_name, args.duration
            )
            if sim is None:
                rows.append((cooling.name, cluster_name, "-", "QoS infeasible", ""))
                continue
            temps = sim.trace.sensor_temp_c
            rows.append(
                (
                    cooling.name,
                    cluster_name,
                    format_frequency(level.frequency_hz),
                    f"{temps[-1]:.1f} C",
                    sparkline(temps),
                )
            )
    print(ascii_table(
        ["cooling", "mapping", "required VF", "final temp", "temperature over time"],
        rows,
    ))
    print("\nReading the table: the cooler mapping differs per application —")
    print("that asymmetry is exactly what the TOP-IL policy learns to exploit.")


if __name__ == "__main__":
    main()
