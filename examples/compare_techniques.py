#!/usr/bin/env python
"""Mini Fig. 8: compare TOP-IL, TOP-RL, GTS/ondemand, GTS/powersave.

Trains the learned policies (or loads them from the cache directory),
executes the same mixed workload under all four techniques, and prints the
comparison table the paper's main experiment reports.

Usage::

    python examples/compare_techniques.py [--apps N] [--no-fan] [--cache DIR]
"""

from __future__ import annotations

import argparse

from repro.experiments.assets import AssetConfig, AssetStore
from repro.governors import GTSOndemand, GTSPowersave
from repro.il import TopIL
from repro.rl import TopRL
from repro.thermal import FAN_COOLING, PASSIVE_COOLING
from repro.utils.rng import RandomSource
from repro.utils.tables import ascii_table
from repro.workloads import mixed_workload, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", type=int, default=10)
    parser.add_argument("--no-fan", action="store_true",
                        help="use passive cooling (paper Fig. 8b)")
    parser.add_argument("--cache", default=".repro_cache",
                        help="directory for cached models/datasets")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    assets = AssetStore(config=AssetConfig.smoke(cache_dir=args.cache))
    platform = assets.platform
    cooling = PASSIVE_COOLING if args.no_fan else FAN_COOLING
    print(f"building/loading design-time assets (cache: {args.cache})...")
    model = assets.models()[0]
    qtable = assets.qtables()[0]

    workload = mixed_workload(
        platform,
        n_apps=args.apps,
        arrival_rate_per_s=1.0 / 10.0,
        seed=args.seed,
        instruction_scale=0.05,
    )
    techniques = [
        TopIL(model),
        TopRL(qtable=qtable.copy(), rng=RandomSource(args.seed).child("rl")),
        GTSOndemand(),
        GTSPowersave(),
    ]

    rows = []
    for technique in techniques:
        print(f"running {technique.name} ({cooling.name})...")
        run = run_workload(
            platform, technique, workload, cooling=cooling, seed=args.seed
        )
        s = run.summary
        rows.append(
            (
                s.technique,
                f"{s.mean_temp_c:.1f} C",
                f"{s.peak_temp_c:.1f} C",
                f"{s.n_qos_violations}/{s.n_apps}",
                s.migrations,
                s.dtm_throttle_events,
            )
        )

    print(f"\nMixed workload, {args.apps} apps, cooling: {cooling.name}")
    print(ascii_table(
        ["technique", "avg temp", "peak temp", "QoS violations",
         "migrations", "throttle events"],
        rows,
    ))
    print("\nPaper shape: TOP-IL is the only technique with both a low")
    print("temperature and (near-)zero QoS violations.")


if __name__ == "__main__":
    main()
