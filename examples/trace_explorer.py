#!/usr/bin/env python
"""A traced run end to end: Chrome trace, event log, manifest, hot spots.

Runs a small mixed workload with the observability layer enabled
(equivalent to ``REPRO_TRACE=1``), prints where the artifacts landed, and
mines the trace for the **top-5 hottest controller intervals** — the
controller invocations that cost the most wall-clock time, i.e. exactly
the spans you would zoom into after loading the Chrome trace in
``chrome://tracing``.

Usage::

    python examples/trace_explorer.py [--apps 6] [--out-dir .repro_obs]
"""

from __future__ import annotations

import argparse

from repro.governors.techniques import GTSOndemand
from repro.obs import Observability
from repro.platform import hikey970
from repro.utils.tables import ascii_table
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


def hottest_controller_intervals(events, top_n=5):
    """The ``top_n`` controller spans with the largest wall-clock cost."""
    spans = [e for e in events if e.cat == "controller" and e.ph == "X"]
    return sorted(spans, key=lambda e: e.dur_s, reverse=True)[:top_n]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", type=int, default=6, help="workload size")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--out-dir", default=".repro_obs", help="artifact directory"
    )
    args = parser.parse_args(argv)

    platform = hikey970()
    workload = mixed_workload(
        platform,
        n_apps=args.apps,
        arrival_rate_per_s=1.0 / 6.0,
        seed=args.seed,
        instruction_scale=0.02,
    )
    run = run_workload(
        platform,
        GTSOndemand(),
        workload,
        seed=args.seed,
        observability=Observability(enabled=True, out_dir=args.out_dir),
        run_label="trace_explorer",
    )

    print(f"simulated {run.sim.now_s:.1f} s; artifacts:")
    for kind, path in sorted(run.artifacts.items()):
        print(f"  {kind:13s} {path}")
    stats = run.manifest.tracer
    print(
        f"tracer: {stats['recorded']} events recorded, "
        f"{stats['dropped']} dropped (capacity {stats['capacity']})"
    )
    print(
        "\nLoad the .trace.json in chrome://tracing (or ui.perfetto.dev): "
        "spans sit at\nsimulated time, span width is the controller's "
        "wall-clock cost.\n"
    )

    obs = run.sim.obs
    hottest = hottest_controller_intervals(obs.tracer.events())
    print("top-5 hottest controller intervals:")
    print(
        ascii_table(
            ["sim time", "controller", "wall cost"],
            [
                (f"{e.ts_s:8.2f} s", e.name, f"{e.dur_s * 1e6:9.1f} us")
                for e in hottest
            ],
        )
    )

    rows = []
    for _, labels, histogram in obs.registry.histogram_items(
        "controller_latency_s"
    ):
        rows.append(
            (
                labels.get("controller", "?"),
                histogram.count,
                f"{histogram.mean * 1e6:8.1f} us",
                f"{histogram.max * 1e6:8.1f} us",
            )
        )
    print("\ncontroller latency summary:")
    print(ascii_table(["controller", "invocations", "mean", "max"], rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
