#!/usr/bin/env python
"""Quickstart: train a small TOP-IL model and manage a mixed workload.

Runs the complete flow end to end at a small scale (a couple of minutes):

1. collect oracle traces on the simulated HiKey 970,
2. build the imitation-learning dataset and train the migration NN,
3. execute a mixed workload under TOP-IL, and
4. print the run summary (temperature, QoS violations, overhead).

Usage::

    python examples/quickstart.py [--scenarios N] [--apps N] [--seed S]
"""

from __future__ import annotations

import argparse

from repro.il import ILPipeline, PipelineConfig, TopIL
from repro.nn.training import TrainingConfig
from repro.platform import hikey970
from repro.utils.tables import ascii_table
from repro.workloads import mixed_workload, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=10,
                        help="oracle scenarios for IL training")
    parser.add_argument("--apps", type=int, default=8,
                        help="applications in the mixed workload")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    platform = hikey970()
    print(f"platform: {platform.name} "
          f"({', '.join(f'{c.name} x{c.n_cores}' for c in platform.clusters)})")

    print(f"\n[1/3] design-time pipeline ({args.scenarios} scenarios)...")
    pipeline = ILPipeline(
        platform,
        config=PipelineConfig(
            n_scenarios=args.scenarios,
            vf_levels_per_cluster=3,
            max_aoi_candidates=3,
            n_models=1,
            seed=args.seed,
            training=TrainingConfig(max_epochs=150, patience=20),
        ),
    )
    result = pipeline.run()
    print(f"      {len(result.dataset)} training examples, "
          f"validation MSE {result.training_results[0].best_val_loss:.4f}")

    print(f"\n[2/3] running a {args.apps}-app mixed workload under TOP-IL...")
    workload = mixed_workload(
        platform,
        n_apps=args.apps,
        arrival_rate_per_s=1.0 / 8.0,
        seed=args.seed,
        instruction_scale=0.05,
    )
    run = run_workload(platform, TopIL(result.models[0]), workload, seed=args.seed)
    s = run.summary

    print("\n[3/3] results")
    print(ascii_table(
        ["metric", "value"],
        [
            ("simulated time", f"{s.duration_s:.0f} s"),
            ("avg temperature", f"{s.mean_temp_c:.1f} C"),
            ("peak temperature", f"{s.peak_temp_c:.1f} C"),
            ("QoS violations", f"{s.n_qos_violations} / {s.n_apps}"),
            ("migrations executed", s.migrations),
            ("manager overhead", f"{100 * s.overhead_fraction:.2f} % of one core"),
        ],
    ))


if __name__ == "__main__":
    main()
