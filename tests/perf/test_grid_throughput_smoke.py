"""Tier-1 throughput gate for the batched lockstep grid backend.

Runs a 32-cell replication grid (the golden smoke workload swept over
simulator seeds — identical cell lengths, so the lockstep fill ratio
stays ~1.0) through ``run_cells_report(backend="batched")`` a few times
and compares the best cells per wall-second against the checked-in
baseline ``benchmarks/baseline_grid_throughput.json``.  The gate fails
when throughput regresses more than 30% below the baseline, catching
accidental re-introduction of per-sample masking in the trace replay or
per-tick mesh construction in the power/thermal step.

The baseline is deliberately recorded *below* the measured optimized
throughput (see the JSON's ``note``) so machine-to-machine variance
does not trip the gate; losing the lockstep advantage (a 10x+ slowdown
back to per-cell speed) still fails by a wide margin.  After an
intentional performance change, re-measure with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_grid_throughput.py \
        --benchmark-json=/tmp/bench.json

and update the baseline JSON.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.parallel import BatchCellPlan, run_cells_report
from repro.governors.techniques import GTSOndemand
from repro.platform import hikey970
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import finalize_run, prepare_run, run_workload

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "benchmarks", "baseline_grid_throughput.json",
)
ALLOWED_REGRESSION = 0.30
ROUNDS = 3

WORKLOAD_SEED = 11
N_APPS = 6
ARRIVAL_RATE = 1.0 / 6.0
INSTRUCTION_SCALE = 0.02
N_CELLS = 32


def _measure_throughput() -> float:
    platform = hikey970()

    def workload():
        return mixed_workload(
            platform,
            n_apps=N_APPS,
            arrival_rate_per_s=ARRIVAL_RATE,
            seed=WORKLOAD_SEED,
            instruction_scale=INSTRUCTION_SCALE,
        )

    def worker(seed):
        return run_workload(
            platform, GTSOndemand(), workload(), FAN_COOLING, seed=seed
        ).summary

    def batch_plan(seed):
        def prepare():
            return prepare_run(
                platform, GTSOndemand(), workload(), FAN_COOLING, seed=seed
            )

        def finalize(sim):
            return finalize_run(
                sim, GTSOndemand(), workload(), seed=seed
            ).summary

        return BatchCellPlan(prepare=prepare, finalize=finalize)

    cells = list(range(100, 100 + N_CELLS))
    start = time.perf_counter()
    report = run_cells_report(
        cells, worker, backend="batched", batch_plan=batch_plan
    )
    wall_s = time.perf_counter() - start
    assert report.ok(), report.failed_cells
    return N_CELLS / wall_s


def test_grid_throughput_no_regression():
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    floor = baseline["batched_cells_per_wall_s"] * (1.0 - ALLOWED_REGRESSION)
    # Best of a few rounds: throughput gates must be robust to transient
    # load on the test machine, and one grid runs in ~0.5 s.
    best = max(_measure_throughput() for _ in range(ROUNDS))
    assert best >= floor, (
        f"batched grid throughput regressed: best of {ROUNDS} rounds was "
        f"{best:.1f} cells/wall-s, below the allowed floor {floor:.1f} "
        f"(baseline {baseline['batched_cells_per_wall_s']:.1f} - "
        f"{100 * ALLOWED_REGRESSION:.0f}%); see {BASELINE_PATH}"
    )
