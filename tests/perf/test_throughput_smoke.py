"""Tier-1 throughput gate for the simulation kernel.

Runs the fast-path smoke scenario (same fixed-seed workload as the golden
equivalence fixture) a few times and compares the best simulated-seconds
per wall-second against the checked-in baseline
``benchmarks/baseline_throughput.json``.  The gate fails when throughput
regresses more than 30% below the baseline, catching accidental
re-introduction of per-step dict rebuilding or O(cores x processes)
scans.

The baseline is deliberately recorded *below* the measured optimized
throughput (see the JSON's ``note``) so that machine-to-machine variance
does not trip the gate; a real fast-path regression (3-4x slowdown) still
fails by a wide margin.  After an intentional performance change,
re-measure with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_kernel_throughput.py \
        --benchmark-json=/tmp/bench.json

and update the baseline JSON.
"""

from __future__ import annotations

import json
import os
import time

from repro.governors.techniques import GTSOndemand
from repro.platform import hikey970
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "benchmarks", "baseline_throughput.json",
)
ALLOWED_REGRESSION = 0.30
ROUNDS = 3

SEED = 11
N_APPS = 6
ARRIVAL_RATE = 1.0 / 6.0
INSTRUCTION_SCALE = 0.02


def _measure_throughput() -> float:
    platform = hikey970()
    workload = mixed_workload(
        platform,
        n_apps=N_APPS,
        arrival_rate_per_s=ARRIVAL_RATE,
        seed=SEED,
        instruction_scale=INSTRUCTION_SCALE,
    )
    start = time.perf_counter()
    result = run_workload(
        platform, GTSOndemand(), workload, cooling=FAN_COOLING, seed=SEED
    )
    wall_s = time.perf_counter() - start
    return result.sim.now_s / wall_s


def test_kernel_throughput_no_regression():
    with open(BASELINE_PATH) as fh:
        baseline = json.load(fh)
    floor = baseline["sim_s_per_wall_s"] * (1.0 - ALLOWED_REGRESSION)
    # Best of a few rounds: throughput gates must be robust to transient
    # load on the test machine, and the scenario runs in ~0.1 s.
    best = max(_measure_throughput() for _ in range(ROUNDS))
    assert best >= floor, (
        f"kernel throughput regressed: best of {ROUNDS} rounds was "
        f"{best:.1f} sim-s/wall-s, below the allowed floor {floor:.1f} "
        f"(baseline {baseline['sim_s_per_wall_s']:.1f} - "
        f"{100 * ALLOWED_REGRESSION:.0f}%); see {BASELINE_PATH}"
    )
