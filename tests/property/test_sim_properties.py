"""Conservation and bookkeeping invariants of the simulator (hypothesis)."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import app_catalog, get_app
from repro.platform import hikey970
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING

PLATFORM = hikey970()
APP_NAMES = sorted(app_catalog())


@st.composite
def small_workloads(draw):
    n = draw(st.integers(1, 5))
    items = []
    for _ in range(n):
        name = draw(st.sampled_from(APP_NAMES))
        arrival = draw(st.floats(min_value=0.0, max_value=0.5))
        items.append((name, arrival))
    return items


def _run(items, seconds=1.0, seed=0):
    sim = Simulator(
        PLATFORM,
        FAN_COOLING,
        config=SimConfig(dt_s=0.02, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )
    for name, arrival in items:
        app = dataclasses.replace(get_app(name), total_instructions=1e15)
        sim.submit(app, 1e6, arrival)
    sim.run_for(seconds)
    return sim


class TestConservation:
    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_cpu_time_never_exceeds_wall_time_per_core(self, items):
        sim = _run(items)
        per_core = {}
        for p in sim.all_processes():
            if p.core_id is not None:
                per_core.setdefault(p.core_id, 0.0)
        total_cpu = sum(p.total_cpu_time_s for p in sim.all_processes())
        busy_cores = {p.core_id for p in sim.all_processes() if p.core_id is not None}
        assert total_cpu <= sim.now_s * max(1, len(busy_cores)) + 1e-6

    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_vf_ledger_sums_to_cpu_time(self, items):
        sim = _run(items)
        for p in sim.all_processes():
            ledger = sum(p.cpu_time_by_vf.values())
            assert abs(ledger - p.total_cpu_time_s) < 1e-9

    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_instructions_never_exceed_total(self, items):
        sim = _run(items)
        for p in sim.all_processes():
            assert p.instructions_done <= p.app.total_instructions + 1e-3

    @given(small_workloads())
    @settings(max_examples=20, deadline=None)
    def test_each_running_process_on_exactly_one_core(self, items):
        sim = _run(items)
        seen = {}
        for core in range(PLATFORM.n_cores):
            for p in sim.processes_on_core(core):
                assert p.pid not in seen
                seen[p.pid] = core
        for p in sim.running_processes():
            assert p.pid in seen


class TestPhysicalBounds:
    @given(small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_temperatures_bounded(self, items):
        sim = _run(items)
        for temp in sim.ground_truth_temps().values():
            assert PLATFORM.ambient_temp_c - 1.0 <= temp <= 130.0

    @given(small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_power_positive(self, items):
        sim = _run(items)
        assert sim.total_power_w() > 0.0


class TestDeterminism:
    @given(small_workloads())
    @settings(max_examples=10, deadline=None)
    def test_identical_runs_identical_results(self, items):
        a = _run(items)
        b = _run(items)
        assert a.sensor_temp_c() == b.sensor_temp_c()
        for pa, pb in zip(a.all_processes(), b.all_processes()):
            assert pa.instructions_done == pb.instructions_done
