"""Invariants of Q-learning and the RL state quantizer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.qtable import QTable

states = st.integers(0, 15)
actions = st.integers(0, 3)
rewards = st.floats(min_value=-200.0, max_value=60.0)


@st.composite
def transitions(draw, n=20):
    return [
        (draw(states), draw(actions), draw(rewards), draw(states))
        for _ in range(n)
    ]


class TestQTableInvariants:
    @given(transitions())
    @settings(max_examples=60)
    def test_values_bounded_by_reward_geometric_series(self, steps):
        """|Q| can never exceed max|r| / (1 - gamma) starting from zero."""
        table = QTable(16, 4, learning_rate=0.1, discount=0.8)
        bound = 200.0 / (1.0 - 0.8) + 1e-6
        for s, a, r, s2 in steps:
            table.update(s, a, r, s2)
            assert np.abs(table.values).max() <= bound

    @given(transitions())
    @settings(max_examples=60)
    def test_only_visited_entries_change(self, steps):
        table = QTable(16, 4)
        touched = set()
        for s, a, r, s2 in steps:
            table.update(s, a, r, s2)
            touched.add((s, a))
        for s in range(16):
            for a in range(4):
                if (s, a) not in touched:
                    assert table.values[s, a] == 0.0

    @given(st.floats(min_value=-100, max_value=50), st.integers(10, 200))
    @settings(max_examples=40)
    def test_self_loop_converges_to_fixed_point(self, reward, n):
        """Q(s,a) on a single self-loop approaches r / (1 - gamma)."""
        table = QTable(1, 1, learning_rate=0.3, discount=0.5)
        for _ in range(n):
            table.update(0, 0, reward, 0)
        fixed_point = reward / (1.0 - 0.5)
        # Error shrinks monotonically in expectation; after n updates it is
        # bounded by |fp| * (1 - alpha_eff)^n which we upper-bound loosely.
        assert abs(table.q(0, 0)) <= abs(fixed_point) + 1e-9

    @given(transitions())
    @settings(max_examples=40)
    def test_update_count_matches(self, steps):
        table = QTable(16, 4)
        for s, a, r, s2 in steps:
            table.update(s, a, r, s2)
        assert table.updates == len(steps)

    @given(transitions())
    @settings(max_examples=40)
    def test_copy_isolated_from_updates(self, steps):
        table = QTable(16, 4)
        snapshot = table.copy()
        for s, a, r, s2 in steps:
            table.update(s, a, r, s2)
        assert np.all(snapshot.values == 0.0)
