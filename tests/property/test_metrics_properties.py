"""Invariants of the metrics layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cputime import CpuTimeByVF
from repro.metrics.timeline import AppTimeline

clusters = st.sampled_from(["LITTLE", "big"])
freqs = st.sampled_from([0.5e9, 1.0e9, 1.8e9, 2.36e9])
cpu_seconds = st.floats(min_value=0.0, max_value=1000.0)


@st.composite
def usage_entries(draw, max_entries=12):
    n = draw(st.integers(1, max_entries))
    return [
        (draw(clusters), draw(freqs), draw(cpu_seconds)) for _ in range(n)
    ]


class TestCpuTimeInvariants:
    @given(usage_entries())
    @settings(max_examples=60)
    def test_total_equals_sum_of_cluster_totals(self, entries):
        usage = CpuTimeByVF()
        for cluster, freq, secs in entries:
            usage.add(cluster, freq, secs)
        assert abs(
            usage.total
            - usage.cluster_total("LITTLE")
            - usage.cluster_total("big")
        ) < 1e-6

    @given(usage_entries())
    @settings(max_examples=60)
    def test_fractions_sum_to_one(self, entries):
        usage = CpuTimeByVF()
        for cluster, freq, secs in entries:
            usage.add(cluster, freq, secs)
        if usage.total == 0:
            return
        total_fraction = sum(
            usage.fraction(cluster, freq) for (cluster, freq) in usage.seconds
        )
        assert abs(total_fraction - 1.0) < 1e-9

    @given(usage_entries(), usage_entries())
    @settings(max_examples=40)
    def test_merge_is_additive(self, a_entries, b_entries):
        a, b = CpuTimeByVF(), CpuTimeByVF()
        for cluster, freq, secs in a_entries:
            a.add(cluster, freq, secs)
        for cluster, freq, secs in b_entries:
            b.add(cluster, freq, secs)
        merged = a.merge(b)
        assert abs(merged.total - a.total - b.total) < 1e-6


@st.composite
def timelines(draw, max_samples=30):
    n = draw(st.integers(1, max_samples))
    choices = ["", "LITTLE", "big"]
    cluster_series = [draw(st.sampled_from(choices)) for _ in range(n)]
    ips = [draw(st.floats(min_value=0.0, max_value=5e9)) for _ in range(n)]
    target = draw(st.floats(min_value=1e6, max_value=5e9))
    return AppTimeline(
        pid=0,
        times_s=[0.1 * i for i in range(n)],
        clusters=cluster_series,
        ips=ips,
        qos_target_ips=target,
    )


class TestTimelineInvariants:
    @given(timelines())
    @settings(max_examples=60)
    def test_residency_sums_to_one_when_active(self, timeline):
        residency = timeline.cluster_residency()
        if residency:
            assert abs(sum(residency.values()) - 1.0) < 1e-9

    @given(timelines())
    @settings(max_examples=60)
    def test_qos_fraction_bounded(self, timeline):
        assert 0.0 <= timeline.qos_met_fraction() <= 1.0

    @given(timelines())
    @settings(max_examples=60)
    def test_switches_bounded_by_active_samples(self, timeline):
        assert 0 <= timeline.switches() <= max(0, timeline.active_samples - 1)
