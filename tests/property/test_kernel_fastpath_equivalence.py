"""Fast-path kernel equivalence against a golden trace fixture.

``fixtures/golden_kernel_trace.json`` was captured from the seed (pre
fast-path) kernel with ``capture_golden_trace.py``.  This test replays the
same fixed-seed scenario on the current kernel and requires the full
observable behaviour to match:

* discrete decisions — VF levels, migrations, per-process lifecycle
  counters — must be **exactly** identical;
* sensor readings must be exactly identical (same number and order of RNG
  draws, and the 0.1 degC quantization absorbs sub-noise fp differences);
* continuous quantities (node temperatures, total power) must agree to
  tight tolerances: the fused thermal operator ``B = (I - A) G^-1`` and
  the vectorized power sums reorder float operations at the 1e-16
  relative level, which accumulates to no more than ~1e-10 degC over the
  run.

If the kernel's semantics are ever changed *intentionally*, regenerate the
fixture against a version whose behaviour was validated some other way:

    PYTHONPATH=src python tests/property/capture_golden_trace.py
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from capture_golden_trace import FIXTURE_PATH, run_golden_scenario, trace_to_dict

TEMP_ATOL_C = 1e-6
POWER_RTOL = 1e-9
TIME_ATOL_S = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    assert os.path.exists(FIXTURE_PATH), (
        "golden fixture missing; run "
        "PYTHONPATH=src python tests/property/capture_golden_trace.py "
        "against a known-good kernel"
    )
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def replay() -> dict:
    return trace_to_dict(run_golden_scenario())


class TestFastPathEquivalence:
    def test_duration_and_sample_times(self, golden, replay):
        assert replay["duration_s"] == pytest.approx(
            golden["duration_s"], abs=TIME_ATOL_S
        )
        np.testing.assert_allclose(
            replay["times"], golden["times"], atol=TIME_ATOL_S
        )

    def test_sensor_readings_exact(self, golden, replay):
        # Same RNG draw sequence + quantization => bit-identical readings.
        assert replay["sensor_temp_c"] == golden["sensor_temp_c"]

    def test_node_temperatures(self, golden, replay):
        assert set(replay["node_temps"]) == set(golden["node_temps"])
        for node, temps in golden["node_temps"].items():
            np.testing.assert_allclose(
                replay["node_temps"][node], temps, atol=TEMP_ATOL_C,
                err_msg=f"node {node}",
            )
        np.testing.assert_allclose(
            replay["max_core_temp_c"], golden["max_core_temp_c"],
            atol=TEMP_ATOL_C,
        )

    def test_total_power(self, golden, replay):
        np.testing.assert_allclose(
            replay["total_power_w"], golden["total_power_w"], rtol=POWER_RTOL
        )

    def test_vf_decisions_exact(self, golden, replay):
        assert replay["vf_levels"] == golden["vf_levels"]

    def test_migrations_exact(self, golden, replay):
        assert replay["migrations"] == golden["migrations"]

    def test_process_accounting(self, golden, replay):
        assert len(replay["processes"]) == len(golden["processes"])
        for got, want in zip(replay["processes"], golden["processes"]):
            assert got["pid"] == want["pid"]
            assert got["app"] == want["app"]
            assert got["migration_count"] == want["migration_count"]
            assert got["instructions_done"] == pytest.approx(
                want["instructions_done"], rel=POWER_RTOL
            )
            assert got["total_cpu_time_s"] == pytest.approx(
                want["total_cpu_time_s"], abs=TIME_ATOL_S
            )
            assert got["qos_met_time_s"] == pytest.approx(
                want["qos_met_time_s"], abs=1e-6
            )
            assert got["qos_observed_time_s"] == pytest.approx(
                want["qos_observed_time_s"], abs=TIME_ATOL_S
            )
            assert got["finish_time_s"] == pytest.approx(
                want["finish_time_s"], abs=TIME_ATOL_S
            )
