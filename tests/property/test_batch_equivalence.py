"""Golden-trace equivalence: the batched lockstep kernel vs the scalar one.

The batched backend's whole value proposition is that it is **not** an
approximation — every eligible cell must reproduce the scalar kernel's
results bit for bit: the trace series, the per-process accounting
(including the sensor's seeded noise stream and the EMA perf counters),
and the DTM / VF history.  These tests run the same cells through both
kernels and compare exact equality, never ``isclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.parallel import BatchCellPlan, run_cells_report
from repro.faults import FaultPlan
from repro.governors.techniques import GTSOndemand, GTSPowersave
from repro.platform.hikey import hikey970
from repro.sim.batch import (
    BatchSimulator,
    batch_compatibility,
    batch_ineligibility,
)
from repro.thermal import FAN_COOLING, PASSIVE_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import finalize_run, prepare_run, run_workload

#: Small but non-trivial cells: arrivals, phase changes, completions, DTM
#: checks, sensor samples, and (at these rates) a few GTS migrations all
#: occur within a couple of simulated seconds.
_SCALE = 0.004
_N_APPS = 3

_PROCESS_FIELDS = (
    "state",
    "core_id",
    "instructions_done",
    "total_cpu_time_s",
    "smoothed_ips",
    "smoothed_l2d_rate",
    "qos_met_time_s",
    "qos_observed_time_s",
    "finish_time_s",
    "migration_count",
    "cpu_time_by_vf",
)


@pytest.fixture(scope="module")
def platform():
    return hikey970()


def _workload(platform, seed, rate=0.3):
    return mixed_workload(
        platform,
        n_apps=_N_APPS,
        arrival_rate_per_s=rate,
        seed=seed,
        instruction_scale=_SCALE,
    )


def _assert_identical(serial, batched):
    """Bitwise equality of two RunResults for the same cell."""
    st, bt = serial.trace, batched.trace
    assert st.times == bt.times
    assert st.sensor_temp_c == bt.sensor_temp_c
    assert st.max_core_temp_c == bt.max_core_temp_c
    assert st.total_power_w == bt.total_power_w
    assert st.vf_levels == bt.vf_levels
    assert st.core_temps == bt.core_temps
    assert st.process_cores == bt.process_cores
    assert st.process_ips == bt.process_ips
    assert st.migrations == bt.migrations
    ss, bs = serial.sim, batched.sim
    assert ss.now_s == bs.now_s
    assert ss.dtm_throttle_events == bs.dtm_throttle_events
    assert np.array_equal(ss.thermal.theta, bs.thermal.theta)
    for sp, bp in zip(ss.all_processes(), bs.all_processes()):
        assert sp.pid == bp.pid
        for name in _PROCESS_FIELDS:
            assert getattr(sp, name) == getattr(bp, name), (sp.pid, name)
    assert serial.summary == batched.summary


def _run_both(platform, specs):
    """Run each (technique_cls, cooling, seed) spec serially and batched."""
    serial = [
        run_workload(platform, tech(), _workload(platform, seed), cooling,
                     seed=seed)
        for tech, cooling, seed in specs
    ]
    prepared = [
        (prepare_run(platform, tech(), _workload(platform, seed), cooling,
                     seed=seed), tech(), seed)
        for tech, cooling, seed in specs
    ]
    sims = [sim for sim, _, _ in prepared]
    outcomes = BatchSimulator(sims).run(timeout_s=7200.0)
    assert all(outcome is None for outcome in outcomes)
    batched = [
        finalize_run(sim, tech, _workload(platform, seed), seed=seed)
        for sim, tech, seed in prepared
    ]
    return serial, batched


class TestLockstepBitIdentity:
    def test_single_cell_batch_equals_serial(self, platform):
        """N=1 is the degenerate lockstep: same kernel, batch axis of one."""
        serial, batched = _run_both(
            platform, [(GTSOndemand, FAN_COOLING, 31)]
        )
        _assert_identical(serial[0], batched[0])

    def test_mixed_grid_batch_equals_serial(self, platform):
        """Different governors, coolings, and seeds share one batch.

        Mixed coolings exercise the multi-operator thermal grouping
        (fan / passive have different conductance matrices) and mixed
        governors exercise per-cell controller kinds in one slot.
        """
        specs = [
            (GTSOndemand, FAN_COOLING, 41),
            (GTSPowersave, FAN_COOLING, 42),
            (GTSOndemand, PASSIVE_COOLING, 43),
            (GTSPowersave, PASSIVE_COOLING, 44),
        ]
        serial, batched = _run_both(platform, specs)
        for one_serial, one_batched in zip(serial, batched):
            _assert_identical(one_serial, one_batched)

    def test_cells_with_different_seeds_are_compatible(self, platform):
        a = prepare_run(platform, GTSOndemand(), _workload(platform, 51),
                        FAN_COOLING, seed=51)
        b = prepare_run(platform, GTSPowersave(), _workload(platform, 52),
                        PASSIVE_COOLING, seed=52)
        assert batch_ineligibility(a) is None
        assert batch_ineligibility(b) is None
        assert batch_compatibility(a, b) is None


class TestEligibility:
    def test_fault_plan_cell_is_ineligible(self, platform):
        """Even a zero-fault plan routes the cell to the scalar kernel."""
        sim = prepare_run(platform, GTSOndemand(), _workload(platform, 61),
                          FAN_COOLING, seed=61, fault_plan=FaultPlan())
        assert batch_ineligibility(sim) == "fault plan attached"

    def test_started_cell_is_ineligible(self, platform):
        sim = prepare_run(platform, GTSOndemand(), _workload(platform, 62),
                          FAN_COOLING, seed=62)
        sim.run_for(0.5)
        assert batch_ineligibility(sim) == "simulation already started"


class TestBatchedBackendFallback:
    def test_grid_with_fallback_cell_matches_serial(self, platform):
        """``backend="batched"`` routes a fault-plan cell to the scalar
        kernel per-cell, and every result still equals the serial grid."""
        cells = [("plain", 71), ("fault", 72), ("plain", 73)]

        def _spec(cell):
            kind, seed = cell
            plan = FaultPlan() if kind == "fault" else None
            return GTSOndemand(), _workload(platform, seed), seed, plan

        def worker(cell):
            technique, workload, seed, plan = _spec(cell)
            return run_workload(platform, technique, workload, FAN_COOLING,
                                seed=seed, fault_plan=plan).summary

        def batch_plan(cell):
            technique, workload, seed, plan = _spec(cell)

            def prepare():
                return prepare_run(platform, technique, workload,
                                   FAN_COOLING, seed=seed, fault_plan=plan)

            def finalize(sim):
                return finalize_run(sim, technique, workload,
                                    seed=seed).summary

            return BatchCellPlan(prepare=prepare, finalize=finalize)

        serial = run_cells_report(cells, worker, parallel=False)
        batched = run_cells_report(
            cells, worker, backend="batched", batch_plan=batch_plan
        )
        assert serial.ok() and batched.ok()
        assert serial.results == batched.results

    def test_batched_backend_requires_plan(self):
        with pytest.raises(ValueError):
            run_cells_report([1], lambda cell: cell, backend="batched")
