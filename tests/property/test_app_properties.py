"""Invariants of the application performance model (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.model import AppModel, ClusterPerfParams

cpis = st.floats(min_value=0.3, max_value=3.0)
mems = st.floats(min_value=0.0, max_value=2e-9)
couplings = st.floats(min_value=0.0, max_value=1.0)
freqs = st.floats(min_value=2e8, max_value=3e9)


@st.composite
def apps(draw):
    params = ClusterPerfParams(
        cpi=draw(cpis),
        mem_time_per_inst=draw(mems),
        activity=0.8,
        mem_freq_coupling=draw(couplings),
        mem_ref_freq_hz=2.0e9,
    )
    return AppModel(
        name="prop", suite="polybench", perf={"X": params}, l2d_per_inst=0.01
    )


class TestIPSInvariants:
    @given(apps(), freqs)
    @settings(max_examples=80)
    def test_ips_positive_and_finite(self, app, f):
        ips = app.ips("X", f)
        assert 0 < ips < 1e12

    @given(apps(), freqs, freqs)
    @settings(max_examples=80)
    def test_ips_monotone_in_frequency(self, app, f1, f2):
        lo, hi = sorted([f1, f2])
        assert app.ips("X", hi) >= app.ips("X", lo) - 1e-9

    @given(apps(), freqs)
    @settings(max_examples=80)
    def test_ips_bounded_by_core_roofline(self, app, f):
        """IPS can never exceed f / cpi (the no-stall bound)."""
        params = app.perf["X"]
        assert app.ips("X", f) <= f / params.cpi + 1e-6

    @given(apps(), freqs, st.floats(min_value=1.0, max_value=5.0))
    @settings(max_examples=80)
    def test_contention_never_speeds_up(self, app, f, slowdown):
        assert app.ips("X", f, mem_slowdown=slowdown) <= app.ips("X", f) + 1e-9

    @given(apps(), freqs)
    @settings(max_examples=80)
    def test_sublinear_scaling_for_uncoupled_memory(self, app, f):
        """Doubling frequency at coupling 0 gains at most 2x IPS."""
        gain = app.ips("X", 2 * f) / app.ips("X", f)
        assert gain <= 2.0 + 1e-9


class TestEffectiveMemTime:
    @given(apps(), freqs)
    @settings(max_examples=80)
    def test_effective_mem_time_non_negative(self, app, f):
        assert app.perf["X"].effective_mem_time(f) >= 0.0

    @given(apps())
    @settings(max_examples=80)
    def test_effective_equals_base_at_reference(self, app):
        params = app.perf["X"]
        assert params.effective_mem_time(params.mem_ref_freq_hz) == (
            params.mem_time_per_inst
        )
