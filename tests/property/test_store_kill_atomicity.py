"""SIGKILL atomicity: a murdered writer never poisons the store.

The chaos harness's hardest invariant, checked with real ``SIGKILL``s
(not cooperative ``os._exit``): a child killed mid-``put`` or
mid-checkpoint-write leaves at most unreferenced temp droppings — never
a servable corrupt entry — and the next process resumes from the latest
*published* state as if the kill had not happened.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

from repro.governors.techniques import GTSOndemand
from repro.platform.registry import get_platform
from repro.sim.checkpoint import CheckpointPolicy
from repro.store import ArtifactKey, ArtifactStore, CellResultHandle
from repro.workloads.generator import Workload, WorkloadItem
from repro.workloads.runner import run_workload


def _key():
    return ArtifactKey.create("cell/kill-test", config={"x": 1}, seed=7)


def _workload():
    return Workload(
        name="kill-atomicity",
        items=[WorkloadItem("adi", 1e8, 0.0)],
        instruction_scale=0.002,
    )


def _sigkill_self() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


def _die_mid_put(root: str) -> None:
    """Child body: SIGKILL'd while the payload bytes are mid-flight."""

    class DieDuringDump(CellResultHandle):
        def dump(self, obj, path):
            with open(path, "wb") as fh:
                fh.write(b"half-written")
            _sigkill_self()

    ArtifactStore(root).put(_key(), "never-lands", DieDuringDump())


def _die_mid_second_checkpoint(checkpoint_dir: str) -> None:
    """Child body: first checkpoint publishes cleanly, the second write is
    SIGKILL'd after the payload bytes hit disk but before any rename —
    the on-disk state a power cut leaves behind."""
    from repro.store.handles import CheckpointHandle

    real_dump = CheckpointHandle.dump
    calls = {"n": 0}

    def dump(self, obj, path):
        calls["n"] += 1
        if calls["n"] >= 2:
            with open(path, "wb") as fh:
                fh.write(b"torn-checkpoint-bytes")
            _sigkill_self()
        real_dump(self, obj, path)

    CheckpointHandle.dump = dump  # fork-isolated: dies with this child
    run_workload(
        get_platform("hikey970"),
        GTSOndemand(),
        _workload(),
        seed=3,
        checkpoint=CheckpointPolicy(directory=checkpoint_dir, period_s=0.5),
    )


def _run_child(target, *args) -> int:
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=target, args=args)
    proc.start()
    proc.join(timeout=60)
    assert not proc.is_alive(), "child survived its own SIGKILL"
    return proc.exitcode


class TestKillMidPut:
    def test_no_corrupt_entry_served_and_gc_reaps(self, tmp_path):
        exitcode = _run_child(_die_mid_put, str(tmp_path))
        assert exitcode == -signal.SIGKILL
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        assert store.lookup(key, handle) == (False, None)
        droppings = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.startswith("tmp-")
        ]
        assert droppings, "kill site should leave temp droppings"
        assert store.gc(orphan_grace_s=0.0) >= len(droppings)
        # The key is free for an honest retry.
        store.put(key, "landed", handle)
        assert store.get(key, handle) == "landed"


class TestKillMidCheckpoint:
    def test_resume_uses_latest_published_checkpoint(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        exitcode = _run_child(_die_mid_second_checkpoint, checkpoint_dir)
        assert exitcode == -signal.SIGKILL

        # The first (published) checkpoint survived; the torn second
        # write left only temp droppings that verify-on-read ignores.
        published = [
            name
            for _, _, names in os.walk(checkpoint_dir)
            for name in names
            if not name.startswith("tmp-")
        ]
        assert published, "first checkpoint should have been published"

        policy = CheckpointPolicy(directory=checkpoint_dir, period_s=0.5)
        platform = get_platform("hikey970")
        resumed = run_workload(
            platform, GTSOndemand(), _workload(), seed=3, checkpoint=policy
        )
        assert resumed.resumed_from_s > 0.0
        # Resumed-through-a-kill equals a run that never crashed.
        plain = run_workload(platform, GTSOndemand(), _workload(), seed=3)
        assert resumed.summary == plain.summary
        assert resumed.trace.times == plain.trace.times
        # Completion GC'd the checkpoint and the kill's droppings stayed
        # invisible throughout; a final sweep leaves the dir empty.
        store = ArtifactStore(checkpoint_dir)
        store.gc(orphan_grace_s=0.0)
        leftovers = [
            name for _, _, names in os.walk(checkpoint_dir) for name in names
        ]
        assert leftovers == []
