"""Invariants of the modal thermal reduction (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.rc import RCThermalNetwork
from repro.thermal.reduction import reduce_network

capacitances = st.floats(min_value=1e-2, max_value=50.0)
conductances = st.floats(min_value=5e-2, max_value=5.0)
powers = st.floats(min_value=0.0, max_value=10.0)


@st.composite
def networks(draw, min_nodes=2, max_nodes=6):
    n = draw(st.integers(min_nodes, max_nodes))
    net = RCThermalNetwork(ambient_temp_c=25.0)
    for i in range(n):
        net.add_node(f"n{i}", draw(capacitances))
    for i in range(n - 1):
        net.connect(f"n{i}", f"n{i + 1}", draw(conductances))
    net.connect_to_ambient(f"n{n - 1}", draw(conductances))
    net.finalize()
    return net


class TestReductionInvariants:
    @given(networks(), powers)
    @settings(max_examples=40, deadline=None)
    def test_steady_state_always_exact(self, net, p):
        reduced = reduce_network(net, 1)  # even a single mode
        full = net.steady_state({"n0": p})
        approx = reduced.steady_state({"n0": p})
        for name in full:
            assert np.isclose(approx[name], full[name], atol=1e-8)

    @given(networks(), powers, st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_full_rank_reduction_matches_exact_integrator(self, net, p, dt):
        reduced = reduce_network(net, net.n_nodes)
        for _ in range(10):
            net.step({"n0": p}, dt)
            reduced.step({"n0": p}, dt)
        full = net.temperatures()
        approx = reduced.temperatures()
        for name in full:
            assert np.isclose(approx[name], full[name], atol=1e-6)

    @given(networks(), powers, st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_truncated_model_converges_to_steady_state(self, net, p, k):
        k = min(k, net.n_nodes)
        reduced = reduce_network(net, k)
        target = reduced.steady_state({"n0": p})
        tau = float(net.time_constants()[0])
        for _ in range(40):
            reduced.step({"n0": p}, tau)
        temps = reduced.temperatures()
        for name in temps:
            assert np.isclose(temps[name], target[name], atol=1e-3)

    @given(networks(), powers, st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_truncated_model_stays_bounded(self, net, p, k):
        """No mode can diverge.  Truncation may transiently over/undershoot
        the physical envelope (the reconstruction is not elementwise
        monotone), but only by a bounded fraction of the steady rise."""
        k = min(k, net.n_nodes)
        reduced = reduce_network(net, k)
        rise = max(max(reduced.steady_state({"n0": p}).values()) - 25.0, 0.0)
        slack = 0.5 * rise + 1.0
        for _ in range(50):
            reduced.step({"n0": p}, 0.5)
            assert max(reduced.temperatures().values()) <= 25.0 + rise + slack
            assert min(reduced.temperatures().values()) >= 25.0 - slack
