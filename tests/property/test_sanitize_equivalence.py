"""Golden-trace equivalence with the runtime sanitizer enabled.

``REPRO_SANITIZE=1`` must be purely observational: the per-step invariant
checks may abort a broken run, but on a healthy kernel they must not
perturb a single RNG draw, VF decision, or temperature.  This replays the
same fixed-seed scenario as ``test_kernel_fastpath_equivalence`` with the
sanitizer on and holds it to the same golden fixture.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from capture_golden_trace import FIXTURE_PATH, run_golden_scenario, trace_to_dict
from repro.utils.sanitize import SANITIZE_ENV

TEMP_ATOL_C = 1e-6
POWER_RTOL = 1e-9
TIME_ATOL_S = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    assert os.path.exists(FIXTURE_PATH), "golden fixture missing"
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def sanitized_replay() -> dict:
    # module-scoped, so set/restore the env var by hand (monkeypatch is
    # function-scoped) around the one simulation run.
    prior = os.environ.get(SANITIZE_ENV)
    os.environ[SANITIZE_ENV] = "1"
    try:
        return trace_to_dict(run_golden_scenario())
    finally:
        if prior is None:
            del os.environ[SANITIZE_ENV]
        else:
            os.environ[SANITIZE_ENV] = prior


class TestSanitizedEquivalence:
    def test_sensor_readings_exact(self, golden, sanitized_replay):
        assert sanitized_replay["sensor_temp_c"] == golden["sensor_temp_c"]

    def test_node_temperatures(self, golden, sanitized_replay):
        for node, temps in golden["node_temps"].items():
            np.testing.assert_allclose(
                sanitized_replay["node_temps"][node], temps,
                atol=TEMP_ATOL_C, err_msg=f"node {node}",
            )

    def test_total_power(self, golden, sanitized_replay):
        np.testing.assert_allclose(
            sanitized_replay["total_power_w"], golden["total_power_w"],
            rtol=POWER_RTOL,
        )

    def test_discrete_decisions_exact(self, golden, sanitized_replay):
        assert sanitized_replay["vf_levels"] == golden["vf_levels"]
        assert sanitized_replay["migrations"] == golden["migrations"]

    def test_duration(self, golden, sanitized_replay):
        assert sanitized_replay["duration_s"] == pytest.approx(
            golden["duration_s"], abs=TIME_ATOL_S
        )
