"""The checkpoint bit-identity contract, enforced on the whole zoo.

The contract: *run-to-T* equals *run-to-T/2 + snapshot + restore +
run-to-T* — not approximately, but to the last bit of every trace
channel, every VF decision, every migration, and the full thermal node
vector.  A checkpoint that shifts one RNG draw or drops one controller
phase silently corrupts every resumed grid cell, so the property is
checked on all three zoo platforms, under both techniques (heuristic
GTS and the paper's TOP-IL manager), and with the runtime sanitizer on —
the three axes most likely to smuggle unpicklable or
restore-order-dependent state into the kernel.
"""

from __future__ import annotations

import pytest

from repro.governors.techniques import GTSOndemand
from repro.il.features import FeatureExtractor
from repro.il.technique import TopIL
from repro.nn.layers import build_mlp
from repro.platform.registry import get_platform
from repro.sim.checkpoint import restore_simulator, snapshot_simulator
from repro.utils.rng import RandomSource
from repro.utils.sanitize import SANITIZE_ENV
from repro.workloads.generator import Workload, WorkloadItem
from repro.workloads.runner import prepare_run

ZOO = ("hikey970", "tricluster", "snuca-grid")
TOTAL_S = 2.0

#: Every parallel-list channel the TraceRecorder carries; bit-identity
#: means plain ``==`` on all of them, floats included.
TRACE_FIELDS = (
    "times",
    "sensor_temp_c",
    "max_core_temp_c",
    "total_power_w",
    "vf_levels",
    "core_temps",
    "process_cores",
    "process_ips",
    "migrations",
)


def _workload():
    return Workload(
        name="ckpt-equiv",
        items=[
            WorkloadItem("adi", 1e8, 0.0),
            WorkloadItem("blackscholes", 8e7, 0.4),
        ],
        instruction_scale=0.002,
    )


def _topil(platform):
    model = build_mlp(
        FeatureExtractor(platform).n_features,
        platform.n_cores,
        2,
        16,
        RandomSource(0),
    )
    return TopIL(model)


def _technique(name, platform):
    return _topil(platform) if name == "top-il" else GTSOndemand()


def _zoo_technique(platform_name):
    """GTS assumes big.LITTLE cluster names; the single-cluster NUCA grid
    runs under the cluster-agnostic TOP-IL manager instead."""
    return "top-il" if platform_name == "snuca-grid" else "gts"


def _assert_equivalent(resumed, straight):
    assert resumed.now_s == straight.now_s
    for field in TRACE_FIELDS:
        assert getattr(resumed.trace, field) == getattr(
            straight.trace, field
        ), f"trace field {field} diverged after restore"
    assert resumed.thermal.temperatures() == straight.thermal.temperatures()


def _run_both(platform_name, technique_name, seed=11):
    platform = get_platform(platform_name)
    straight = prepare_run(
        platform, _technique(technique_name, platform), _workload(), seed=seed
    )
    straight.run_for(TOTAL_S)

    half = prepare_run(
        platform, _technique(technique_name, platform), _workload(), seed=seed
    )
    half.run_for(TOTAL_S / 2)
    checkpoint = half.snapshot()
    resumed = restore_simulator(checkpoint)
    assert resumed is not half
    resumed.run_for(TOTAL_S - resumed.now_s)
    return resumed, straight


class TestBitIdentityAcrossZoo:
    @pytest.mark.parametrize("platform_name", ZOO)
    def test_snapshot_restore_roundtrip_is_invisible(self, platform_name):
        resumed, straight = _run_both(
            platform_name, _zoo_technique(platform_name)
        )
        _assert_equivalent(resumed, straight)

    def test_holds_under_topil_manager(self):
        """TOP-IL carries the most state across a restore: the NN model,
        the shared DVFS/migration coupling, and the overhead model."""
        resumed, straight = _run_both("hikey970", "top-il")
        _assert_equivalent(resumed, straight)
        assert len(straight.trace.times) > 0


class TestBitIdentityUnderSanitizer:
    @pytest.mark.parametrize("platform_name", ZOO)
    def test_holds_with_sanitizer_enabled(self, platform_name, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        resumed, straight = _run_both(
            platform_name, _zoo_technique(platform_name)
        )
        _assert_equivalent(resumed, straight)

    def test_sanitized_run_matches_unsanitized(self, monkeypatch):
        """The two switches compose: sanitize + checkpoint + restore is
        still bit-identical to a bare straight run."""
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        _, straight = _run_both("hikey970", "gts")
        monkeypatch.setenv(SANITIZE_ENV, "1")
        resumed, _ = _run_both("hikey970", "gts")
        _assert_equivalent(resumed, straight)


class TestRepeatedCheckpointing:
    def test_chained_restores_stay_on_trace(self):
        """Snapshot/restore every quarter — four generations of restore
        must still land exactly on the straight run."""
        platform = get_platform("hikey970")
        straight = prepare_run(platform, GTSOndemand(), _workload(), seed=11)
        straight.run_for(TOTAL_S)

        sim = prepare_run(platform, GTSOndemand(), _workload(), seed=11)
        for _ in range(4):
            sim.run_for(TOTAL_S / 4)
            sim = restore_simulator(snapshot_simulator(sim))
        _assert_equivalent(sim, straight)

    def test_snapshot_determinism(self):
        """Two snapshots of the same state carry the same checksum —
        the artifact layer can content-address them."""
        platform = get_platform("hikey970")
        sim = prepare_run(platform, GTSOndemand(), _workload(), seed=11)
        sim.run_for(0.5)
        a = snapshot_simulator(sim)
        b = snapshot_simulator(sim)
        assert a.checksum == b.checksum
        assert a.sim_time_s == b.sim_time_s
