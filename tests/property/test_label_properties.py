"""Invariants of the Eq. 4 soft-label construction (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.il.dataset import DatasetBuilder, LabelConfig, _Selection
from repro.il.traces import TracePoint
from repro.platform import hikey970

PLATFORM = hikey970()


def _point(core, temp):
    return TracePoint(
        aoi_core=core,
        f_hz=(("LITTLE", 1e9), ("big", 1e9)),
        aoi_ips=1e9,
        aoi_l2d_rate=1e7,
        peak_temp_c=temp,
    )


@st.composite
def selections(draw):
    cores = draw(
        st.lists(st.integers(0, 7), min_size=1, max_size=8, unique=True)
    )
    sels = {}
    any_feasible = False
    for core in cores:
        if draw(st.booleans()):
            temp = draw(st.floats(min_value=25.0, max_value=95.0))
            sels[core] = _Selection(_point(core, temp), {})
            any_feasible = True
        else:
            sels[core] = _Selection(None, {})
    occupied = [c for c in range(8) if c not in cores]
    return sels, occupied, any_feasible


class TestLabelInvariants:
    @given(selections(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=100)
    def test_labels_bounded(self, sel_data, alpha):
        sels, occupied, feasible = sel_data
        builder = DatasetBuilder(PLATFORM, LabelConfig(alpha=alpha))
        labels = builder.make_labels(sels, occupied)
        if not feasible:
            assert labels is None
            return
        assert labels.min() >= -1.0
        assert labels.max() <= 1.0

    @given(selections())
    @settings(max_examples=100)
    def test_coolest_feasible_mapping_scores_one(self, sel_data):
        sels, occupied, feasible = sel_data
        if not feasible:
            return
        builder = DatasetBuilder(PLATFORM)
        labels = builder.make_labels(sels, occupied)
        temps = {
            c: s.point.peak_temp_c for c, s in sels.items() if s.point is not None
        }
        best = min(temps, key=temps.get)
        assert labels[best] == 1.0

    @given(selections())
    @settings(max_examples=100)
    def test_label_order_follows_temperature_order(self, sel_data):
        sels, occupied, feasible = sel_data
        if not feasible:
            return
        builder = DatasetBuilder(PLATFORM)
        labels = builder.make_labels(sels, occupied)
        temps = {
            c: s.point.peak_temp_c for c, s in sels.items() if s.point is not None
        }
        cores = sorted(temps, key=temps.get)
        for a, b in zip(cores, cores[1:]):
            assert labels[a] >= labels[b] - 1e-12

    @given(selections())
    @settings(max_examples=100)
    def test_occupied_always_zero_infeasible_always_minus_one(self, sel_data):
        sels, occupied, feasible = sel_data
        if not feasible:
            return
        builder = DatasetBuilder(PLATFORM)
        labels = builder.make_labels(sels, occupied)
        for core in occupied:
            assert labels[core] == 0.0
        for core, sel in sels.items():
            if sel.point is None and core not in occupied:
                assert labels[core] == -1.0

    @given(selections())
    @settings(max_examples=60)
    def test_sharper_alpha_never_raises_labels(self, sel_data):
        sels, occupied, feasible = sel_data
        if not feasible:
            return
        soft = DatasetBuilder(PLATFORM, LabelConfig(alpha=0.5)).make_labels(
            sels, occupied
        )
        sharp = DatasetBuilder(PLATFORM, LabelConfig(alpha=2.0)).make_labels(
            sels, occupied
        )
        feas = [
            c for c, s in sels.items() if s.point is not None and c not in occupied
        ]
        for core in feas:
            assert sharp[core] <= soft[core] + 1e-12
