"""Gradient correctness and training invariants of the NN library."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import build_mlp
from repro.nn.losses import MSELoss
from repro.utils.rng import RandomSource


@st.composite
def mlp_specs(draw):
    return dict(
        input_dim=draw(st.integers(1, 6)),
        output_dim=draw(st.integers(1, 4)),
        hidden_layers=draw(st.integers(0, 3)),
        hidden_width=draw(st.integers(1, 12)),
        seed=draw(st.integers(0, 1000)),
        batch=draw(st.integers(1, 8)),
    )


class TestGradients:
    @given(mlp_specs())
    @settings(max_examples=25, deadline=None)
    def test_backward_matches_finite_differences(self, spec):
        rng = RandomSource(spec["seed"])
        model = build_mlp(
            spec["input_dim"],
            spec["output_dim"],
            spec["hidden_layers"],
            spec["hidden_width"],
            rng,
        )
        x = rng.normal(size=(spec["batch"], spec["input_dim"]))
        y = rng.normal(size=(spec["batch"], spec["output_dim"]))
        loss_fn = MSELoss()

        model.zero_grad()
        _, grad = loss_fn(model.forward(x), y)
        model.backward(grad)

        # Check one random parameter per parameter tensor.  Finite
        # differences are invalid where a ReLU kink falls inside the
        # perturbation interval; two step sizes that disagree reveal such
        # non-smooth points, which are skipped.
        check_rng = np.random.default_rng(spec["seed"])

        def loss_at(value, idx, delta):
            value[idx] += delta
            loss, _ = loss_fn(model.forward(x), y)
            value[idx] -= delta
            return loss

        eps = 1e-6
        for _, value, analytic in model.params():
            flat_idx = int(check_rng.integers(value.size))
            idx = np.unravel_index(flat_idx, value.shape)
            center = loss_at(value, idx, 0.0)
            forward = (loss_at(value, idx, eps) - center) / eps
            backward = (center - loss_at(value, idx, -eps)) / eps
            if not np.isclose(forward, backward, rtol=1e-3, atol=1e-6):
                continue  # one-sided slopes differ: ReLU kink at this point
            assert np.isclose(analytic[idx], 0.5 * (forward + backward),
                              rtol=1e-3, atol=1e-6)

    @given(mlp_specs())
    @settings(max_examples=25, deadline=None)
    def test_forward_deterministic(self, spec):
        rng = RandomSource(spec["seed"])
        model = build_mlp(
            spec["input_dim"],
            spec["output_dim"],
            spec["hidden_layers"],
            spec["hidden_width"],
            rng,
        )
        x = rng.normal(size=(spec["batch"], spec["input_dim"]))
        assert np.array_equal(model.forward(x), model.forward(x))

    @given(mlp_specs())
    @settings(max_examples=25, deadline=None)
    def test_batch_rows_independent(self, spec):
        """Row i of a batched forward equals the single-sample forward."""
        rng = RandomSource(spec["seed"])
        model = build_mlp(
            spec["input_dim"],
            spec["output_dim"],
            spec["hidden_layers"],
            spec["hidden_width"],
            rng,
        )
        x = rng.normal(size=(spec["batch"], spec["input_dim"]))
        batched = model.forward(x)
        for i in range(spec["batch"]):
            single = model.forward(x[i : i + 1])
            assert np.allclose(batched[i], single[0])
