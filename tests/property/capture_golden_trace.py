"""Capture the golden kernel-trace fixture for the fast-path equivalence test.

Run this against a *known-good* kernel (it was first run against the
pre-optimization seed kernel) to regenerate
``tests/property/fixtures/golden_kernel_trace.json``:

    PYTHONPATH=src python tests/property/capture_golden_trace.py

The fixture pins the full observable behaviour of one fixed-seed smoke
run — temperatures, power, VF choices, migrations, and per-process QoS
accounting — so any rework of the simulation hot path can be checked for
numerical equivalence.
"""

from __future__ import annotations

import json
import os

from repro.governors.techniques import GTSOndemand
from repro.platform import hikey970
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_kernel_trace.json"
)

SEED = 11
N_APPS = 6
ARRIVAL_RATE = 1.0 / 6.0
INSTRUCTION_SCALE = 0.02


def run_golden_scenario(platform=None):
    """The fixed scenario both the capture and the regression test run.

    ``platform`` defaults to a directly built HiKey 970; the registry
    bit-identity test passes ``get_platform("hikey970")`` instead.
    """
    platform = platform if platform is not None else hikey970()
    workload = mixed_workload(
        platform,
        n_apps=N_APPS,
        arrival_rate_per_s=ARRIVAL_RATE,
        seed=SEED,
        instruction_scale=INSTRUCTION_SCALE,
    )
    return run_workload(
        platform, GTSOndemand(), workload, cooling=FAN_COOLING, seed=SEED
    )


def trace_to_dict(run) -> dict:
    trace = run.trace
    sim = run.sim
    return {
        "duration_s": sim.now_s,
        "times": list(trace.times),
        "sensor_temp_c": list(trace.sensor_temp_c),
        "max_core_temp_c": list(trace.max_core_temp_c),
        "total_power_w": list(trace.total_power_w),
        "vf_levels": {k: list(v) for k, v in trace.vf_levels.items()},
        "node_temps": {k: list(v) for k, v in trace.core_temps.items()},
        "migrations": [
            [m.time_s, m.pid, m.from_core if m.from_core is not None else -1,
             m.to_core]
            for m in trace.migrations
        ],
        "processes": [
            {
                "pid": p.pid,
                "app": p.app.name,
                "instructions_done": p.instructions_done,
                "total_cpu_time_s": p.total_cpu_time_s,
                "qos_met_time_s": p.qos_met_time_s,
                "qos_observed_time_s": p.qos_observed_time_s,
                "finish_time_s": p.finish_time_s,
                "migration_count": p.migration_count,
            }
            for p in sorted(sim.all_processes(), key=lambda p: p.pid)
        ],
    }


def main() -> None:
    run = run_golden_scenario()
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    with open(FIXTURE_PATH, "w") as fh:
        json.dump(trace_to_dict(run), fh, indent=1)
    print(f"wrote {FIXTURE_PATH}: {len(run.trace.times)} samples, "
          f"{len(run.trace.migrations)} migrations, "
          f"{run.sim.now_s:.1f} simulated seconds")


if __name__ == "__main__":
    main()
