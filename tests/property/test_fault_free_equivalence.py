"""Zero-fault injection must be bit-identical to the uninstrumented run.

The fault layer's core determinism claim: its injector draws only from
private ``faults/<kind>`` child streams of ``RandomSource(plan.seed)`` and
a plan with **no specs** never consults any stream at all, so attaching
the full fault runtime (fault-tolerant sensor included) with an empty
:class:`~repro.faults.FaultPlan` reproduces the golden kernel-trace
fixture bit-for-bit — same sensor readings, same VF decisions, same
migrations, same process accounting.

This is the same fixture and tolerance discipline as
``test_kernel_fastpath_equivalence.py``; only the run carries
``fault_plan=FaultPlan()`` here.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from capture_golden_trace import (
    ARRIVAL_RATE,
    FIXTURE_PATH,
    INSTRUCTION_SCALE,
    N_APPS,
    SEED,
    trace_to_dict,
)

from repro.faults import FaultPlan
from repro.governors.techniques import GTSOndemand
from repro.platform import hikey970
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload

TEMP_ATOL_C = 1e-6
POWER_RTOL = 1e-9
TIME_ATOL_S = 1e-9


def run_zero_fault_scenario():
    """The golden scenario with the fault layer attached but empty."""
    platform = hikey970()
    workload = mixed_workload(
        platform,
        n_apps=N_APPS,
        arrival_rate_per_s=ARRIVAL_RATE,
        seed=SEED,
        instruction_scale=INSTRUCTION_SCALE,
    )
    return run_workload(
        platform,
        GTSOndemand(),
        workload,
        cooling=FAN_COOLING,
        seed=SEED,
        fault_plan=FaultPlan(),
    )


@pytest.fixture(scope="module")
def golden() -> dict:
    assert os.path.exists(FIXTURE_PATH), (
        "golden fixture missing; run "
        "PYTHONPATH=src python tests/property/capture_golden_trace.py "
        "against a known-good kernel"
    )
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def replay():
    return run_zero_fault_scenario()


@pytest.fixture(scope="module")
def replay_dict(replay) -> dict:
    return trace_to_dict(replay)


class TestZeroFaultBitIdentity:
    def test_fault_layer_is_attached_but_idle(self, replay):
        sim = replay.sim
        assert sim.faults is not None
        assert sim.faults.plan.is_zero()
        assert sim.faults.injector.total_injected() == 0
        assert sim.faults.sensor is not None
        assert sim.faults.sensor.held_reads == 0
        assert not sim.faults.degradation.events

    def test_sensor_readings_exact(self, golden, replay_dict):
        # The FaultTolerantSensor's healthy path performs exactly the base
        # class's noise draw, so readings are bit-identical.
        assert replay_dict["sensor_temp_c"] == golden["sensor_temp_c"]

    def test_vf_decisions_exact(self, golden, replay_dict):
        assert replay_dict["vf_levels"] == golden["vf_levels"]

    def test_migrations_exact(self, golden, replay_dict):
        assert replay_dict["migrations"] == golden["migrations"]

    def test_duration_and_sample_times(self, golden, replay_dict):
        assert replay_dict["duration_s"] == pytest.approx(
            golden["duration_s"], abs=TIME_ATOL_S
        )
        np.testing.assert_allclose(
            replay_dict["times"], golden["times"], atol=TIME_ATOL_S
        )

    def test_node_temperatures(self, golden, replay_dict):
        for node, temps in golden["node_temps"].items():
            np.testing.assert_allclose(
                replay_dict["node_temps"][node], temps, atol=TEMP_ATOL_C,
                err_msg=f"node {node}",
            )

    def test_total_power(self, golden, replay_dict):
        np.testing.assert_allclose(
            replay_dict["total_power_w"], golden["total_power_w"],
            rtol=POWER_RTOL,
        )

    def test_process_accounting(self, golden, replay_dict):
        assert len(replay_dict["processes"]) == len(golden["processes"])
        for got, want in zip(replay_dict["processes"], golden["processes"]):
            assert got["pid"] == want["pid"]
            assert got["app"] == want["app"]
            assert got["migration_count"] == want["migration_count"]
            assert got["instructions_done"] == pytest.approx(
                want["instructions_done"], rel=POWER_RTOL
            )
