"""Physical invariants of the RC thermal network (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.rc import RCThermalNetwork

# Strategies kept in physically sane ranges so matrices stay well-conditioned.
capacitances = st.floats(min_value=1e-3, max_value=100.0)
conductances = st.floats(min_value=1e-2, max_value=10.0)
powers = st.floats(min_value=0.0, max_value=20.0)
temps = st.floats(min_value=-20.0, max_value=150.0)


def _chain_network(caps, conds, amb_cond):
    """A chain of nodes n0 - n1 - ... with ambient at the last node."""
    net = RCThermalNetwork(ambient_temp_c=25.0)
    for i, c in enumerate(caps):
        net.add_node(f"n{i}", c)
    for i, g in enumerate(conds):
        net.connect(f"n{i}", f"n{i + 1}", g)
    net.connect_to_ambient(f"n{len(caps) - 1}", amb_cond)
    net.finalize()
    return net


@st.composite
def chain_networks(draw, min_nodes=2, max_nodes=5):
    n = draw(st.integers(min_nodes, max_nodes))
    caps = [draw(capacitances) for _ in range(n)]
    conds = [draw(conductances) for _ in range(n - 1)]
    amb = draw(conductances)
    return _chain_network(caps, conds, amb)


class TestPassivity:
    @given(chain_networks(), st.lists(temps, min_size=5, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_unpowered_network_contracts_towards_ambient(self, net, start):
        """With P = 0 the max |T - ambient| never increases."""
        init = {name: start[i % len(start)] for i, name in enumerate(net.node_names)}
        net.set_temperatures(init)
        prev = max(abs(t - 25.0) for t in net.temperatures().values())
        for _ in range(20):
            net.step({}, 0.5)
            cur = max(abs(t - 25.0) for t in net.temperatures().values())
            assert cur <= prev + 1e-9
            prev = cur

    @given(chain_networks(), powers)
    @settings(max_examples=40, deadline=None)
    def test_powered_nodes_never_below_ambient(self, net, p):
        net.reset()
        for _ in range(20):
            net.step({"n0": p}, 0.3)
        assert all(t >= 25.0 - 1e-9 for t in net.temperatures().values())


class TestLinearity:
    @given(chain_networks(), powers, powers)
    @settings(max_examples=40, deadline=None)
    def test_steady_state_superposition(self, net, p1, p2):
        """theta_ss(p1 + p2) = theta_ss(p1) + theta_ss(p2)."""
        names = net.node_names
        a = net.steady_state({names[0]: p1})
        b = net.steady_state({names[-1]: p2})
        combined = net.steady_state({names[0]: p1, names[-1]: p2})
        for name in names:
            expected = a[name] + b[name] - 25.0  # ambient counted twice
            assert np.isclose(combined[name], expected, atol=1e-6)

    @given(chain_networks(), powers)
    @settings(max_examples=40, deadline=None)
    def test_steady_state_monotone_in_power(self, net, p):
        low = net.steady_state({"n0": p})
        high = net.steady_state({"n0": p + 1.0})
        for name in net.node_names:
            assert high[name] >= low[name] - 1e-9


class TestConvergence:
    @given(chain_networks(), powers)
    @settings(max_examples=25, deadline=None)
    def test_step_converges_to_steady_state(self, net, p):
        target = net.steady_state({"n0": p})
        # Step far past the slowest time constant.
        tau_max = float(net.time_constants()[0])
        for _ in range(30):
            net.step({"n0": p}, tau_max)
        temps = net.temperatures()
        for name in net.node_names:
            assert np.isclose(temps[name], target[name], atol=1e-3)

    @given(chain_networks(), powers, st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_split_step_equals_full_step(self, net, p, dt):
        """Exactness of the expm integrator for piecewise-constant power."""
        clone = _rebuild_like(net)
        net.step({"n0": p}, dt)
        clone.step({"n0": p}, dt / 2)
        clone.step({"n0": p}, dt / 2)
        for name in net.node_names:
            assert np.isclose(
                net.temperature_of(name), clone.temperature_of(name), atol=1e-8
            )


def _rebuild_like(net):
    """Clone a finalized chain network (structure captured via matrices)."""
    clone = RCThermalNetwork(ambient_temp_c=net.ambient_temp_c)
    clone._names = list(net._names)
    clone._index = dict(net._index)
    clone._cap_vector = net._cap_vector.copy()
    clone._g_matrix = net._g_matrix.copy()
    clone._g_inv = net._g_inv.copy()
    clone._theta = net._theta.copy()
    clone._x_buffer = np.empty(2 * len(clone._names))
    clone._operator_digest = net._operator_digest
    clone._finalized = True
    clone._expm_cache.clear()
    clone._step_cache.clear()
    return clone


class TestEnergyBound:
    @given(chain_networks(), powers, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_stored_energy_never_exceeds_injected(self, net, p, dt):
        """From a cold start, sum(C_i * theta_i) <= total injected energy
        (the rest was dissipated to ambient) — first-law sanity check."""
        net.reset()
        injected = 0.0
        for _ in range(25):
            net.step({"n0": p}, dt)
            injected += p * dt
            theta = [t - 25.0 for t in net.temperatures().values()]
            stored = sum(c * th for c, th in zip(net._cap_vector, theta))
            assert stored <= injected + 1e-6
