"""Invariants of VF tables (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.vf import VFLevel, VFTable


@st.composite
def vf_tables(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    freqs = sorted(
        draw(
            st.lists(
                st.floats(min_value=1e8, max_value=5e9),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    voltages = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.5, max_value=1.3), min_size=n, max_size=n
            )
        )
    )
    return VFTable([VFLevel(f, v) for f, v in zip(freqs, voltages)])


class TestTableInvariants:
    @given(vf_tables())
    @settings(max_examples=60)
    def test_frequencies_sorted_and_voltage_monotone(self, table):
        freqs = table.frequencies
        volts = [lv.voltage_v for lv in table]
        assert freqs == sorted(freqs)
        assert volts == sorted(volts)

    @given(vf_tables(), st.floats(min_value=1e7, max_value=6e9))
    @settings(max_examples=60)
    def test_level_at_or_above_is_lowest_sufficient(self, table, target):
        if not table.has_level_at_or_above(target):
            return
        level = table.level_at_or_above(target)
        assert level.frequency_hz >= target
        below = [f for f in table.frequencies if f < level.frequency_hz]
        assert all(f < target for f in below)

    @given(vf_tables(), st.floats(min_value=1e7, max_value=6e9))
    @settings(max_examples=60)
    def test_clamp_always_returns_member(self, table, target):
        level = table.clamp(target)
        assert level.frequency_hz in table.frequencies


class TestStepping:
    @given(vf_tables(), st.data())
    @settings(max_examples=60)
    def test_step_towards_terminates_at_target(self, table, data):
        i = data.draw(st.integers(0, len(table) - 1))
        j = data.draw(st.integers(0, len(table) - 1))
        current, target = table[i], table[j]
        for _ in range(len(table) + 1):
            current = table.step_towards(current, target)
        assert current == target

    @given(vf_tables(), st.data())
    @settings(max_examples=60)
    def test_step_moves_at_most_one_level(self, table, data):
        i = data.draw(st.integers(0, len(table) - 1))
        j = data.draw(st.integers(0, len(table) - 1))
        current, target = table[i], table[j]
        nxt = table.step_towards(current, target)
        assert abs(table.index_of(nxt.frequency_hz) - i) <= 1
