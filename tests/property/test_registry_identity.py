"""Registry-built HiKey 970 is bit-identical to the direct build.

The declarative :class:`~repro.platform.spec.PlatformSpec` layer must not
perturb the paper platform in any way: ``get_platform("hikey970")`` goes
spec -> build() while ``hikey970()`` constructs the imperative description
directly, and the two must agree float-for-float — same fingerprint, same
golden-trace replay (serial), and the same lockstep batch behaviour.
Exact equality throughout, never ``isclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from capture_golden_trace import run_golden_scenario, trace_to_dict
from repro.governors.techniques import GTSOndemand, GTSPowersave
from repro.platform import get_platform, get_spec, hikey970
from repro.sim.batch import BatchSimulator
from repro.store.keys import platform_fingerprint
from repro.thermal import FAN_COOLING
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import finalize_run, prepare_run, run_workload


@pytest.fixture(scope="module")
def registry_platform():
    return get_platform("hikey970")


class TestRegistryHikeyIdentity:
    def test_fingerprint_identical(self, registry_platform):
        assert platform_fingerprint(registry_platform) == platform_fingerprint(
            hikey970()
        )

    def test_description_equal(self, registry_platform):
        direct = hikey970()
        assert registry_platform.name == direct.name
        assert registry_platform.ambient_temp_c == direct.ambient_temp_c
        assert registry_platform.dtm == direct.dtm
        assert registry_platform.floorplan == direct.floorplan
        assert len(registry_platform.clusters) == len(direct.clusters)
        for built, want in zip(registry_platform.clusters, direct.clusters):
            assert built.name == want.name
            assert built.core_ids == want.core_ids
            assert built.dyn_power_coeff == want.dyn_power_coeff
            assert built.static_power_coeff == want.static_power_coeff
            assert built.idle_power_fraction == want.idle_power_fraction
            assert built.out_of_order == want.out_of_order
            assert list(built.vf_table) == list(want.vf_table)

    def test_spec_roundtrips_through_dict(self):
        spec = get_spec("hikey970")
        assert spec.from_dict(spec.to_dict()) == spec

    def test_serial_golden_trace_identical(self, registry_platform):
        """The golden smoke scenario replays bit-for-bit on the registry
        build: every trace series and process counter exactly equal."""
        direct = trace_to_dict(run_golden_scenario())
        registry = trace_to_dict(run_golden_scenario(registry_platform))
        assert registry == direct

    def test_batched_run_identical(self, registry_platform):
        """A lockstep batch on the registry platform reproduces the scalar
        kernel on the direct build, cell by cell."""
        specs = [(GTSOndemand, 61), (GTSPowersave, 62)]
        scale, n_apps = 0.004, 3

        def workload(platform, seed):
            return mixed_workload(
                platform,
                n_apps=n_apps,
                arrival_rate_per_s=0.3,
                seed=seed,
                instruction_scale=scale,
            )

        direct = hikey970()
        serial = [
            run_workload(direct, tech(), workload(direct, seed),
                         FAN_COOLING, seed=seed)
            for tech, seed in specs
        ]
        prepared = [
            (prepare_run(registry_platform, tech(),
                         workload(registry_platform, seed),
                         FAN_COOLING, seed=seed), tech(), seed)
            for tech, seed in specs
        ]
        outcomes = BatchSimulator(
            [sim for sim, _, _ in prepared]
        ).run(timeout_s=7200.0)
        assert all(outcome is None for outcome in outcomes)
        batched = [
            finalize_run(sim, tech, workload(registry_platform, seed),
                         seed=seed)
            for sim, tech, seed in prepared
        ]
        for one_serial, one_batched in zip(serial, batched):
            st, bt = one_serial.trace, one_batched.trace
            assert st.times == bt.times
            assert st.sensor_temp_c == bt.sensor_temp_c
            assert st.total_power_w == bt.total_power_w
            assert st.vf_levels == bt.vf_levels
            assert st.core_temps == bt.core_temps
            assert st.migrations == bt.migrations
            assert np.array_equal(
                one_serial.sim.thermal.theta, one_batched.sim.thermal.theta
            )
            assert one_serial.summary == one_batched.summary
