"""Invariants of workload generation (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.platform import hikey970
from repro.platform.hikey import LITTLE
from repro.workloads.generator import mixed_workload

PLATFORM = hikey970()

seeds = st.integers(0, 10_000)
counts = st.integers(1, 30)
rates = st.floats(min_value=0.01, max_value=2.0)


class TestMixedWorkloadInvariants:
    @given(seeds, counts, rates)
    @settings(max_examples=50, deadline=None)
    def test_arrivals_sorted_and_positive(self, seed, n, rate):
        wl = mixed_workload(PLATFORM, n_apps=n, arrival_rate_per_s=rate, seed=seed)
        arrivals = [i.arrival_time_s for i in wl.items]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    @given(seeds, counts)
    @settings(max_examples=50, deadline=None)
    def test_targets_within_declared_fraction_range(self, seed, n):
        wl = mixed_workload(
            PLATFORM, n_apps=n, seed=seed, qos_fraction_range=(0.35, 0.85)
        )
        table = PLATFORM.cluster(LITTLE).vf_table
        for item in wl.items:
            peak = get_app(item.app_name).max_ips(LITTLE, table)
            fraction = item.qos_target_ips / peak
            assert 0.35 - 1e-9 <= fraction <= 0.85 + 1e-9

    @given(seeds, counts, rates)
    @settings(max_examples=50, deadline=None)
    def test_generation_is_pure(self, seed, n, rate):
        a = mixed_workload(PLATFORM, n_apps=n, arrival_rate_per_s=rate, seed=seed)
        b = mixed_workload(PLATFORM, n_apps=n, arrival_rate_per_s=rate, seed=seed)
        assert a.items == b.items

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_json_roundtrip_lossless(self, seed):
        import os
        import tempfile

        from repro.workloads.generator import load_workload, save_workload

        wl = mixed_workload(PLATFORM, n_apps=5, seed=seed)
        fd, path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        try:
            save_workload(wl, path)
            assert load_workload(path).items == wl.items
        finally:
            os.unlink(path)
