"""Shared fixtures for the test suite.

Heavy design-time artifacts (trace grids, datasets, trained models,
Q-tables) are built once per session from a small but non-trivial
configuration and cached in a session temp directory so that every test
module can use them without re-running the pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments.assets import AssetConfig, AssetStore
from repro.il.traces import TraceCollector, TraceScenario
from repro.platform import hikey970


@pytest.fixture(scope="session")
def platform():
    """One HiKey 970 platform description shared by all tests."""
    return hikey970()


@pytest.fixture(scope="session")
def asset_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro-assets"))


@pytest.fixture(scope="session")
def assets(platform, asset_cache_dir):
    """Session-scoped smoke-sized assets (dataset, models, Q-tables)."""
    store = AssetStore(platform, AssetConfig.smoke(cache_dir=asset_cache_dir))
    # Materialize eagerly so individual tests don't pay the build lazily
    # in surprising places.
    store.dataset()
    store.models()
    store.qtables()
    return store


@pytest.fixture(scope="session")
def tiny_trace_grid(platform):
    """A small trace grid: one scenario, two candidate cores, 2x2 VF grid."""
    collector = TraceCollector(
        platform,
        vf_levels_per_cluster=2,
        max_window_s=3.0,
        min_window_s=2.0,
        dt_s=0.02,
    )
    scenario = TraceScenario(
        aoi_app="seidel-2d",
        background=((1, "syr2k"), (5, "gramschmidt")),
    )
    return collector.collect(scenario, aoi_cores=[0, 4])
