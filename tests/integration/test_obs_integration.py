"""End-to-end observability: traced runs match untraced runs and the
exported artifacts (Chrome trace, JSONL, manifests) are loadable and
consistent with the run summary."""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.il.technique import TopIL
from repro.governors.techniques import GTSOndemand
from repro.metrics.summary import summary_metrics, summarize_run
from repro.obs.config import Observability
from repro.obs.manifest import RunManifest
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


def _small_workload(platform, seed=11):
    return mixed_workload(
        platform,
        n_apps=5,
        arrival_rate_per_s=1.0 / 6.0,
        seed=seed,
        instruction_scale=0.02,
    )


class TestTracedRunIsFaithful:
    def test_tracing_does_not_change_results(self, platform, tmp_path):
        workload = _small_workload(platform)
        baseline = run_workload(
            platform, GTSOndemand(), workload, seed=11,
            observability=Observability.disabled(),
        )
        traced = run_workload(
            platform, GTSOndemand(), workload, seed=11,
            observability=Observability(enabled=True, out_dir=str(tmp_path)),
            run_label=None,
        )
        # Bit-identical run summary: the observer reads state but never
        # consumes any RNG stream (in particular not the sensor noise).
        assert traced.summary == baseline.summary
        assert traced.sim.now_s == baseline.sim.now_s

    def test_migration_events_match_recorder(self, platform, assets, tmp_path):
        workload = _small_workload(platform)
        run = run_workload(
            platform,
            TopIL(assets.models()[0]),
            workload,
            seed=11,
            observability=Observability(enabled=True, out_dir=str(tmp_path)),
            run_label="il-traced",
        )
        obs = run.sim.obs
        events = obs.tracer.events()
        migration_events = [e for e in events if e.name == "migration"]
        recorded = [m for m in run.trace.migrations if m.from_core is not None]
        assert len(migration_events) == len(recorded)
        for event, migration in zip(migration_events, recorded):
            assert event.args["pid"] == migration.pid
            assert event.args["from_core"] == migration.from_core
            assert event.args["to_core"] == migration.to_core
            assert event.ts_s == pytest.approx(migration.time_s)
        arrival_events = [e for e in events if e.name == "arrival"]
        arrivals = [m for m in run.trace.migrations if m.from_core is None]
        assert len(arrival_events) == len(arrivals)

    def test_dvfs_spans_match_loop_invocations(self, platform, assets, tmp_path):
        workload = _small_workload(platform)
        technique = TopIL(assets.models()[0])
        run = run_workload(
            platform,
            technique,
            workload,
            seed=11,
            observability=Observability(enabled=True, out_dir=str(tmp_path)),
            run_label="il-dvfs",
        )
        obs = run.sim.obs
        spans = [
            e for e in obs.tracer.events()
            if e.cat == "controller" and e.ph == "X" and e.name == "qos-dvfs"
        ]
        assert technique.dvfs_loop.invocations > 0
        assert len(spans) == technique.dvfs_loop.invocations
        counter = obs.registry.counter(
            "controller_invocations_total", controller="qos-dvfs"
        )
        assert counter.value == technique.dvfs_loop.invocations
        skips = obs.registry.counter("dvfs_skips_total")
        assert skips.value == technique.dvfs_loop.skipped
        # Every span carries a non-negative wall-clock duration.
        assert all(e.dur_s >= 0.0 for e in spans)

    def test_recorder_bridge_matches_observer(self, platform, tmp_path):
        workload = _small_workload(platform)
        run = run_workload(
            platform, GTSOndemand(), workload, seed=11,
            observability=Observability(enabled=True, out_dir=str(tmp_path)),
            run_label="bridge",
        )
        bridged = run.trace.migration_trace_events()
        assert len(bridged) == len(run.trace.migrations)
        assert all(e.cat == "migration" for e in bridged)


class TestArtifacts:
    def test_run_artifacts_are_loadable(self, platform, tmp_path):
        workload = _small_workload(platform)
        run = run_workload(
            platform, GTSOndemand(), workload, seed=11,
            observability=Observability(enabled=True, out_dir=str(tmp_path)),
            run_label="artifacts",
        )
        assert set(run.artifacts) == {
            "events_jsonl", "chrome_trace", "manifest",
        }
        # JSONL: one JSON object per line, as many as the tracer stored.
        with open(run.artifacts["events_jsonl"]) as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == run.sim.obs.tracer.stats().stored
        # Chrome trace: loadable document with the required shape.
        with open(run.artifacts["chrome_trace"]) as handle:
            doc = json.load(handle)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases  # metadata (process / thread names)
        assert "X" in phases  # controller spans
        assert "i" in phases  # instants

    def test_manifest_summary_matches_summarize_run(self, platform, tmp_path):
        workload = _small_workload(platform)
        run = run_workload(
            platform, GTSOndemand(), workload, seed=11,
            observability=Observability(enabled=True, out_dir=str(tmp_path)),
            run_label="manifest-check",
        )
        manifest = RunManifest.load(run.artifacts["manifest"])
        expected = summary_metrics(
            summarize_run(run.sim, "GTS/ondemand", workload.name)
        )
        assert manifest.summary == pytest.approx(expected)
        assert manifest.seed == 11
        assert manifest.sim_time_s == pytest.approx(run.sim.now_s)
        assert manifest.tracer["recorded"] > 0
        # The registry snapshot carries the same run_* gauges.
        for name, value in expected.items():
            assert manifest.metrics[name] == pytest.approx(value)


class TestGridManifests:
    def test_main_mixed_merges_cell_manifests(
        self, platform, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        # A cold artifact store: warm cells are served without running any
        # worker code and therefore write no per-cell trace artifacts
        # (see docs/caching.md), so the merge needs every cell to execute.
        assets = AssetStore(
            platform, AssetConfig.smoke(cache_dir=str(tmp_path / "cache"))
        )
        config = MainMixedConfig.smoke()
        config.techniques = ("GTS/ondemand",)
        config.repetitions = 2
        result = run_main_mixed(assets, config, parallel=True, n_workers=2)
        assert len(result.raw) == 2
        cell_manifests = sorted(
            glob.glob(os.path.join(str(tmp_path), "main_mixed", "*.manifest.json"))
        )
        assert len(cell_manifests) == 2
        merged_path = os.path.join(str(tmp_path), "main_mixed.manifest.json")
        merged = RunManifest.load(merged_path)
        assert merged.experiment == "main_mixed"
        assert merged.extra["n_cells"] == 2
        fragments = [RunManifest.load(p) for p in cell_manifests]
        assert merged.sim_time_s == pytest.approx(
            sum(f.sim_time_s for f in fragments)
        )
        # Cells are keyed by label in sorted order, scheduling-independent.
        labels = [c["label"] for c in merged.extra["cells"]]
        assert labels == sorted(labels)
