"""Tier-1 gate: ``python -m tools.analysis src/`` must be clean.

Shells out exactly the way CI and developers invoke the linter, so this
also covers the CLI entry point, exit codes, and the JSON report.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.analysis", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_src_tree_is_clean(tmp_path):
    report = tmp_path / "report.json"
    result = _run_lint("src", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations:\n{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["tool"] == "repro-lint"
    assert payload["total"] == 0
    assert len(payload["rules"]) >= 4


def test_obs_package_is_clean(tmp_path):
    """The observability layer is explicitly lint-gated: its hook sites sit
    on the kernel hot path, so a HOT/DET/UNIT violation there is exactly
    the regression this gate exists to catch."""
    report = tmp_path / "obs_report.json"
    result = _run_lint("src/repro/obs", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/obs:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_faults_package_is_clean(tmp_path):
    """The fault-injection layer is lint-gated alongside obs: its injector
    runs inside the kernel step and its RNG discipline (private child
    streams only) is precisely what DET rules guard."""
    report = tmp_path / "faults_report.json"
    result = _run_lint("src/repro/faults", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/faults:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_store_package_is_clean(tmp_path):
    """The artifact store is lint-gated like obs/faults: it sits under
    every cached experiment, and its only wall-clock reads (trace
    timestamps, gc ages) must stay behind explicit DET003 waivers."""
    report = tmp_path / "store_report.json"
    result = _run_lint("src/repro/store", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/store:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_chaos_package_is_clean(tmp_path):
    """The chaos layer is lint-gated like faults: it injects host-level
    failures from private seeded streams (DET discipline) and its retry
    targets in the store must stay bounded (RETRY001)."""
    report = tmp_path / "chaos_report.json"
    result = _run_lint("src/repro/chaos", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/chaos:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_checkpoint_module_is_clean(tmp_path):
    """The checkpoint layer carries the bit-identity contract: its code
    must be deterministic and unit-disciplined like the kernel it
    snapshots."""
    report = tmp_path / "checkpoint_report.json"
    result = _run_lint("src/repro/sim/checkpoint.py", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/sim/checkpoint.py:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_platform_package_is_clean(tmp_path):
    """The platform package is lint-gated with the strict core: the
    declarative specs feed platform fingerprints (KEY discipline) and the
    floorplan/VF numbers parametrize the thermal solver, so unit or
    determinism violations here corrupt every downstream cache key."""
    report = tmp_path / "platform_report.json"
    result = _run_lint("src/repro/platform", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/platform:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_batch_module_is_clean(tmp_path):
    """The batched lockstep kernel is lint-gated explicitly: its tick loop
    is the hottest code in the repo (HOT rules), its float comparisons
    carry the bit-identity contract (FLT001), and its only randomness must
    come from the cells' own seeded sensor streams (DET rules)."""
    report = tmp_path / "batch_report.json"
    result = _run_lint("src/repro/sim/batch.py", "--json", str(report))
    assert result.returncode == 0, (
        f"repro-lint found violations in repro/sim/batch.py:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0


def test_interprocedural_pass_is_clean(tmp_path):
    """The tier-1 interprocedural gate: FORK/KEY/PAR over the full call
    graph of src/, judged against the committed baseline.  A new finding
    must be fixed, inline-waived with a justification, or reviewed into
    tools/analysis/baseline.json — never silently ignored."""
    report = tmp_path / "interproc_report.json"
    result = _run_lint("--interprocedural", "src", "--json", str(report))
    assert result.returncode == 0, (
        f"interprocedural pass found violations:\n"
        f"{result.stdout}{result.stderr}"
    )
    payload = json.loads(report.read_text())
    assert payload["total"] == 0
    rule_ids = {r["id"] for r in payload["rules"]}
    assert {"FORK001", "FORK002", "FORK003", "KEY001", "KEY002",
            "PAR001"} <= rule_ids


def test_tools_tree_self_analysis_is_clean():
    """The linter lints itself (and the rest of tools/): the analysis
    layer must satisfy its own per-file rule set."""
    result = _run_lint("--interprocedural", "src", "tools")
    assert result.returncode == 0, (
        f"self-analysis found violations:\n{result.stdout}{result.stderr}"
    )


def test_baseline_has_no_stale_entries():
    """Every baseline entry must still match a live finding; the CLI
    reports stale ones on stderr without failing the run."""
    result = _run_lint("--interprocedural", "src")
    assert result.returncode == 0
    assert "stale baseline entr" not in result.stderr


def test_sarif_output(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    sarif_path = tmp_path / "report.sarif"
    result = _run_lint(str(bad), "--sarif", str(sarif_path))
    assert result.returncode == 1
    payload = json.loads(sarif_path.read_text())
    assert payload["version"] == "2.1.0"
    [sarif_run] = payload["runs"]
    assert sarif_run["tool"]["driver"]["name"] == "repro-lint"
    assert any(
        r["ruleId"] == "DET001" for r in sarif_run["results"]
    )


def test_json_paths_are_repo_relative(tmp_path):
    """--json reports repo-relative paths so reports are stable across
    checkouts (and usable as baseline keys)."""
    report = tmp_path / "report.json"
    result = _run_lint("src/repro/cli.py", "--json", str(report))
    assert result.returncode == 0
    payload = json.loads(report.read_text())
    # Even with no violations the schema carries rules + counts; seed one
    # violation in-repo? No: assert on a tree we know carries waived
    # sites instead — run without honoring the allowlist is not exposed
    # via CLI, so check a deliberately bad file under the repo root.
    scratch = REPO_ROOT / "tools" / "__lint_scratch__.py"
    scratch.write_text("import random\n")
    try:
        result = _run_lint(str(scratch), "--json", str(report))
        payload = json.loads(report.read_text())
        [violation] = payload["violations"]
        assert violation["path"] == "tools/__lint_scratch__.py"
    finally:
        scratch.unlink()
    assert result.returncode == 1


def test_violations_fail_with_exit_code_1(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    result = _run_lint(str(bad))
    assert result.returncode == 1
    assert "DET001" in result.stdout


def test_list_rules():
    result = _run_lint("--list-rules")
    assert result.returncode == 0
    for rule_id in ("DET001", "UNIT001", "FLT001", "HOT001", "RETRY001"):
        assert rule_id in result.stdout
