"""Behavioural integration tests of the trained TOP-IL policy."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.apps.qos import qos_fraction_of_big_max
from repro.il.technique import TopIL
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING, PASSIVE_COOLING
from repro.workloads import run_workload, single_app_workload


class TestMigrationQuality:
    def test_adi_migrated_to_big_cluster(self, assets):
        """The Fig. 1 anchor: adi (30% big-max target) belongs on big."""
        platform = assets.platform
        sim = Simulator(
            platform,
            FAN_COOLING,
            config=SimConfig(dt_s=0.01),
            sensor_noise_std_c=0.0,
        )
        technique = TopIL(assets.models()[0])
        technique.attach(sim)
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        target = qos_fraction_of_big_max(get_app("adi"), platform, 0.3)
        pid = sim.submit(app, target, 0.0)
        sim.placement_policy = lambda s, p: 0  # start on the wrong cluster
        sim.run_for(5.0)
        cluster = platform.cluster_of_core(sim.process(pid).core_id)
        assert cluster.name == BIG

    def test_policy_stable_after_settling(self, assets):
        """TOP-IL does not ping-pong: few migrations over a long run."""
        platform = assets.platform
        workload = single_app_workload("adi", platform, instruction_scale=0.05)
        run = run_workload(platform, TopIL(assets.models()[0]), workload, seed=0)
        assert run.summary.migrations <= 3


class TestQoSUnderManagement:
    @pytest.mark.parametrize("app_name", ["canneal", "swaptions", "jacobi-2d"])
    def test_single_unseen_apps_meet_qos(self, assets, app_name):
        platform = assets.platform
        workload = single_app_workload(
            app_name, platform, instruction_scale=0.02
        )
        run = run_workload(platform, TopIL(assets.models()[0]), workload, seed=1)
        assert run.summary.n_qos_violations == 0

    def test_generalizes_to_passive_cooling(self, assets):
        """The model was trained with fan traces; it must work without."""
        platform = assets.platform
        workload = single_app_workload("adi", platform, instruction_scale=0.03)
        run = run_workload(
            platform,
            TopIL(assets.models()[0]),
            workload,
            cooling=PASSIVE_COOLING,
            seed=2,
        )
        assert run.summary.n_qos_violations == 0

    def test_dvfs_loop_tracks_demand_spike(self, assets):
        """When a heavy app joins, the cluster VF level rises to protect QoS."""
        platform = assets.platform
        sim = Simulator(
            platform,
            FAN_COOLING,
            config=SimConfig(dt_s=0.01),
            sensor_noise_std_c=0.0,
        )
        technique = TopIL(assets.models()[0])
        technique.attach(sim)
        table = platform.cluster(BIG).vf_table
        light = dataclasses.replace(get_app("seidel-2d"), total_instructions=1e15)
        heavy = dataclasses.replace(get_app("syr2k"), total_instructions=1e15)
        sim.submit(light, 3e8, 0.0)
        heavy_target = 0.9 * get_app("syr2k").max_ips(BIG, table)
        sim.submit(heavy, heavy_target, 5.0)
        sim.run_for(4.0)
        level_before = max(
            sim.vf_level(LITTLE).frequency_hz, sim.vf_level(BIG).frequency_hz
        )
        sim.run_for(8.0)
        heavy_proc = sim.process(1)
        cluster = platform.cluster_of_core(heavy_proc.core_id)
        assert sim.vf_level(cluster.name).frequency_hz > level_before
