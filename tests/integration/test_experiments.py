"""Smoke-sized runs of every per-figure experiment runner.

Each test executes the experiment with its ``smoke()`` configuration and
asserts the paper's qualitative shape, not absolute numbers.
"""

import pytest

from repro.experiments import (
    IllustrativeConfig,
    MainMixedConfig,
    MigrationOverheadConfig,
    ModelEvalConfig,
    MotivationConfig,
    NASConfig,
    OverheadConfig,
    SingleAppConfig,
    run_illustrative,
    run_main_mixed,
    run_migration_overhead,
    run_model_eval,
    run_motivation,
    run_nas,
    run_overhead,
    run_single_app,
)
from repro.platform.hikey import BIG, LITTLE


class TestFig1Motivation:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_motivation(MotivationConfig.smoke(), platform)

    def test_adi_big_optimal_alone(self, result):
        assert result.optimal_cluster("adi", 1) == BIG

    def test_seidel_little_optimal_alone(self, result):
        assert result.optimal_cluster("seidel-2d", 1) == LITTLE

    def test_adi_gap_shrinks_or_flips_with_background(self, result):
        """Per-cluster DVFS changes the trade-off under load: the strong
        big advantage of scenario 1 does not persist in scenario 2."""
        assert result.optimal_cluster("adi", 2) != BIG or (
            result.temperature_gap("adi", 2) < result.temperature_gap("adi", 1)
        )

    def test_report_renders(self, result):
        text = result.report()
        assert "adi" in text and "seidel-2d" in text


class TestFig3NAS:
    @pytest.fixture(scope="class")
    def result(self, assets):
        return run_nas(assets, NASConfig.smoke())

    def test_grid_fully_evaluated(self, result):
        assert len(result.grid.losses) == 9  # 3 depths x 3 widths

    def test_best_point_is_minimum(self, result):
        best = (result.grid.best_depth, result.grid.best_width)
        assert result.grid.losses[best] == min(result.grid.losses.values())

    def test_report_names_best(self, result):
        assert "best:" in result.report()


class TestFig5MigrationOverhead:
    @pytest.fixture(scope="class")
    def result(self, platform):
        return run_migration_overhead(MigrationOverheadConfig.smoke(), platform)

    def test_overhead_small(self, result):
        """Paper: worst case < 4%; allow margin for the short smoke window."""
        assert result.max_overhead() < 0.05

    def test_all_apps_measured(self, result):
        assert {a for a, _, _ in result.overhead} == {
            "dedup",
            "swaptions",
            "canneal",
        }

    def test_memoryless_app_cheapest(self, result):
        by_app = {a: m for a, m, _ in result.overhead}
        assert by_app["swaptions"] <= by_app["canneal"] + 0.01


class TestFig7Illustrative:
    @pytest.fixture(scope="class")
    def result(self, assets):
        return run_illustrative(assets, IllustrativeConfig.smoke())

    def test_il_picks_big_for_adi(self, result):
        run = result.get("adi", "TOP-IL")
        assert run.fraction_on_big > 0.6

    def test_il_more_stable_than_rl(self, result):
        """Cluster switches: IL settles, RL keeps exploring."""
        il = sum(r.cluster_switches for r in result.runs if r.technique == "TOP-IL")
        rl = sum(r.cluster_switches for r in result.runs if r.technique == "TOP-RL")
        assert il <= rl

    def test_il_meets_qos(self, result):
        for app in ("adi", "seidel-2d"):
            assert not result.get(app, "TOP-IL").qos_violated


class TestFig8MainMixed:
    @pytest.fixture(scope="class")
    def result(self, assets):
        return run_main_mixed(assets, MainMixedConfig.smoke())

    def test_all_techniques_aggregated(self, result):
        names = {a.technique for a in result.aggregates}
        assert names == {"TOP-IL", "TOP-RL", "GTS/ondemand", "GTS/powersave"}

    def test_il_cooler_than_ondemand(self, result):
        il = result.aggregate("TOP-IL", "fan")
        od = result.aggregate("GTS/ondemand", "fan")
        assert il.mean_temp_c < od.mean_temp_c

    def test_powersave_most_violations(self, result):
        ps = result.aggregate("GTS/powersave", "fan")
        il = result.aggregate("TOP-IL", "fan")
        assert ps.mean_violations >= il.mean_violations

    def test_frequency_usage_report_renders(self, result):
        text = result.frequency_usage_report(cooling="fan")
        assert "GHz" in text


class TestFig11SingleApp:
    @pytest.fixture(scope="class")
    def result(self, assets):
        return run_single_app(assets, SingleAppConfig.smoke())

    def test_top_il_zero_violations(self, result):
        assert result.total_violations("TOP-IL") == 0

    def test_powersave_spares_only_canneal(self, result):
        """canneal is VF-insensitive; the compute apps starve at min VF."""
        assert result.get("canneal", "GTS/powersave").violations == 0
        assert result.get("swaptions", "GTS/powersave").violations > 0

    def test_ondemand_hottest(self, result):
        od = result.mean_temp("GTS/ondemand")
        assert od >= result.mean_temp("TOP-IL") - 0.2

    def test_report_renders(self, result):
        assert "technique" in result.report()


class TestModelEval:
    @pytest.fixture(scope="class")
    def result(self, assets):
        return run_model_eval(assets, ModelEvalConfig.smoke())

    def test_majority_within_one_degree(self, result):
        """Paper: 82 +/- 5 %; the smoke model should manage > 50 %."""
        assert result.mean_within > 0.5

    def test_excess_temperature_small(self, result):
        """Paper: 0.5 +/- 0.2 degC mean excess."""
        assert result.mean_excess_c < 2.0

    def test_cases_counted(self, result):
        assert result.n_cases > 20

    def test_report_renders(self, result):
        assert "within 1C" in result.report()


class TestFig12Overhead:
    @pytest.fixture(scope="class")
    def result(self, assets):
        return run_overhead(assets, OverheadConfig.smoke())

    def test_dvfs_grows_with_apps(self, result):
        rows = sorted(result.rows, key=lambda r: r.n_apps)
        assert rows[-1].dvfs_ms_per_s > rows[0].dvfs_ms_per_s

    def test_npu_migration_flat(self, result):
        rows = sorted(result.rows, key=lambda r: r.n_apps)
        growth = rows[-1].migration_npu_ms_per_s / rows[0].migration_npu_ms_per_s
        assert growth < 1.6

    def test_cpu_inference_scales_with_apps(self, result):
        rows = sorted(result.rows, key=lambda r: r.n_apps)
        growth = rows[-1].migration_cpu_ms_per_s / rows[0].migration_cpu_ms_per_s
        assert growth > 2.0

    def test_total_overhead_negligible(self, result):
        assert result.max_total_fraction() < 0.03

    def test_measured_matches_analytic_scale(self, result):
        for row in result.rows:
            if row.measured_total_fraction is not None:
                analytic = (row.dvfs_ms_per_s + row.migration_npu_ms_per_s) / 1000
                assert row.measured_total_fraction < 3 * analytic + 0.005


class TestOptimalityGap:
    @pytest.fixture(scope="class")
    def result(self, assets):
        from repro.experiments.optimality import (
            OptimalityConfig,
            run_optimality_gap,
        )

        return run_optimality_gap(assets, OptimalityConfig.smoke())

    def test_gap_small(self, result):
        """The learned policy tracks the privileged oracle closely."""
        assert result.mean_gap_c() < 2.0

    def test_il_meets_qos_everywhere(self, result):
        assert result.il_violations() == 0

    def test_all_apps_covered(self, result):
        assert {r[0] for r in result.rows} == {"adi", "canneal", "jacobi-2d"}

    def test_report_renders(self, result):
        assert "mean gap" in result.report()


class TestStability:
    @pytest.fixture(scope="class")
    def result(self, assets):
        from repro.experiments.stability import StabilityConfig, run_stability

        return run_stability(assets, StabilityConfig.smoke())

    def test_il_migrates_less(self, result):
        assert (
            result.get("TOP-IL").migrations_per_min
            <= result.get("TOP-RL").migrations_per_min
        )

    def test_il_fewer_qos_dips(self, result):
        assert (
            result.get("TOP-IL").qos_dip_fraction
            <= result.get("TOP-RL").qos_dip_fraction + 0.02
        )

    def test_metrics_in_valid_ranges(self, result):
        for row in result.rows:
            assert 0.0 <= row.mapping_entropy <= 1.0
            assert 0.0 <= row.qos_dip_fraction <= 1.0
            assert row.temp_jitter_c >= 0.0

    def test_report_renders(self, result):
        assert "migrations/min" in result.report()


class TestAmbientRobustness:
    @pytest.fixture(scope="class")
    def result(self, assets):
        from repro.experiments.robustness import (
            AmbientConfig,
            run_ambient_robustness,
        )

        return run_ambient_robustness(assets, AmbientConfig.smoke())

    def test_no_violations_at_any_ambient(self, result):
        assert result.max_violations() == 0

    def test_rise_over_ambient_nearly_constant(self, result):
        assert result.rise_spread_c() < 2.0

    def test_decisions_ambient_independent(self, result):
        """Same workload, temperature-free features -> same migrations."""
        migrations = {r[4] for r in result.rows}
        assert len(migrations) == 1


class TestRLRewardAblation:
    @pytest.fixture(scope="class")
    def result(self, assets):
        from repro.experiments.ablation import (
            AblationConfig,
            run_rl_reward_ablation,
        )

        return run_rl_reward_ablation(
            assets, AblationConfig.smoke(), penalties=(-50.0, -800.0)
        )

    def test_sweep_covers_requested_penalties(self, result):
        assert {r.penalty for r in result.rows} == {-50.0, -800.0}

    def test_report_renders(self, result):
        assert "violation penalty" in result.report()
