"""The chaos sweep end to end: injected crashes, full recovery, identity.

This is the PR's acceptance gate in test form: a grid swept under
SIGKILLs, torn writes, and ENOSPC must (a) complete with no failed
cells, (b) resume killed cells from their checkpoints rather than
recomputing, and (c) produce results bit-identical to the chaos-free
baseline grid.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.chaos import CHAOS_ENV, reset_engine_cache
from repro.experiments import chaos as chaos_mod
from repro.experiments.chaos import (
    ChaosConfig,
    _effective_plan,
    _resolve_pool,
    run_chaos,
)
from repro.obs.metrics import MetricsRegistry

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def pooled_result(assets):
    """One pooled smoke sweep shared by the assertions below."""
    if not _HAS_FORK:
        pytest.skip("fork start method unavailable")
    return run_chaos(assets, ChaosConfig.smoke(), parallel=True, n_workers=2)


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(n_cells=0)
        with pytest.raises(ValueError):
            ChaosConfig(chaos_plan="bogus")

    def test_serial_plan_drops_kill_kinds(self):
        config = ChaosConfig.smoke()
        serial = _effective_plan(config, pooled=False)
        assert "worker_kill" not in serial
        assert "kill_after_checkpoint" not in serial
        assert "torn_write" in serial
        assert "worker_kill" in _effective_plan(config, pooled=True)


class TestResolvePool:
    """The pool decision must match what run_cells_report will do.

    The dangerous misconfiguration: parallel is allowed but the
    CPU-count default resolves to one worker, run_cells_report collapses
    to the serial path, and the SIGKILL kinds (kept because "pooled")
    execute inline in the supervisor — killing the whole CLI process.
    """

    @pytest.mark.skipif(not _HAS_FORK, reason="fork unavailable")
    def test_one_cpu_box_still_forks(self, monkeypatch):
        monkeypatch.setattr(chaos_mod, "default_workers", lambda: 1)
        assert _resolve_pool(None, None, 3) == (True, 2)

    def test_explicit_single_worker_opts_out_of_pool(self):
        pooled, workers = _resolve_pool(None, 1, 3)
        assert pooled is False
        assert workers == 1

    def test_parallel_false_is_serial(self):
        assert _resolve_pool(False, None, 3) == (False, None)

    def test_single_cell_is_serial(self):
        assert _resolve_pool(None, None, 1) == (False, None)

    @pytest.mark.skipif(not _HAS_FORK, reason="fork unavailable")
    def test_workers_clamped_to_cells(self):
        assert _resolve_pool(None, 8, 3) == (True, 3)


class TestPooledSweep:
    def test_grid_completes_under_chaos(self, pooled_result):
        assert pooled_result.failed_cells == []
        assert len(pooled_result.chaos) == len(pooled_result.baseline)
        # Every first attempt was SIGKILL'd, every second attempt was
        # killed after its first checkpoint: two retries per cell.
        assert pooled_result.retries_total == 2 * len(pooled_result.chaos)
        assert not pooled_result.kill_kinds_skipped

    def test_bit_identical_to_chaos_free_grid(self, pooled_result):
        assert pooled_result.bit_identical()
        for clean, chaotic in zip(
            pooled_result.baseline, pooled_result.chaos
        ):
            assert clean.summary_digest == chaotic.summary_digest
            assert clean.mean_temp_c == chaotic.mean_temp_c

    def test_killed_cells_resumed_from_checkpoints(self, pooled_result):
        recovered = pooled_result.recovered_cells()
        assert recovered, "no cell resumed from a checkpoint"
        # The engine seed is chosen so every cell's retry checkpoint
        # lands intact: all cells recover, from sim-time > 0.
        assert recovered == [r.cell_seed for r in pooled_result.chaos]
        assert all(r.resumed_from_s > 0.0 for r in pooled_result.chaos)
        # Baseline rows never resume (no chaos, no checkpoint dir).
        assert all(r.resumed_from_s == 0.0 for r in pooled_result.baseline)

    def test_report_renders(self, pooled_result):
        text = pooled_result.report()
        assert "bit-identical" in text
        assert "resumed" in text

    def test_env_restored_after_sweep(self, pooled_result):
        # The sweep's env install/uninstall is exception-safe; after it
        # returns the process carries no chaos configuration.
        assert os.environ.get(CHAOS_ENV) is None


class TestSerialSweep:
    def test_serial_path_skips_kill_kinds_but_matches(self, assets):
        reset_engine_cache()
        result = run_chaos(assets, ChaosConfig.smoke(), parallel=False)
        assert result.kill_kinds_skipped
        assert result.failed_cells == []
        assert result.bit_identical()
        assert "kill kinds were dropped" in result.report()


class TestRegistryCounts:
    def test_metrics_flow_to_registry(self, assets):
        if not _HAS_FORK:
            pytest.skip("fork start method unavailable")
        registry = MetricsRegistry()
        result = run_chaos(
            assets,
            ChaosConfig.smoke(),
            parallel=True,
            n_workers=2,
            registry=registry,
        )
        assert result.failed_cells == []
        # Supervisor-side retries are visible in the shared registry;
        # every retry in this sweep is a SIGKILL'd (crashed) attempt.
        assert (
            registry.counter("worker_retries_total", reason="crash").value
            == result.retries_total
        )
