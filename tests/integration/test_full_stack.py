"""Cross-module integration: the four techniques on a shared workload.

These tests assert the paper's qualitative *shape* on a small mixed
workload: GTS/ondemand is hottest with few violations, GTS/powersave is
coolest with many violations, TOP-IL achieves low temperature with no or
few violations, and TOP-RL matches TOP-IL's temperature ballpark but
violates more.
"""

import pytest

from repro.governors.techniques import GTSOndemand, GTSPowersave
from repro.il.technique import TopIL
from repro.rl.technique import TopRL
from repro.utils.rng import RandomSource
from repro.workloads import mixed_workload, run_workload


@pytest.fixture(scope="module")
def comparison(assets):
    """Run all four techniques twice on the same workloads."""
    platform = assets.platform
    models = assets.models()
    qtables = assets.qtables()
    summaries = {}
    for rep in range(2):
        workload = mixed_workload(
            platform,
            n_apps=8,
            arrival_rate_per_s=1.0 / 8.0,
            seed=100 + rep,
            instruction_scale=0.03,
        )
        techniques = [
            TopIL(models[rep % len(models)]),
            TopRL(
                qtable=qtables[rep % len(qtables)].copy(),
                rng=RandomSource(rep).child("rl"),
            ),
            GTSOndemand(),
            GTSPowersave(),
        ]
        for technique in techniques:
            run = run_workload(platform, technique, workload, seed=rep)
            summaries.setdefault(technique.name, []).append(run.summary)
    return summaries


def _mean(values):
    return sum(values) / len(values)


class TestMainShapes:
    def test_all_workloads_complete(self, comparison):
        for name, summaries in comparison.items():
            for s in summaries:
                assert s.n_apps == 8, name

    def test_ondemand_hottest(self, comparison):
        ondemand = _mean([s.mean_temp_c for s in comparison["GTS/ondemand"]])
        for other in ("TOP-IL", "GTS/powersave"):
            assert ondemand > _mean([s.mean_temp_c for s in comparison[other]])

    def test_top_il_cooler_than_ondemand(self, comparison):
        il = _mean([s.mean_temp_c for s in comparison["TOP-IL"]])
        ondemand = _mean([s.mean_temp_c for s in comparison["GTS/ondemand"]])
        assert il < ondemand - 0.5

    def test_powersave_violates_most(self, comparison):
        ps = sum(s.n_qos_violations for s in comparison["GTS/powersave"])
        il = sum(s.n_qos_violations for s in comparison["TOP-IL"])
        assert ps > il

    def test_top_il_fewest_violations_among_thermal_savers(self, comparison):
        il = sum(s.n_qos_violations for s in comparison["TOP-IL"])
        rl = sum(s.n_qos_violations for s in comparison["TOP-RL"])
        ps = sum(s.n_qos_violations for s in comparison["GTS/powersave"])
        assert il <= rl
        assert il <= ps
        assert il <= 1  # near-zero violations for TOP-IL

    def test_rl_migrates_more_than_il(self, comparison):
        """Instability: continual exploration causes extra migrations."""
        il = sum(s.migrations for s in comparison["TOP-IL"])
        rl = sum(s.migrations for s in comparison["TOP-RL"])
        assert rl > il

    def test_linux_baselines_pay_no_manager_overhead(self, comparison):
        for name in ("GTS/ondemand", "GTS/powersave"):
            assert all(s.overhead_total_s == 0.0 for s in comparison[name])

    def test_top_overhead_negligible(self, comparison):
        for name in ("TOP-IL", "TOP-RL"):
            for s in comparison[name]:
                assert s.overhead_fraction < 0.02

    def test_gts_prefers_big_cluster(self, comparison):
        for s in comparison["GTS/ondemand"]:
            usage = s.cpu_time_by_vf
            assert usage.cluster_total("big") > usage.cluster_total("LITTLE")

    def test_powersave_runs_only_lowest_levels(self, comparison):
        for s in comparison["GTS/powersave"]:
            for (cluster, freq), seconds in s.cpu_time_by_vf.seconds.items():
                if seconds > 0:
                    assert freq < 0.7e9
