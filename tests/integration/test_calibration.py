"""End-to-end calibration checks against the paper's numeric anchors.

The substitution argument in DESIGN.md rests on the substrate reproducing
specific operating points the paper reports.  These tests pin them down so
future model changes cannot silently drift away from the paper.
"""

import dataclasses

import pytest

from repro.apps import get_app
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING, PASSIVE_COOLING


def _steady(platform, cooling, placements, vf_idx, duration=200.0):
    """Final sensor temp for fixed placements at fixed VF indices."""
    sim = Simulator(
        platform,
        cooling,
        config=SimConfig(dt_s=0.02, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )
    for name, idx in vf_idx.items():
        sim.set_vf_level(name, platform.cluster(name).vf_table[idx])
    assignment = {}
    for core, app_name in placements.items():
        app = dataclasses.replace(
            get_app(app_name), total_instructions=1e15
        )
        pid = sim.submit(app, 1.0, 0.0)
        assignment[pid] = core
    sim.placement_policy = lambda s, p: assignment[p.pid]
    sim.run_for(duration)
    return sim


class TestThermalAnchors:
    def test_idle_temperature_range(self, platform):
        """Idle board sits a few degrees above the 25 C ambient."""
        sim = _steady(platform, FAN_COOLING, {}, {})
        assert 26.0 < sim.sensor_temp_c() < 34.0

    def test_paper_trace_anchor_high_vf(self, platform):
        """Fig. 2's trace tables: ~7 busy cores at 1.8/1.5 GHz reach the
        mid-50s C with the fan (the paper reports 56.1 C)."""
        placements = {c: "seidel-2d" for c in (0, 1, 2, 3, 4, 5, 7)}
        sim = _steady(
            platform, FAN_COOLING, placements, {LITTLE: 6, BIG: 4}
        )
        assert 50.0 < sim.sensor_temp_c() < 68.0

    def test_paper_trace_anchor_low_vf(self, platform):
        """Same load at 0.5/0.7 GHz: the paper reports 35.8 C."""
        placements = {c: "seidel-2d" for c in (0, 1, 2, 3, 4, 5, 7)}
        sim = _steady(
            platform, FAN_COOLING, placements, {LITTLE: 0, BIG: 0}
        )
        assert 30.0 < sim.sensor_temp_c() < 40.0

    def test_passive_cooling_penalty(self, platform):
        """Removing the fan adds roughly 10 C at a mid-load point."""
        placements = {c: "seidel-2d" for c in (0, 1, 2, 3, 4, 5, 7)}
        fan = _steady(platform, FAN_COOLING, placements, {LITTLE: 6, BIG: 4})
        passive = _steady(
            platform, PASSIVE_COOLING, placements, {LITTLE: 6, BIG: 4},
            duration=400.0,
        )
        delta = passive.sensor_temp_c() - fan.sensor_temp_c()
        assert 5.0 < delta < 25.0

    def test_full_load_without_fan_reaches_dtm_territory(self, platform):
        """GTS/ondemand throttles without the fan in the paper; sustained
        full load must approach the 85 C trigger."""
        placements = {c: "swaptions" for c in range(8)}
        sim = _steady(
            platform,
            PASSIVE_COOLING,
            placements,
            {LITTLE: 6, BIG: 8},
            duration=500.0,
        )
        assert sim.sensor_temp_c() > 75.0 or sim.dtm_throttle_events > 0


class TestPerformanceAnchors:
    def test_adi_vf_requirements(self, platform):
        """Fig. 1: adi at 30 % of big-peak needs ~1.8 GHz LITTLE but only
        ~0.7 GHz big."""
        adi = get_app("adi")
        target = 0.3 * adi.max_ips(BIG, platform.cluster(BIG).vf_table)
        little = adi.min_frequency_for(
            LITTLE, platform.cluster(LITTLE).vf_table, target
        )
        big = adi.min_frequency_for(BIG, platform.cluster(BIG).vf_table, target)
        assert little.frequency_hz == pytest.approx(1.844e9, rel=0.01)
        assert big.frequency_hz == pytest.approx(0.682e9, rel=0.01)

    def test_seidel_vf_requirements(self, platform):
        """Fig. 1: seidel-2d needs ~1.2 GHz LITTLE / ~1.0 GHz big."""
        seidel = get_app("seidel-2d")
        target = 0.3 * seidel.max_ips(BIG, platform.cluster(BIG).vf_table)
        little = seidel.min_frequency_for(
            LITTLE, platform.cluster(LITTLE).vf_table, target
        )
        big = seidel.min_frequency_for(BIG, platform.cluster(BIG).vf_table, target)
        assert little.frequency_hz == pytest.approx(1.018e9, rel=0.01)
        assert big.frequency_hz == pytest.approx(1.018e9, rel=0.01)

    def test_mips_ranges_match_paper_tables(self, platform):
        """Fig. 2's trace tables show hundreds of MIPS for seidel-2d."""
        seidel = get_app("seidel-2d")
        low = seidel.ips(LITTLE, 0.509e9)
        high = seidel.ips(BIG, 2.362e9)
        assert 50e6 < low < 600e6
        assert 0.8e9 < high < 3e9
