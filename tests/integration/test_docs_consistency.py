"""Docs-consistency gate: the observability guide and the code agree.

The metrics glossary in ``docs/observability.md`` must list **exactly**
the metric families declared in ``repro.obs.metrics.METRIC_SPECS`` —
no undocumented metrics, no documented ghosts.  The glossary rows are
parsed from the markdown table in the "## Metrics glossary" section
(first cell, backticked).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.config import DEFAULT_TRACE_DIR, TRACE_DIR_ENV, TRACE_ENV
from repro.obs.metrics import METRIC_SPECS

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "observability.md"


def _glossary_section(text: str) -> str:
    match = re.search(
        r"^## Metrics glossary\n(.*?)(?=^## )", text, re.M | re.S
    )
    assert match, "docs/observability.md lost its '## Metrics glossary' section"
    return match.group(1)


def _documented_metric_names(text: str) -> set:
    section = _glossary_section(text)
    return set(re.findall(r"^\| `([a-z0-9_]+)` \|", section, re.M))


def test_glossary_matches_metric_specs():
    text = DOC_PATH.read_text(encoding="utf-8")
    documented = _documented_metric_names(text)
    declared = set(METRIC_SPECS)
    missing = declared - documented
    ghosts = documented - declared
    assert not missing, (
        f"metrics declared in METRIC_SPECS but absent from the glossary in "
        f"docs/observability.md: {sorted(missing)}"
    )
    assert not ghosts, (
        f"metrics documented in docs/observability.md but not declared in "
        f"METRIC_SPECS: {sorted(ghosts)}"
    )


def test_glossary_rows_state_kind_and_unit():
    """Each glossary row's kind column matches the declared spec."""
    text = DOC_PATH.read_text(encoding="utf-8")
    section = _glossary_section(text)
    rows = re.findall(
        r"^\| `([a-z0-9_]+)` \| (\w+) \| ([^|]+) \|", section, re.M
    )
    assert rows, "glossary table rows not parseable"
    for name, kind, unit in rows:
        spec = METRIC_SPECS[name]
        assert kind == spec.kind, f"{name}: doc says {kind}, code {spec.kind}"
        assert unit.strip() == spec.unit, (
            f"{name}: doc says unit {unit.strip()!r}, code {spec.unit!r}"
        )


def test_doc_names_the_env_switches():
    text = DOC_PATH.read_text(encoding="utf-8")
    for token in (TRACE_ENV, TRACE_DIR_ENV, DEFAULT_TRACE_DIR):
        assert token in text, f"docs/observability.md does not mention {token}"


def test_readme_points_at_tier1_and_examples():
    repo_root = DOC_PATH.parents[1]
    readme = (repo_root / "README.md").read_text(encoding="utf-8")
    assert "PYTHONPATH=src python -m pytest -x -q" in readme
    assert "examples/README.md" in readme
    assert "docs/observability.md" in readme


def test_examples_readme_lists_trace_explorer():
    repo_root = DOC_PATH.parents[1]
    examples_readme = (repo_root / "examples" / "README.md").read_text(
        encoding="utf-8"
    )
    assert "trace_explorer.py" in examples_readme
    assert "platform_zoo.py" in examples_readme


class TestPlatformsDoc:
    """``docs/platforms.md`` stays in lockstep with the platform registry."""

    @property
    def text(self) -> str:
        path = DOC_PATH.parents[0] / "platforms.md"
        assert path.exists(), "docs/platforms.md is missing"
        return path.read_text(encoding="utf-8")

    def test_documents_every_registered_platform(self):
        from repro.platform import platform_names

        text = self.text
        for name in platform_names():
            assert f"`{name}`" in text, (
                f"registered platform {name!r} is absent from "
                f"docs/platforms.md — document it in the stock table"
            )

    def test_documents_schema_sections(self):
        text = self.text
        for anchor in (
            "PlatformSpec",
            "ClusterSpec",
            "floorplan contract",
            "Fingerprinting",
            "register_platform",
            "perf_like",
        ):
            assert anchor in text, (
                f"docs/platforms.md lost its {anchor!r} coverage"
            )

    def test_indexed_from_readme_and_architecture(self):
        repo_root = DOC_PATH.parents[1]
        readme = (repo_root / "README.md").read_text(encoding="utf-8")
        architecture = (repo_root / "docs" / "architecture.md").read_text(
            encoding="utf-8"
        )
        assert "docs/platforms.md" in readme
        assert "platforms.md" in architecture

    def test_cli_surface_documented(self):
        text = self.text
        assert "--platform" in text
        assert "platform list" in text
        assert "platform show" in text
