"""Smoke-run the example scripts (the fast ones) as subprocesses.

Examples are part of the public deliverable; these tests keep them
runnable as the library evolves.  Slow examples (quickstart,
compare_techniques, design_time_pipeline, run_timeline) are exercised
indirectly through the APIs they call.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def _run(script, *args, timeout=420):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_app_characterization(self):
        out = _run("app_characterization.py", "--app", "adi")
        assert "cheapest feasible point: big" in out

    def test_npu_acceleration(self):
        out = _run("npu_acceleration.py", "--max-apps", "4")
        assert "migration (NPU)" in out
        assert "migration (CPU)" in out

    def test_thermal_playground(self):
        out = _run(
            "thermal_playground.py", "--app", "adi", "--duration", "15"
        )
        assert "LITTLE" in out and "big" in out

    def test_multi_cluster(self):
        out = _run("multi_cluster.py")
        assert "prime" in out
        assert "QoS" in out

    def test_platform_zoo(self):
        out = _run("platform_zoo.py", "--n-apps", "3", "--duration", "10")
        for name in ("hikey970", "tricluster", "snuca-grid"):
            assert name in out
        assert "headroom" in out

    def test_trace_explorer(self, tmp_path):
        out = _run("trace_explorer.py", "--out-dir", str(tmp_path))
        assert "top-5 hottest controller intervals" in out
        assert "events recorded" in out
        for artifact in (
            "trace_explorer.trace.json",
            "trace_explorer.events.jsonl",
            "trace_explorer.manifest.json",
        ):
            assert (tmp_path / artifact).exists()

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "compare_techniques.py",
            "design_time_pipeline.py",
            "run_timeline.py",
        ],
    )
    def test_help_works_everywhere(self, script):
        out = _run(script, "--help", timeout=60)
        assert "usage" in out.lower()
