"""End-to-end resilience sweep: degradation paths, salvage, determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.resilience import (
    ResilienceConfig,
    fault_plan_for_rate,
    run_resilience,
)
from repro.obs.metrics import MetricsRegistry
from repro.utils.floatcmp import is_zero


@pytest.fixture(scope="module")
def smoke_result(assets):
    """One serial smoke sweep shared by the assertions below."""
    return run_resilience(assets, ResilienceConfig.smoke(), parallel=False)


class TestFaultPlanForRate:
    def test_rate_zero_is_zero_plan(self):
        plan = fault_plan_for_rate(0.0)
        assert plan.is_zero()
        # All kinds stay present so the draw pattern matches faulty rows.
        assert len(plan.specs) == 6

    def test_rates_scale_and_clamp(self):
        plan = fault_plan_for_rate(0.3)
        rates = {spec.kind: spec.rate for spec in plan.specs}
        assert rates["sensor_dropout"] == pytest.approx(0.3)
        assert rates["sensor_stuck"] == pytest.approx(0.075)
        assert rates["deadline_overrun"] == 1.0  # clamped


class TestResilienceSweep:
    def test_completes_without_failed_cells(self, smoke_result):
        assert smoke_result.failed_cells == []
        assert len(smoke_result.rows) == 2

    def test_baseline_row_is_clean(self, smoke_result):
        baseline = smoke_result.baseline_row()
        assert baseline is not None
        assert is_zero(baseline.rate)
        assert baseline.paths_exercised() == []
        assert not any(
            value
            for key, value in baseline.counters.items()
            if key.startswith("injected.")
        )

    def test_faulty_row_degrades_gracefully(self, smoke_result):
        faulty = [r for r in smoke_result.rows if not is_zero(r.rate)]
        assert faulty, "smoke sweep must include a non-zero rate"
        row = faulty[0]
        injected = sum(
            value
            for key, value in row.counters.items()
            if key.startswith("injected.")
        )
        assert injected > 0
        # The run completed despite faults: that IS graceful degradation.
        assert row.peak_temp_c > 0

    def test_all_degradation_paths_exercised(self, smoke_result):
        """Acceptance: one smoke sweep hits CPU fallback, safe-mode DVFS,
        and the DTM fail-safe throttle."""
        assert smoke_result.all_paths_exercised(), (
            "missing paths; exercised per row: "
            + "; ".join(
                f"rate {row.rate:.2f}: {row.paths_exercised()}"
                for row in smoke_result.rows
            )
        )

    def test_report_renders(self, smoke_result):
        text = smoke_result.report()
        assert "fault rate" in text
        assert "failed cells: none" in text


class TestDeterminism:
    def test_serial_rerun_is_identical(self, assets, smoke_result):
        again = run_resilience(assets, ResilienceConfig.smoke(), parallel=False)
        assert [dataclasses.astuple(r) for r in again.rows] == [
            dataclasses.astuple(r) for r in smoke_result.rows
        ]

    def test_parallel_matches_serial(self, assets, smoke_result):
        registry = MetricsRegistry()
        pooled = run_resilience(
            assets,
            ResilienceConfig.smoke(),
            parallel=True,
            n_workers=2,
            registry=registry,
        )
        assert pooled.failed_cells == []
        assert [dataclasses.astuple(r) for r in pooled.rows] == [
            dataclasses.astuple(r) for r in smoke_result.rows
        ]
