"""Platform-registry contract: every registered platform must simulate.

Registering a platform is a promise: the spec builds, the thermal network
solves, the kernel runs a smoke workload end to end under the runtime
sanitizer (``REPRO_SANITIZE=1``) without NaN or invariant violations, and
the mixed-workload experiment completes with its platform-appropriate
technique subset.  New zoo entries get this coverage for free via the
``platform_names()`` parametrization.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.main_mixed import (
    MainMixedConfig,
    run_main_mixed,
    supported_techniques,
)
from repro.platform import get_platform, get_spec, platform_names
from repro.thermal import FAN_COOLING
from repro.utils.sanitize import SANITIZE_ENV
from repro.workloads.generator import mixed_workload
from repro.workloads.runner import run_workload


class SafePolicy:
    """Minimal no-op management technique: default placement, fixed VF."""

    name = "noop"

    def attach(self, sim) -> None:  # pragma: no cover - interface hook
        pass


@pytest.mark.parametrize("name", platform_names())
def test_platform_simulates_under_sanitizer(name, monkeypatch):
    """Smoke workload on each platform with per-step invariant checks on."""
    monkeypatch.setenv(SANITIZE_ENV, "1")
    platform = get_platform(name)
    workload = mixed_workload(
        platform,
        n_apps=3,
        arrival_rate_per_s=0.5,
        seed=7,
        instruction_scale=0.005,
    )
    run = run_workload(
        platform, SafePolicy(), workload, cooling=FAN_COOLING, seed=7
    )
    summary = run.summary
    assert math.isfinite(summary.mean_temp_c)
    assert math.isfinite(summary.peak_temp_c)
    assert summary.mean_temp_c > platform.ambient_temp_c - 1.0
    assert all(math.isfinite(t) for t in run.trace.sensor_temp_c)
    assert all(math.isfinite(p) for p in run.trace.total_power_w)


@pytest.mark.parametrize("name", platform_names())
def test_platform_completes_micro_main_mixed(name, tmp_path):
    """The mixed-workload grid completes on every registered platform with
    its supported technique subset (TOP-IL everywhere; GTS and TOP-RL only
    on big.LITTLE topologies)."""
    platform = get_platform(name)
    assets = AssetStore(
        platform,
        AssetConfig(
            n_scenarios=4,
            vf_levels_per_cluster=2,
            max_aoi_candidates=2,
            n_models=1,
            rl_episodes=1,
            cache_dir=str(tmp_path / "cache"),
        ),
    )
    config = MainMixedConfig(
        n_apps=3,
        arrival_rates=(1.0 / 4.0,),
        repetitions=1,
        coolings=(FAN_COOLING,),
        instruction_scale=0.01,
    )
    result = run_main_mixed(assets, config, parallel=False)
    expected = supported_techniques(platform, config.techniques)
    assert tuple(a.technique for a in result.aggregates) == expected
    assert set(result.skipped_techniques) == (
        set(config.techniques) - set(expected)
    )
    spec = get_spec(name)
    if not ({"big", "LITTLE"} <= set(spec.cluster_names)):
        assert result.skipped_techniques  # non-big.LITTLE must skip some
    for agg in result.aggregates:
        assert math.isfinite(agg.mean_temp_c)
        assert agg.mean_temp_c > platform.ambient_temp_c - 1.0
