"""Incremental experiment scheduling through the artifact store.

The acceptance contract of the store redesign: a second run of the same
grid against a warm store recomputes **zero** unchanged cells (verified
through the store's hit/miss counters) and reproduces the cold run's
numbers byte-for-byte, and a deliberately corrupted entry is evicted and
transparently recomputed, never trusted.
"""

from __future__ import annotations

import os

from repro.experiments.assets import AssetConfig, AssetStore
from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.thermal import FAN_COOLING

#: GTS-only techniques: the grid needs no trained models, so the test
#: isolates the *cell* store path from the asset store path.
_CONFIG = MainMixedConfig(
    n_apps=3,
    arrival_rates=(1.0 / 6.0,),
    repetitions=1,
    coolings=(FAN_COOLING,),
    instruction_scale=0.01,
    techniques=("GTS/ondemand", "GTS/powersave"),
)
_N_CELLS = 2


def _fresh_assets(cache_dir):
    # A new AssetStore per run: the ArtifactStore instance (and its
    # hit/miss counters) starts cold even though the directory is warm.
    return AssetStore(config=AssetConfig.smoke(cache_dir=str(cache_dir)))


def _render(result):
    return result.report() + "\n" + result.frequency_usage_report(
        cooling="fan"
    )


class TestWarmGridResume:
    def test_warm_rerun_recomputes_zero_cells_bit_identical(self, tmp_path):
        cold_assets = _fresh_assets(tmp_path)
        cold = run_main_mixed(cold_assets, _CONFIG, parallel=False)
        cold_stats = cold_assets.artifacts.stats()
        assert cold_stats.misses == _N_CELLS
        assert cold_stats.hits == 0

        warm_assets = _fresh_assets(tmp_path)
        warm = run_main_mixed(warm_assets, _CONFIG, parallel=False)
        warm_stats = warm_assets.artifacts.stats()
        assert warm_stats.hits == _N_CELLS  # every cell answered from disk
        assert warm_stats.misses == 0  # zero recomputed
        assert warm_stats.evicted_corrupt == 0

        assert _render(warm) == _render(cold)  # byte-identical summary
        assert warm.raw == cold.raw  # exact floats, not approx

    def test_corrupted_cell_evicted_and_recomputed(self, tmp_path):
        cold = run_main_mixed(_fresh_assets(tmp_path), _CONFIG, parallel=False)

        cell_dir = tmp_path / "cell" / "main_mixed"
        payloads = sorted(cell_dir.glob("*.pkl"))
        assert len(payloads) == _N_CELLS
        with open(payloads[0], "ab") as fh:
            fh.write(b"BITROT")

        assets = _fresh_assets(tmp_path)
        again = run_main_mixed(assets, _CONFIG, parallel=False)
        stats = assets.artifacts.stats()
        assert stats.evicted_corrupt == 1
        assert stats.misses == 1  # only the corrupted cell recomputed
        assert stats.hits == _N_CELLS - 1
        assert _render(again) == _render(cold)

        # The rebuilt entry is trusted on the next pass.
        healed_assets = _fresh_assets(tmp_path)
        run_main_mixed(healed_assets, _CONFIG, parallel=False)
        assert healed_assets.artifacts.stats().hits == _N_CELLS

    def test_grid_extension_reuses_existing_cells(self, tmp_path):
        """Grid shape stays out of the key: adding a repetition only
        computes the new cells."""
        run_main_mixed(_fresh_assets(tmp_path), _CONFIG, parallel=False)

        import dataclasses

        extended = dataclasses.replace(_CONFIG, repetitions=2)
        assets = _fresh_assets(tmp_path)
        run_main_mixed(assets, extended, parallel=False)
        stats = assets.artifacts.stats()
        assert stats.hits == _N_CELLS  # rep-0 cells reused
        assert stats.misses == _N_CELLS  # rep-1 cells are new


class TestFaultEnvIsolation:
    def test_faulted_run_never_reads_clean_cells(self, tmp_path, monkeypatch):
        from repro.faults import FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        run_main_mixed(_fresh_assets(tmp_path), _CONFIG, parallel=False)

        monkeypatch.setenv(FAULTS_ENV, "sensor_dropout:0.0")
        assets = _fresh_assets(tmp_path)
        run_main_mixed(assets, _CONFIG, parallel=False)
        stats = assets.artifacts.stats()
        assert stats.hits == 0  # different fault env -> different keys
        assert stats.misses == _N_CELLS
        assert os.path.isdir(tmp_path / "cell" / "main_mixed")
