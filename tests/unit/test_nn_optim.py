"""Optimizer, LR schedule, and loss."""

import numpy as np
import pytest

from repro.nn.layers import build_mlp
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, ExponentialDecay
from repro.utils.rng import RandomSource


class TestMSELoss:
    def test_zero_for_perfect_prediction(self):
        loss, grad = MSELoss()(np.ones((2, 3)), np.ones((2, 3)))
        assert loss == 0.0
        assert np.all(grad == 0.0)

    def test_value_matches_definition(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, _ = MSELoss()(pred, target)
        assert loss == pytest.approx((1 + 4) / 2)

    def test_gradient_direction(self):
        pred = np.array([[2.0]])
        target = np.array([[1.0]])
        _, grad = MSELoss()(pred, target)
        assert grad[0, 0] > 0  # reduce prediction to reduce loss

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MSELoss()(np.ones((2, 2)), np.ones((2, 3)))


class TestExponentialDecay:
    def test_paper_schedule(self):
        """lr = 0.01 * 0.95^epoch (Sec. 4.3)."""
        sched = ExponentialDecay(0.01, 0.95)
        assert sched.lr_at(0) == pytest.approx(0.01)
        assert sched.lr_at(10) == pytest.approx(0.01 * 0.95**10)

    def test_monotone_decreasing(self):
        sched = ExponentialDecay()
        lrs = [sched.lr_at(e) for e in range(20)]
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDecay().lr_at(-1)


class TestAdam:
    def test_minimizes_quadratic(self):
        """Adam drives a simple quadratic towards its minimum at 3."""
        x = np.array([10.0])
        grad = np.zeros(1)
        adam = Adam()
        for _ in range(500):
            grad[:] = 2 * (x - 3.0)
            adam.step([("x", x, grad)], lr=0.1)
        assert x[0] == pytest.approx(3.0, abs=1e-2)

    def test_trains_small_network(self):
        rng = RandomSource(0)
        model = build_mlp(2, 1, 1, 16, rng)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] + 2 * x[:, 1:]) * 0.5
        loss_fn = MSELoss()
        adam = Adam()
        first_loss = None
        for _ in range(200):
            model.zero_grad()
            loss, grad = loss_fn(model.forward(x), y)
            if first_loss is None:
                first_loss = loss
            model.backward(grad)
            adam.step(model.params(), lr=0.01)
        final_loss, _ = loss_fn(model.forward(x), y)
        assert final_loss < 0.05 * first_loss

    def test_reset_clears_state(self):
        adam = Adam()
        x = np.array([1.0])
        g = np.array([1.0])
        adam.step([("x", x, g)], lr=0.1)
        adam.reset()
        assert adam._step == 0

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam().step([], lr=0.0)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.5)
