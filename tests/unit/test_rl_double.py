"""Double Q-learning table."""

import numpy as np
import pytest

from repro.rl.double import DoubleQTable
from repro.utils.rng import RandomSource


class TestDoubleQTable:
    def test_interface_compatible_with_policy(self):
        table = DoubleQTable(8, 4, rng=RandomSource(0))
        assert table.n_actions == 4
        assert table.best_action(0) in range(4)
        assert table.q(0, 0) == 0.0

    def test_update_touches_exactly_one_table(self):
        table = DoubleQTable(4, 2, rng=RandomSource(0))
        table.update(0, 1, 10.0, 1)
        changed_a = np.any(table.table_a.values != 0.0)
        changed_b = np.any(table.table_b.values != 0.0)
        assert changed_a != changed_b  # exclusive-or

    def test_combined_values_are_sum(self):
        table = DoubleQTable(2, 2, rng=RandomSource(0))
        table.table_a.values[0, 0] = 1.0
        table.table_b.values[0, 0] = 2.0
        assert table.q(0, 0) == pytest.approx(3.0)

    def test_converges_on_self_loop(self):
        table = DoubleQTable(1, 1, learning_rate=0.2, discount=0.5,
                             rng=RandomSource(1))
        for _ in range(3000):
            table.update(0, 0, 1.0, 0)
        # Fixed point of the combined value: each table -> r/(1-gamma).
        assert table.q(0, 0) == pytest.approx(2 * 1.0 / (1 - 0.5), rel=0.05)

    def test_copy_is_independent(self):
        table = DoubleQTable(2, 2, rng=RandomSource(0))
        clone = table.copy()
        table.update(0, 0, 5.0, 1)
        assert np.all(clone.values == 0.0)

    def test_update_counter(self):
        table = DoubleQTable(2, 2, rng=RandomSource(0))
        for _ in range(7):
            table.update(0, 0, 1.0, 1)
        assert table.updates == 7

    def test_policy_accepts_double_table(self, platform):
        import dataclasses

        from repro.apps import get_app
        from repro.rl.policy import TopRLMigrationPolicy
        from repro.rl.state import N_STATES
        from repro.sim import SimConfig, Simulator
        from repro.thermal import FAN_COOLING

        sim = Simulator(platform, FAN_COOLING,
                        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
                        sensor_noise_std_c=0.0)
        table = DoubleQTable(N_STATES, 8, rng=RandomSource(0))
        policy = TopRLMigrationPolicy(qtable=table, rng=RandomSource(1))
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        sim.submit(app, 1e8, 0.0)
        sim.run_for(0.3)
        policy(sim)
        sim.run_for(0.5)
        policy(sim)
        assert table.updates >= 1
