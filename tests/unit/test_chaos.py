"""The chaos layer: plan parsing, engine determinism, injection seams."""

import errno

import pytest

from repro.chaos import (
    CHAOS_DIR_ENV,
    CHAOS_ENV,
    CHAOS_KINDS,
    CHAOS_SEED_ENV,
    ChaosEngine,
    ChaosPlan,
    ChaosSpec,
    engine_from_env,
    reset_engine_cache,
)
from repro.obs.metrics import MetricsRegistry


class TestChaosSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSpec(kind="meteor_strike", rate=0.1)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            ChaosSpec(kind="torn_write", rate=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(kind="torn_write", rate=-0.1)

    def test_attempt_cap(self):
        spec = ChaosSpec(kind="worker_kill", rate=1.0, max_attempt=2)
        assert spec.applies_to_attempt(1)
        assert spec.applies_to_attempt(2)
        assert not spec.applies_to_attempt(3)
        unlimited = ChaosSpec(kind="worker_kill", rate=1.0, max_attempt=None)
        assert unlimited.applies_to_attempt(99)
        with pytest.raises(ValueError):
            ChaosSpec(kind="worker_kill", rate=1.0, max_attempt=0)


class TestChaosPlan:
    def test_parse_describe_roundtrip(self):
        text = "store_write_error:0.3,torn_write:0.5,worker_kill:1,enospc:0.2@*"
        plan = ChaosPlan.parse(text, seed=9)
        assert plan.describe() == text
        again = ChaosPlan.parse(plan.describe(), seed=9)
        assert again == plan

    def test_parse_attempt_caps(self):
        plan = ChaosPlan.parse("worker_kill:1@2,slow_cell:0.5@*")
        assert plan.spec_for("worker_kill").max_attempt == 2
        assert plan.spec_for("slow_cell").max_attempt is None
        # Default cap is 1: retries succeed unless the plan says otherwise.
        assert ChaosPlan.parse("worker_kill:1").spec_for(
            "worker_kill"
        ).max_attempt == 1

    def test_parse_rejects_garbage(self):
        for bad in ("nonsense", "torn_write", "torn_write:x", "torn_write:1@y"):
            with pytest.raises(ValueError):
                ChaosPlan.parse(bad)

    def test_empty_text_is_zero_plan(self):
        plan = ChaosPlan.parse("")
        assert plan.specs == ()
        assert plan.is_zero()

    def test_every_documented_kind_parses(self):
        text = ",".join(f"{kind}:0.1" for kind in CHAOS_KINDS)
        plan = ChaosPlan.parse(text)
        assert len(plan.specs) == len(CHAOS_KINDS)

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert ChaosPlan.from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "torn_write:0.5")
        monkeypatch.setenv(CHAOS_SEED_ENV, "4")
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        plan = ChaosPlan.from_env()
        assert plan.seed == 4
        assert plan.scratch_dir == str(tmp_path)
        assert plan.spec_for("torn_write").rate == 0.5


class TestChaosEngineDeterminism:
    def _plan(self):
        return ChaosPlan.parse(
            "store_read_error:0.4,store_write_error:0.4,torn_write:0.3",
            seed=11,
        )

    def _read_decisions(self, engine, n=64):
        out = []
        for _ in range(n):
            try:
                engine.before_payload_read()
                out.append(False)
            except OSError:
                out.append(True)
        return out

    def test_same_seed_same_decisions(self):
        a = self._read_decisions(ChaosEngine(self._plan()))
        b = self._read_decisions(ChaosEngine(self._plan()))
        assert a == b
        assert any(a) and not all(a)

    def test_different_seed_different_decisions(self):
        a = self._read_decisions(ChaosEngine(self._plan()))
        b = self._read_decisions(ChaosEngine(self._plan().with_seed(12)))
        assert a != b

    def test_streams_are_independent_per_kind(self):
        """Draining one kind's stream never shifts another's decisions."""
        reference = self._read_decisions(ChaosEngine(self._plan()))
        engine = ChaosEngine(self._plan())
        for _ in range(100):  # drain the write streams heavily first
            try:
                engine.before_payload_write()
            except OSError:
                pass
        assert self._read_decisions(engine) == reference

    def test_cell_decisions_keyed_not_sequential(self):
        """(index, attempt) decisions are scheduling-order independent."""
        plan = ChaosPlan.parse("worker_kill:0.5@*", seed=7)
        spec = plan.spec_for("worker_kill")
        forward = [
            ChaosEngine(plan)._roll_cell(spec, i, 1) for i in range(16)
        ]
        engine = ChaosEngine(plan)
        backward = [
            engine._roll_cell(spec, i, 1) for i in reversed(range(16))
        ]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)

    def test_attempt_cap_blocks_roll(self):
        plan = ChaosPlan.parse("worker_kill:1")
        engine = ChaosEngine(plan)
        spec = plan.spec_for("worker_kill")
        assert engine._roll_cell(spec, 0, 1)
        assert not engine._roll_cell(spec, 0, 2)

    def test_zero_rate_never_triggers_but_still_draws(self):
        plan = ChaosPlan.parse("store_read_error:0")
        engine = ChaosEngine(plan)
        assert not any(self._read_decisions(engine, n=32))
        assert engine.event_counts == {}


class TestChaosEngineSeams:
    def test_write_seam_raises_transient_and_enospc(self):
        plan = ChaosPlan.parse("enospc:1")
        with pytest.raises(OSError) as info:
            ChaosEngine(plan).before_payload_write()
        assert info.value.errno == errno.ENOSPC
        plan = ChaosPlan.parse("store_write_error:1")
        with pytest.raises(OSError) as info:
            ChaosEngine(plan).before_payload_write()
        assert info.value.errno == errno.EIO

    def test_torn_write_truncates(self, tmp_path):
        victim = tmp_path / "payload.bin"
        victim.write_bytes(b"x" * 100)
        engine = ChaosEngine(ChaosPlan.parse("torn_write:1"))
        engine.mangle_written_payload(str(victim))
        assert victim.stat().st_size == 50
        assert engine.event_counts["torn_write"] == 1

    def test_corrupt_checksum_flips_first_byte(self, tmp_path):
        victim = tmp_path / "payload.bin"
        victim.write_bytes(b"\x41rest")
        engine = ChaosEngine(ChaosPlan.parse("corrupt_checksum:1"))
        engine.mangle_written_payload(str(victim))
        assert victim.read_bytes() == b"\xberest"

    def test_kill_after_checkpoint_inert_without_scratch_dir(self):
        engine = ChaosEngine(ChaosPlan.parse("kill_after_checkpoint:1"))
        engine.after_checkpoint_write("tok")  # must not SIGKILL us
        assert engine.event_counts == {}

    def test_metrics_count_injections(self, tmp_path):
        registry = MetricsRegistry()
        engine = ChaosEngine(
            ChaosPlan.parse("torn_write:1"), registry=registry
        )
        victim = tmp_path / "p.bin"
        victim.write_bytes(b"0123456789")
        engine.mangle_written_payload(str(victim))
        assert (
            registry.counter("chaos_injected_total", kind="torn_write").value
            == 1
        )


class TestEngineFromEnv:
    def test_none_without_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        reset_engine_cache()
        assert engine_from_env() is None

    def test_memoized_per_env(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "torn_write:0.5")
        monkeypatch.setenv(CHAOS_SEED_ENV, "2")
        monkeypatch.delenv(CHAOS_DIR_ENV, raising=False)
        reset_engine_cache()
        first = engine_from_env()
        assert first is engine_from_env()  # same env -> same engine
        monkeypatch.setenv(CHAOS_SEED_ENV, "3")
        second = engine_from_env()
        assert second is not first
        assert second.plan.seed == 3
        reset_engine_cache()
        assert engine_from_env() is not second
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        monkeypatch.delenv(CHAOS_SEED_ENV, raising=False)
        reset_engine_cache()
