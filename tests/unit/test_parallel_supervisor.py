"""Supervised worker pool: crash/hang recovery, salvage, clamping."""

import os
import signal
import time

import pytest

from repro.experiments.parallel import (
    GridCellError,
    run_cells,
    run_cells_report,
)
from repro.obs.metrics import MetricsRegistry


def _square(cell):
    return cell * cell


def _fail_odd(cell):
    if cell % 2:
        raise ValueError(f"odd cell {cell}")
    return cell


def _crash_once(cell):
    """SIGKILL the worker on the first attempt at each cell; succeed after."""
    sentinel_dir, value = cell
    marker = os.path.join(sentinel_dir, f"crashed-{value}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _crash_always(cell):
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_once(cell):
    """Hang far past the cell timeout on the first attempt; then succeed."""
    sentinel_dir, value = cell
    marker = os.path.join(sentinel_dir, f"hung-{value}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        time.sleep(120.0)
    return value + 100


class TestSerialContract:
    def test_results_in_cell_order(self):
        assert run_cells([3, 1, 2], _square, parallel=False) == [9, 1, 4]

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="odd cell 1"):
            run_cells([0, 1, 2], _fail_odd, parallel=False)

    def test_serial_report_salvages(self):
        report = run_cells_report([0, 1, 2, 3], _fail_odd, parallel=False)
        assert report.results == [0, None, 2, None]
        assert [f.index for f in report.failed_cells] == [1, 3]
        assert all(f.reason == "error" for f in report.failed_cells)
        assert not report.used_pool

    def test_serial_equals_parallel(self):
        cells = list(range(6))
        serial = run_cells(cells, _square, parallel=False)
        forked = run_cells(cells, _square, parallel=True, n_workers=3)
        assert serial == forked


class TestClamp:
    def test_pool_clamped_to_cell_count(self):
        registry = MetricsRegistry()
        report = run_cells_report(
            [1, 2], _square, parallel=True, n_workers=8, registry=registry
        )
        assert report.results == [1, 4]
        assert report.n_workers == 2
        assert registry.counter("worker_pool_clamped_total").value == 1

    def test_no_clamp_when_workers_fit(self):
        registry = MetricsRegistry()
        run_cells_report(
            [1, 2, 3], _square, parallel=True, n_workers=2, registry=registry
        )
        assert registry.counter("worker_pool_clamped_total").value == 0


class TestCrashRecovery:
    def test_killed_cell_is_retried_and_merged(self, tmp_path):
        registry = MetricsRegistry()
        cells = [(str(tmp_path), v) for v in range(4)]
        report = run_cells_report(
            cells,
            _crash_once,
            parallel=True,
            n_workers=2,
            max_retries=2,
            retry_backoff_s=0.05,
            registry=registry,
        )
        assert report.failed_cells == []
        assert report.results == [0, 10, 20, 30]
        assert report.retries_total == 4  # every cell crashed exactly once
        assert registry.counter(
            "worker_retries_total", reason="crash"
        ).value == 4

    def test_retries_exhausted_reports_crash(self, tmp_path):
        # Two cells so the pool path engages (a single cell always runs
        # serially — it would execute the SIGKILL in this process).
        report = run_cells_report(
            [(str(tmp_path), 0), (str(tmp_path), 1)],
            _crash_always,
            parallel=True,
            n_workers=2,
            max_retries=1,
            retry_backoff_s=0.05,
        )
        assert report.results == [None, None]
        assert len(report.failed_cells) == 2
        for failure in report.failed_cells:
            assert failure.reason == "crash"
            assert failure.attempts == 2  # first try + one retry

    def test_run_cells_raises_grid_cell_error(self, tmp_path):
        with pytest.raises(GridCellError, match="crash"):
            run_cells(
                [(str(tmp_path), 0), (str(tmp_path), 1)],
                _crash_always,
                parallel=True,
                n_workers=2,
                max_retries=0,
                retry_backoff_s=0.05,
            )


class TestHangRecovery:
    def test_hung_cell_is_killed_and_retried(self, tmp_path):
        registry = MetricsRegistry()
        cells = [(str(tmp_path), v) for v in range(2)]
        report = run_cells_report(
            cells,
            _hang_once,
            parallel=True,
            n_workers=2,
            cell_timeout_s=1.0,
            max_retries=2,
            retry_backoff_s=0.05,
            registry=registry,
        )
        assert report.failed_cells == []
        assert report.results == [100, 101]
        assert report.retries_total == 2
        assert registry.counter(
            "worker_retries_total", reason="timeout"
        ).value == 2


class TestDeterministicErrors:
    def test_exception_not_retried_on_pool_path(self):
        report = run_cells_report(
            [0, 1, 2, 3],
            _fail_odd,
            parallel=True,
            n_workers=2,
            max_retries=3,
            retry_backoff_s=0.05,
        )
        assert report.results == [0, None, 2, None]
        assert report.retries_total == 0  # deterministic: no retry burned
        assert [f.index for f in report.failed_cells] == [1, 3]
        for failure in report.failed_cells:
            assert failure.reason == "error"
            assert failure.attempts == 1
            assert "odd cell" in failure.detail
