"""Power model behaviour."""

import pytest

from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.power import PowerModel


@pytest.fixture
def platform():
    return hikey970()


@pytest.fixture
def model(platform):
    return PowerModel(platform)


def _max_vf(platform):
    return platform.max_vf_levels()


def _min_vf(platform):
    return platform.default_vf_levels()


class TestCoreDynamicPower:
    def test_scales_with_activity(self, platform, model):
        vf = platform.cluster(BIG).vf_table.max_level
        idle = model.core_dynamic_power(4, vf, 0.0)
        busy = model.core_dynamic_power(4, vf, 1.0)
        assert busy > 5 * idle

    def test_big_core_burns_more_than_little_at_full_tilt(self, platform, model):
        big = model.core_dynamic_power(4, platform.cluster(BIG).vf_table.max_level, 1.0)
        little = model.core_dynamic_power(
            0, platform.cluster(LITTLE).vf_table.max_level, 1.0
        )
        assert big > 2.5 * little

    def test_calibration_magnitudes(self, platform, model):
        """Full-tilt per-core power is in the published big.LITTLE range."""
        big = model.core_dynamic_power(4, platform.cluster(BIG).vf_table.max_level, 1.0)
        little = model.core_dynamic_power(
            0, platform.cluster(LITTLE).vf_table.max_level, 1.0
        )
        assert 1.0 < big < 3.0
        assert 0.2 < little < 1.0

    def test_superlinear_in_frequency(self, platform, model):
        """V scales with f, so power grows faster than linearly."""
        table = platform.cluster(BIG).vf_table
        low, high = table[0], table[-1]
        p_low = model.core_dynamic_power(4, low, 1.0)
        p_high = model.core_dynamic_power(4, high, 1.0)
        freq_ratio = high.frequency_hz / low.frequency_hz
        assert p_high / p_low > freq_ratio

    def test_invalid_activity_rejected(self, platform, model):
        with pytest.raises(ValueError):
            model.core_dynamic_power(0, platform.cluster(LITTLE).vf_table[0], 1.5)


class TestLeakage:
    def test_grows_with_temperature(self, platform, model):
        vf = platform.cluster(BIG).vf_table.max_level
        cold = model.core_leakage_power(4, vf, 25.0)
        hot = model.core_leakage_power(4, vf, 85.0)
        assert hot > cold * 1.3

    def test_grows_with_voltage(self, platform, model):
        table = platform.cluster(BIG).vf_table
        assert model.core_leakage_power(4, table[-1], 40.0) > model.core_leakage_power(
            4, table[0], 40.0
        )

    def test_no_negative_temp_factor_below_reference(self, platform, model):
        vf = platform.cluster(BIG).vf_table[0]
        assert model.core_leakage_power(4, vf, 0.0) == pytest.approx(
            model.core_leakage_power(4, vf, 25.0)
        )


class TestComputeBreakdown:
    def test_all_blocks_present(self, platform, model):
        bd = model.compute(_min_vf(platform), {}, {})
        for name in platform.floorplan:
            assert name in bd.per_block

    def test_total_is_sum(self, platform, model):
        bd = model.compute(_min_vf(platform), {0: 1.0}, {})
        assert bd.total == pytest.approx(sum(bd.per_block.values()))

    def test_idle_power_is_modest(self, platform, model):
        bd = model.compute(_min_vf(platform), {}, {})
        assert 0.3 < bd.total < 2.0

    def test_full_load_power_realistic(self, platform, model):
        activity = {c: 0.9 for c in range(8)}
        temps = {c: 70.0 for c in range(8)}
        bd = model.compute(_max_vf(platform), activity, temps)
        assert 7.0 < bd.total < 15.0

    def test_activity_raises_uncore_power(self, platform, model):
        idle = model.compute(_max_vf(platform), {}, {})
        busy = model.compute(_max_vf(platform), {4: 1.0, 5: 1.0}, {})
        assert busy.per_block["uncore_big"] > idle.per_block["uncore_big"]

    def test_core_power_accessor(self, platform, model):
        bd = model.compute(_max_vf(platform), {6: 1.0}, {})
        assert bd.core_power(6) == bd.per_block["core6"]
        assert bd.core_power(99) == 0.0

    def test_missing_cores_treated_idle(self, platform, model):
        explicit = model.compute(_min_vf(platform), {c: 0.0 for c in range(8)}, {})
        implicit = model.compute(_min_vf(platform), {}, {})
        assert explicit.total == pytest.approx(implicit.total)


class TestComputeVector:
    def test_matches_compute_bitwise(self, platform, model):
        import numpy as np

        activity = np.array([0.0, 0.3, 1.0, 0.5, 0.9, 0.0, 0.7, 0.2])
        temps = np.array([30.0, 45.0, 80.0, 20.0, 65.0, 25.0, 55.0, 40.0])
        vf = _max_vf(platform)
        bd = model.compute(
            vf,
            {c: float(activity[c]) for c in range(8)},
            {c: float(temps[c]) for c in range(8)},
        )
        core_p, uncore_p, soc_p, total = model.compute_vector(vf, activity, temps)
        for c in range(8):
            assert core_p[c] == bd.per_block[f"core{c}"]
        for k, cluster in enumerate(platform.clusters):
            assert uncore_p[k] == bd.per_block[f"uncore_{cluster.name}"]
        assert soc_p == bd.per_block["soc_rest"]
        assert total == pytest.approx(bd.total, rel=1e-15)

    def test_idle_vector(self, platform, model):
        import numpy as np

        zeros = np.zeros(8)
        temps = np.full(8, platform.ambient_temp_c)
        bd = model.compute(_min_vf(platform), {}, {})
        _, _, _, total = model.compute_vector(_min_vf(platform), zeros, temps)
        assert total == pytest.approx(bd.total, rel=1e-15)


class TestComputeBatch:
    def test_rows_match_compute_vector_bitwise(self, platform, model):
        """Row i of a batch equals the scalar vector call for cell i,
        bit for bit — the batched backend's equivalence contract."""
        import numpy as np

        rng = np.random.default_rng(7)
        cells = []
        for _ in range(5):
            vf = {
                cluster.name: cluster.vf_table.levels[
                    int(rng.integers(len(cluster.vf_table.levels)))
                ]
                for cluster in platform.clusters
            }
            activity = rng.uniform(0.0, 1.0, platform.n_cores)
            temps = rng.uniform(20.0, 90.0, platform.n_cores)
            cells.append((vf, activity, temps))

        volt = np.array(
            [
                [vf[cluster.name].voltage_v for vf, _, _ in cells]
                for cluster in platform.clusters
            ]
        )
        freq = np.array(
            [
                [vf[cluster.name].frequency_hz for vf, _, _ in cells]
                for cluster in platform.clusters
            ]
        )
        activity = np.stack([a for _, a, _ in cells])
        temps = np.stack([t for _, _, t in cells])
        core_b, uncore_b, soc_b, total_b = model.compute_batch(
            volt, freq, activity, temps
        )
        for i, (vf, act, temp) in enumerate(cells):
            core_v, uncore_v, soc_v, total_v = model.compute_vector(
                vf, act, temp
            )
            assert np.array_equal(core_b[i], core_v)
            assert np.array_equal(uncore_b[i], uncore_v)
            assert soc_b == soc_v
            assert total_b[i] == total_v
