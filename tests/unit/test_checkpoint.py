"""Simulator checkpointing: snapshot/restore, policy, runner lifecycle."""

import dataclasses
import os

import pytest

from repro.governors.techniques import GTSOndemand
from repro.sim.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_PERIOD_ENV,
    DEFAULT_CHECKPOINT_PERIOD_S,
    CheckpointError,
    CheckpointPolicy,
    restore_simulator,
    snapshot_simulator,
)
from repro.sim.kernel import SimulationTimeout
from repro.store.handles import CheckpointHandle, handle_for_kind
from repro.workloads.generator import Workload, WorkloadItem
from repro.workloads.runner import prepare_run, run_workload


def _workload():
    return Workload(
        name="ckpt-test",
        items=[WorkloadItem("adi", 1e8, 0.0)],
        instruction_scale=0.002,
    )


def _sim(platform, seed=0):
    return prepare_run(platform, GTSOndemand(), _workload(), seed=seed)


class TestSnapshotRestore:
    def test_snapshot_captures_and_restores(self, platform):
        sim = _sim(platform)
        try:
            sim.run_until_complete(timeout_s=1.0)
        except SimulationTimeout:
            pass
        checkpoint = sim.snapshot(meta={"note": "t"})
        assert checkpoint.sim_time_s == sim.now_s
        assert checkpoint.meta["note"] == "t"
        restored = restore_simulator(checkpoint)
        assert restored.now_s == sim.now_s
        assert restored.trace.times == sim.trace.times

    def test_checksum_tamper_rejected(self, platform):
        sim = _sim(platform)
        checkpoint = snapshot_simulator(sim)
        tampered = dataclasses.replace(
            checkpoint,
            payload=b"\x00" + checkpoint.payload[1:],
        )
        with pytest.raises(CheckpointError, match="checksum"):
            restore_simulator(tampered)

    def test_version_mismatch_rejected(self, platform):
        sim = _sim(platform)
        checkpoint = snapshot_simulator(sim)
        futuristic = dataclasses.replace(checkpoint, version=999)
        with pytest.raises(CheckpointError, match="version"):
            restore_simulator(futuristic)

    def test_unpicklable_state_raises_checkpoint_error(self, platform):
        sim = _sim(platform)
        sim.add_controller("evil", 0.5, lambda s: None)
        with pytest.raises(CheckpointError):
            snapshot_simulator(sim)


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(directory="")
        with pytest.raises(ValueError):
            CheckpointPolicy(directory="/tmp/x", period_s=0.0)

    def test_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
        assert CheckpointPolicy.from_env() is None
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, "")
        assert CheckpointPolicy.from_env() is None

    def test_from_env_reads_dir_and_period(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))
        monkeypatch.delenv(CHECKPOINT_PERIOD_ENV, raising=False)
        policy = CheckpointPolicy.from_env()
        assert policy.directory == str(tmp_path)
        assert policy.period_s == DEFAULT_CHECKPOINT_PERIOD_S
        monkeypatch.setenv(CHECKPOINT_PERIOD_ENV, "2.5")
        assert CheckpointPolicy.from_env().period_s == 2.5

    def test_checkpoint_handle_registered(self):
        assert isinstance(handle_for_kind("checkpoint"), CheckpointHandle)


class TestRunnerLifecycle:
    def test_checkpointed_run_matches_plain_and_gcs(self, platform, tmp_path):
        plain = run_workload(platform, GTSOndemand(), _workload(), seed=3)
        policy = CheckpointPolicy(directory=str(tmp_path), period_s=1.0)
        checked = run_workload(
            platform, GTSOndemand(), _workload(), seed=3, checkpoint=policy
        )
        assert checked.resumed_from_s == 0.0
        assert checked.summary == plain.summary
        assert checked.trace.times == plain.trace.times
        # Completion GC'd the checkpoint: no entries survive.
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
        ]
        assert leftovers == []

    def test_crashed_run_resumes_from_checkpoint(self, platform, tmp_path):
        policy = CheckpointPolicy(directory=str(tmp_path), period_s=1.0)
        with pytest.raises(SimulationTimeout):
            run_workload(
                platform,
                GTSOndemand(),
                _workload(),
                seed=3,
                checkpoint=policy,
                max_duration_s=1.2,
            )
        # The timed-out attempt's checkpoint survives (complete() skipped).
        survivors = [
            name for _, _, names in os.walk(str(tmp_path)) for name in names
        ]
        assert survivors
        resumed = run_workload(
            platform, GTSOndemand(), _workload(), seed=3, checkpoint=policy
        )
        assert resumed.resumed_from_s > 0.0
        plain = run_workload(platform, GTSOndemand(), _workload(), seed=3)
        assert resumed.summary == plain.summary
        assert resumed.trace.times == plain.trace.times

    def test_unpicklable_run_disables_checkpointing_but_completes(
        self, platform, tmp_path
    ):
        policy = CheckpointPolicy(directory=str(tmp_path), period_s=0.5)
        sim_probe = {}

        class Unpicklable(GTSOndemand):
            def attach(self, sim):
                super().attach(sim)
                sim.add_controller("closure", 0.5, lambda s: None)
                sim_probe["attached"] = True

        result = run_workload(
            platform, Unpicklable(), _workload(), seed=3, checkpoint=policy
        )
        assert sim_probe["attached"]
        assert result.resumed_from_s == 0.0
        assert result.summary.duration_s > 0.0


class TestKernelCadence:
    def test_on_checkpoint_called_per_period(self, platform):
        sim = _sim(platform)
        times = []
        try:
            sim.run_until_complete(
                timeout_s=2.0,
                checkpoint_every_s=0.5,
                on_checkpoint=lambda s: times.append(s.now_s),
            )
        except SimulationTimeout:
            pass
        assert len(times) >= 3
        # Cadence is anchored at run start and advances by the period.
        assert times[0] == pytest.approx(0.5, abs=0.05)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.5, abs=0.05) for d in deltas)

    def test_checkpoint_hooks_do_not_perturb_run(self, platform):
        baseline = _sim(platform)
        hooked = _sim(platform)
        try:
            baseline.run_until_complete(timeout_s=2.0)
        except SimulationTimeout:
            pass
        try:
            hooked.run_until_complete(
                timeout_s=2.0,
                checkpoint_every_s=0.25,
                on_checkpoint=lambda s: s.snapshot(),
            )
        except SimulationTimeout:
            pass
        assert hooked.now_s == baseline.now_s
        assert hooked.trace.times == baseline.trace.times
        assert hooked.trace.sensor_temp_c == baseline.trace.sensor_temp_c
