"""Model save/load round-trips."""

import numpy as np
import pytest

from repro.nn.layers import Sequential, build_mlp
from repro.nn.serialize import load_model, save_model
from repro.utils.rng import RandomSource


class TestRoundTrip:
    def test_predictions_identical(self, tmp_path):
        model = build_mlp(21, 8, 4, 64, RandomSource(3))
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        x = RandomSource(0).normal(size=(5, 21))
        assert np.array_equal(model.forward(x), loaded.forward(x))

    def test_topology_preserved(self, tmp_path):
        model = build_mlp(4, 2, 2, 16, RandomSource(0))
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert len(loaded.layers) == len(model.layers)
        assert loaded.n_parameters() == model.n_parameters()

    def test_linear_only_model(self, tmp_path):
        model = build_mlp(4, 2, 0, 8, RandomSource(0))
        path = str(tmp_path / "lin.npz")
        save_model(model, path)
        x = np.ones((1, 4))
        assert np.array_equal(model.forward(x), load_model(path).forward(x))

    def test_unknown_layer_rejected(self, tmp_path):
        class Mystery:
            def params(self):
                return []

        model = Sequential([Mystery()])
        with pytest.raises(TypeError):
            save_model(model, str(tmp_path / "bad.npz"))
