"""Workload generation."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.platform.hikey import LITTLE
from repro.workloads.generator import (
    DEFAULT_MIXED_APPS,
    Workload,
    WorkloadItem,
    mixed_workload,
    single_app_workload,
)


class TestWorkloadItem:
    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            WorkloadItem("adi", 0.0, 1.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            WorkloadItem("adi", 1e8, -1.0)


class TestWorkload:
    def test_requires_items(self):
        with pytest.raises(ValueError):
            Workload("w", [])

    def test_instruction_scale_applied(self):
        wl = Workload(
            "w", [WorkloadItem("adi", 1e8, 0.0)], instruction_scale=0.1
        )
        scaled = wl.resolve_app(wl.items[0])
        assert scaled.total_instructions == pytest.approx(
            0.1 * get_app("adi").total_instructions
        )

    def test_scale_one_returns_catalog_model(self):
        wl = Workload("w", [WorkloadItem("adi", 1e8, 0.0)])
        assert wl.resolve_app(wl.items[0]) is get_app("adi")


class TestMixedWorkload:
    def test_paper_pool_has_sixteen_apps(self):
        assert len(DEFAULT_MIXED_APPS) == 16

    def test_item_count(self, platform):
        wl = mixed_workload(platform, n_apps=20, seed=0)
        assert wl.n_items == 20

    def test_deterministic_given_seed(self, platform):
        a = mixed_workload(platform, n_apps=10, seed=3)
        b = mixed_workload(platform, n_apps=10, seed=3)
        assert a.items == b.items

    def test_different_seeds_differ(self, platform):
        a = mixed_workload(platform, n_apps=10, seed=3)
        b = mixed_workload(platform, n_apps=10, seed=4)
        assert a.items != b.items

    def test_arrivals_increasing(self, platform):
        wl = mixed_workload(platform, n_apps=30, seed=1)
        arrivals = [i.arrival_time_s for i in wl.items]
        assert arrivals == sorted(arrivals)

    def test_arrival_rate_controls_density(self, platform):
        fast = mixed_workload(platform, n_apps=50, arrival_rate_per_s=1.0, seed=0)
        slow = mixed_workload(platform, n_apps=50, arrival_rate_per_s=0.1, seed=0)
        assert fast.last_arrival_s() < slow.last_arrival_s()

    def test_mean_interarrival_matches_rate(self, platform):
        rate = 0.5
        wl = mixed_workload(platform, n_apps=500, arrival_rate_per_s=rate, seed=2)
        arrivals = np.array([i.arrival_time_s for i in wl.items])
        gaps = np.diff(np.concatenate([[0.0], arrivals]))
        assert gaps.mean() == pytest.approx(1.0 / rate, rel=0.15)

    def test_qos_targets_feasible_on_little(self, platform):
        wl = mixed_workload(platform, n_apps=40, seed=5)
        table = platform.cluster(LITTLE).vf_table
        for item in wl.items:
            app = get_app(item.app_name)
            assert item.qos_target_ips <= app.max_ips(LITTLE, table) * 0.86

    def test_apps_drawn_from_pool(self, platform):
        wl = mixed_workload(platform, n_apps=40, seed=6)
        assert {i.app_name for i in wl.items}.issubset(set(DEFAULT_MIXED_APPS))

    def test_invalid_fraction_range_rejected(self, platform):
        with pytest.raises(ValueError):
            mixed_workload(platform, qos_fraction_range=(0.9, 0.5))


class TestSingleAppWorkload:
    def test_single_item_at_time_zero(self, platform):
        wl = single_app_workload("canneal", platform)
        assert wl.n_items == 1
        assert wl.items[0].arrival_time_s == 0.0

    def test_default_target_feasible_on_little(self, platform):
        wl = single_app_workload("swaptions", platform)
        app = get_app("swaptions")
        table = platform.cluster(LITTLE).vf_table
        assert wl.items[0].qos_target_ips < app.max_ips(LITTLE, table)

    def test_explicit_target_respected(self, platform):
        wl = single_app_workload("adi", platform, qos_target_ips=1.23e8)
        assert wl.items[0].qos_target_ips == pytest.approx(1.23e8)


class TestWorkloadPersistence:
    def test_json_roundtrip(self, platform, tmp_path):
        from repro.workloads.generator import load_workload, save_workload

        original = mixed_workload(platform, n_apps=6, seed=9,
                                  instruction_scale=0.25)
        path = str(tmp_path / "workload.json")
        save_workload(original, path)
        loaded = load_workload(path)
        assert loaded.name == original.name
        assert loaded.instruction_scale == original.instruction_scale
        assert loaded.items == original.items

    def test_loaded_workload_resolves_apps(self, platform, tmp_path):
        from repro.workloads.generator import load_workload, save_workload

        original = single_app_workload("canneal", platform,
                                       instruction_scale=0.5)
        path = str(tmp_path / "single.json")
        save_workload(original, path)
        loaded = load_workload(path)
        app = loaded.resolve_app(loaded.items[0])
        assert app.name == "canneal"
        assert app.total_instructions == pytest.approx(
            0.5 * get_app("canneal").total_instructions
        )
