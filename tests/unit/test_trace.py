"""Trace recorder behaviour."""

import pytest

from repro.sim.trace import MigrationEvent, TraceRecorder


def _sample(recorder, t, temp=30.0, pids=None):
    recorder.record(
        now_s=t,
        sensor_temp_c=temp,
        max_core_temp_c=temp + 1.0,
        total_power_w=2.0,
        vf_hz={"LITTLE": 1e9, "big": 2e9},
        node_temps_c={"core0": temp},
        process_core=pids or {},
        process_ips={pid: 1e9 for pid in (pids or {})},
    )


class TestSamplingGrid:
    def test_due_respects_period(self):
        rec = TraceRecorder(sample_period_s=0.1)
        assert rec.due(0.0)
        _sample(rec, 0.0)
        assert not rec.due(0.05)
        assert rec.due(0.1)

    def test_series_stay_parallel(self):
        rec = TraceRecorder()
        _sample(rec, 0.0)
        _sample(rec, 0.1)
        assert len(rec.times) == len(rec.sensor_temp_c) == 2
        assert len(rec.vf_levels["LITTLE"]) == 2

    def test_late_pid_backfilled(self):
        """A process appearing mid-run gets -1 for earlier samples."""
        rec = TraceRecorder()
        _sample(rec, 0.0, pids={})
        _sample(rec, 0.1, pids={7: 3})
        assert rec.process_cores[7] == [-1, 3]

    def test_departed_pid_marked_idle(self):
        rec = TraceRecorder()
        _sample(rec, 0.0, pids={7: 3})
        _sample(rec, 0.1, pids={})
        assert rec.process_cores[7] == [3, -1]


class TestStatistics:
    def test_mean_and_peak(self):
        rec = TraceRecorder()
        _sample(rec, 0.0, temp=30.0)
        _sample(rec, 0.1, temp=50.0)
        assert rec.mean_sensor_temp() == pytest.approx(40.0)
        assert rec.peak_sensor_temp() == pytest.approx(50.0)

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder().mean_sensor_temp()

    def test_cluster_of_samples(self):
        rec = TraceRecorder()
        _sample(rec, 0.0, pids={1: 0})
        _sample(rec, 0.1, pids={1: 5})
        _sample(rec, 0.2, pids={})
        clusters = rec.cluster_of_samples(1, {0: "LITTLE", 5: "big"})
        assert clusters == ["LITTLE", "big", ""]


class TestMigrationEvents:
    def test_events_recorded_in_order(self):
        rec = TraceRecorder()
        rec.record_migration(MigrationEvent(1.0, 1, "adi", 0, 4))
        rec.record_migration(MigrationEvent(2.0, 1, "adi", 4, 0))
        assert [m.time_s for m in rec.migrations] == [1.0, 2.0]

    def test_placement_has_no_source(self):
        event = MigrationEvent(0.0, 1, "adi", None, 3)
        assert event.from_core is None
