"""Modal reduction of the RC thermal network."""

import numpy as np
import pytest

from repro.platform import hikey970
from repro.thermal import FAN_COOLING, build_thermal_network
from repro.thermal.reduction import reduce_network


@pytest.fixture
def full_network():
    return build_thermal_network(hikey970(), FAN_COOLING)


class TestConstruction:
    def test_too_many_modes_rejected(self, full_network):
        with pytest.raises(ValueError):
            reduce_network(full_network, full_network.n_nodes + 1)

    def test_zero_modes_rejected(self, full_network):
        with pytest.raises(ValueError):
            reduce_network(full_network, 0)

    def test_node_names_preserved(self, full_network):
        reduced = reduce_network(full_network, 4)
        assert reduced.node_names == full_network.node_names


class TestAccuracy:
    def test_steady_state_exact(self, full_network):
        """Static gain is corrected, so steady states match exactly."""
        reduced = reduce_network(full_network, 3)
        power = {"core4": 1.5, "core0": 0.4, "soc_rest": 0.5}
        full = full_network.steady_state(power)
        approx = reduced.steady_state(power)
        for name in full:
            assert approx[name] == pytest.approx(full[name], abs=1e-9)

    def test_full_mode_count_reproduces_dynamics(self, full_network):
        """Keeping every mode must equal the exact integrator."""
        reduced = reduce_network(full_network, full_network.n_nodes)
        power = {"core6": 1.8, "soc_rest": 0.5}
        for _ in range(50):
            full_network.step(power, 0.1)
            reduced.step(power, 0.1)
        full = full_network.temperatures()
        approx = reduced.temperatures()
        for name in full:
            assert approx[name] == pytest.approx(full[name], abs=1e-6)

    def test_few_modes_accurate_at_control_timescales(self, full_network):
        """At 100 ms steps, a handful of modes tracks the zones closely."""
        reduced = reduce_network(full_network, 4)
        power = {"core4": 1.7, "core5": 1.7, "soc_rest": 0.55}
        for _ in range(600):  # 60 s
            full_network.step(power, 0.1)
            reduced.step(power, 0.1)
        zones = [n for n in full_network.node_names if n.startswith("uncore")]
        for name in zones:
            assert reduced.temperatures()[name] == pytest.approx(
                full_network.temperature_of(name), abs=1.0
            )

    def test_long_run_converges_to_steady_state(self, full_network):
        reduced = reduce_network(full_network, 2)
        power = {"core7": 1.0, "soc_rest": 0.5}
        target = reduced.steady_state(power)
        for _ in range(100):
            reduced.step(power, 30.0)
        temps = reduced.temperatures()
        for name in temps:
            assert temps[name] == pytest.approx(target[name], abs=1e-3)

    def test_power_change_continuous_with_all_modes(self, full_network):
        """With no truncation, switching power must not teleport temps."""
        reduced = reduce_network(full_network, full_network.n_nodes)
        reduced.step({"core4": 2.0}, 20.0)
        before = reduced.temperatures()
        reduced.step({"core4": 0.0}, 1e-6)  # instantaneous power drop
        after = reduced.temperatures()
        for name in before:
            assert after[name] == pytest.approx(before[name], abs=0.05)

    def test_power_change_zone_error_bounded_when_truncated(self, full_network):
        """Truncation redistributes the fast-mode content instantaneously;
        the observable zones must still move by less than ~2 C."""
        reduced = reduce_network(full_network, 4)
        reduced.step({"core4": 2.0}, 20.0)
        before = reduced.temperatures()
        reduced.step({"core4": 0.0}, 1e-6)
        after = reduced.temperatures()
        zones = [n for n in full_network.node_names if n.startswith("uncore")]
        for name in zones:
            assert abs(after[name] - before[name]) < 2.0


class TestStateSync:
    def test_set_from_full_network(self, full_network):
        power = {"core4": 1.5, "soc_rest": 0.5}
        for _ in range(100):
            full_network.step(power, 0.1)
        reduced = reduce_network(full_network, full_network.n_nodes)
        reduced._p = reduced._power_vector(power)
        reduced.set_from(full_network)
        for name in full_network.node_names:
            assert reduced.temperatures()[name] == pytest.approx(
                full_network.temperature_of(name), abs=1e-9
            )

    def test_reset_clears_state(self, full_network):
        reduced = reduce_network(full_network, 3)
        reduced.step({"core4": 2.0}, 10.0)
        reduced.reset()
        temps = reduced.temperatures()
        assert all(
            t == pytest.approx(full_network.ambient_temp_c) for t in temps.values()
        )


class TestSpeed:
    def test_reduced_stepping_cheaper_than_full(self, full_network):
        """The reduced step is a k-vector exponential vs an n x n matmul;
        verify it at least produces the same interface quickly."""
        import time

        reduced = reduce_network(full_network, 3)
        power = {"core4": 1.0}
        start = time.perf_counter()
        for _ in range(2000):
            reduced.step(power, 0.05)
        reduced_time = time.perf_counter() - start
        assert reduced_time < 2.0  # loose bound: it must be trivially fast
