"""Technique wrappers: attach semantics and overhead charging."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.governors.techniques import GTSOndemand, GTSPowersave
from repro.il.technique import TopIL
from repro.nn.layers import build_mlp
from repro.platform.hikey import BIG, LITTLE
from repro.rl.technique import TopRL
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.rng import RandomSource


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name="adi"):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


def _model():
    return build_mlp(21, 8, 2, 16, RandomSource(0))


class TestLinuxTechniques:
    def test_gts_ondemand_name_and_behaviour(self, platform):
        sim = _sim(platform)
        technique = GTSOndemand()
        assert technique.name == "GTS/ondemand"
        technique.attach(sim)
        sim.submit(_long(), 1e8, 0.0)
        sim.run_for(0.5)
        proc = sim.running_processes()[0]
        # GTS placed it big; ondemand ramped the busy cluster to max.
        assert platform.cluster_of_core(proc.core_id).name == BIG
        assert sim.vf_level(BIG) == platform.cluster(BIG).vf_table.max_level

    def test_gts_powersave_pins_minimum(self, platform):
        sim = _sim(platform)
        GTSPowersave().attach(sim)
        sim.submit(_long(), 1e8, 0.0)
        sim.run_for(0.5)
        for cluster in platform.clusters:
            assert sim.vf_level(cluster.name) == cluster.vf_table.min_level


class TestTopILTechnique:
    def test_attach_registers_both_loops(self, platform):
        sim = _sim(platform)
        TopIL(_model()).attach(sim)
        names = {c.name for c in sim._controllers}
        assert "qos-dvfs" in names
        assert "top-il-migration" in names

    def test_charges_both_overhead_components(self, platform):
        sim = _sim(platform)
        TopIL(_model()).attach(sim)
        sim.submit(_long(), 1e8, 0.0)
        sim.run_for(1.1)
        assert sim.overhead_cpu_s["dvfs"] > 0
        assert sim.overhead_cpu_s["migration"] > 0

    def test_custom_periods_respected(self, platform):
        sim = _sim(platform)
        technique = TopIL(_model(), migration_period_s=0.25, dvfs_period_s=0.1)
        technique.attach(sim)
        sim.run_for(1.05)
        assert technique.migration.invocations == 4
        assert technique.dvfs_loop.invocations == 10

    def test_dvfs_loop_shared_with_migration(self, platform):
        technique = TopIL(_model())
        assert technique.migration.dvfs_loop is technique.dvfs_loop


class TestTopRLTechnique:
    def test_attach_registers_both_loops(self, platform):
        sim = _sim(platform)
        TopRL(rng=RandomSource(0)).attach(sim)
        names = {c.name for c in sim._controllers}
        assert "qos-dvfs" in names
        assert "top-rl-migration" in names

    def test_fresh_qtable_created_by_default(self, platform):
        technique = TopRL(rng=RandomSource(0))
        assert technique.qtable.size == 2304

    def test_overhead_charged(self, platform):
        sim = _sim(platform)
        TopRL(rng=RandomSource(0)).attach(sim)
        sim.submit(_long(), 1e8, 0.0)
        sim.run_for(1.1)
        assert sim.overhead_cpu_s["dvfs"] > 0
        assert sim.overhead_cpu_s["migration"] > 0
