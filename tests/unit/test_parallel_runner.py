"""Tests for the seed-stable parallel experiment runner."""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments.main_mixed import MainMixedConfig, run_main_mixed
from repro.experiments.parallel import (
    PARALLEL_ENV_VAR,
    cell_rng,
    default_workers,
    parallel_enabled,
    run_cells,
)

_STATE = {}


def _init_state(offset: int) -> None:
    _STATE["offset"] = offset


def _square_plus_offset(cell: int) -> int:
    return cell * cell + _STATE["offset"]


def _identify(cell: int):
    return (cell, os.getpid())


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
        return True
    except ValueError:
        return False


class TestRunCells:
    def test_serial_preserves_order_and_runs_init(self):
        out = run_cells(
            list(range(8)),
            _square_plus_offset,
            init=_init_state,
            init_args=(100,),
            parallel=False,
        )
        assert out == [c * c + 100 for c in range(8)]

    @pytest.mark.skipif(not _fork_available(), reason="no fork start method")
    def test_parallel_matches_serial(self):
        cells = list(range(12))
        serial = run_cells(
            cells, _square_plus_offset, init=_init_state, init_args=(7,),
            parallel=False,
        )
        fanned = run_cells(
            cells, _square_plus_offset, init=_init_state, init_args=(7,),
            parallel=True, n_workers=2,
        )
        assert fanned == serial

    @pytest.mark.skipif(not _fork_available(), reason="no fork start method")
    def test_parallel_results_in_cell_order(self):
        cells = list(range(10))
        out = run_cells(cells, _identify, parallel=True, n_workers=2)
        assert [cell for cell, _ in out] == cells

    def test_single_cell_runs_serial(self):
        out = run_cells([3], _identify, parallel=True, n_workers=4)
        assert out == [(3, os.getpid())]

    def test_n_workers_one_runs_serial(self):
        out = run_cells([1, 2], _identify, parallel=True, n_workers=1)
        assert {pid for _, pid in out} == {os.getpid()}

    def test_env_var_disables_parallel(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "0")
        assert not parallel_enabled()
        out = run_cells(list(range(4)), _identify, n_workers=4)
        assert {pid for _, pid in out} == {os.getpid()}

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_ENV_VAR, "0")
        assert parallel_enabled(True)
        monkeypatch.delenv(PARALLEL_ENV_VAR)
        assert parallel_enabled()
        assert not parallel_enabled(False)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestCellRng:
    def test_deterministic_per_cell(self):
        a = cell_rng(11, "fan", 0.5, 2).uniform(size=4)
        b = cell_rng(11, "fan", 0.5, 2).uniform(size=4)
        assert list(a) == list(b)

    def test_distinct_cells_distinct_streams(self):
        a = cell_rng(11, "fan", 0.5, 2).uniform(size=4)
        b = cell_rng(11, "fan", 0.5, 3).uniform(size=4)
        assert list(a) != list(b)


class TestMainMixedParallel:
    @pytest.mark.skipif(not _fork_available(), reason="no fork start method")
    def test_parallel_identical_to_serial(self, assets):
        config = MainMixedConfig(
            n_apps=3,
            arrival_rates=(1.0 / 4.0,),
            repetitions=2,
            coolings=MainMixedConfig.smoke().coolings,
            instruction_scale=0.01,
            techniques=("GTS/ondemand", "GTS/powersave"),
        )
        serial = run_main_mixed(assets, config, parallel=False)
        fanned = run_main_mixed(assets, config, parallel=True, n_workers=2)
        assert fanned.raw == serial.raw
        assert len(fanned.aggregates) == len(serial.aggregates)
        for got, want in zip(fanned.aggregates, serial.aggregates):
            assert got.technique == want.technique
            assert got.cooling == want.cooling
            assert got.mean_temp_c == want.mean_temp_c
            assert got.std_temp_c == want.std_temp_c
            assert got.mean_violations == want.mean_violations
            assert got.std_violations == want.std_violations
            assert got.mean_violation_fraction == want.mean_violation_fraction
            assert got.dtm_throttle_events == want.dtm_throttle_events
            assert got.cpu_time_by_vf.seconds == want.cpu_time_by_vf.seconds
