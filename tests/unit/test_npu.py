"""NPU / CPU inference latency models and the overhead model."""

import pytest

from repro.nn.layers import build_mlp
from repro.npu.latency import CPUInferenceLatency, NPUInferenceLatency, model_flops
from repro.npu.overhead import ManagementOverheadModel
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def model():
    """The paper's 4x64 topology (21 inputs, 8 outputs)."""
    return build_mlp(21, 8, 4, 64, RandomSource(0))


class TestModelFlops:
    def test_counts_mlp_macs(self, model):
        expected = (
            2 * (21 * 64 + 64 * 64 * 3 + 64 * 8)
            + 64 * 4 + 8
        )
        assert model_flops(model) == expected


class TestNPULatency:
    def test_constant_within_wave(self, model):
        npu = NPUInferenceLatency()
        assert npu.latency_s(1, model) == npu.latency_s(8, model)
        assert npu.latency_s(8, model) == npu.latency_s(16, model)

    def test_additional_wave_adds_cost(self, model):
        npu = NPUInferenceLatency(wave_size=16)
        assert npu.latency_s(17, model) > npu.latency_s(16, model)

    def test_zero_batch_free(self, model):
        assert NPUInferenceLatency().latency_s(0, model) == 0.0

    def test_magnitude_matches_paper(self, model):
        """One batched call is ~2 ms (part of the 4.3 ms invocation)."""
        latency = NPUInferenceLatency().latency_s(8, model)
        assert 0.5e-3 < latency < 4e-3


class TestCPULatency:
    def test_linear_in_batch(self, model):
        cpu = CPUInferenceLatency()
        lat4 = cpu.latency_s(4, model)
        lat8 = cpu.latency_s(8, model)
        per_sample = (lat8 - lat4) / 4
        assert per_sample > 0.5e-3

    def test_slower_than_npu_for_large_batches(self, model):
        cpu = CPUInferenceLatency()
        npu = NPUInferenceLatency()
        assert cpu.latency_s(8, model) > 2 * npu.latency_s(8, model)


class TestOverheadModel:
    def test_dvfs_scales_with_apps(self, model):
        ovh = ManagementOverheadModel()
        assert ovh.dvfs_invocation_s(8) > ovh.dvfs_invocation_s(1)

    def test_dvfs_magnitude_matches_paper(self):
        """Paper: 8.7 ms/s of DVFS-loop overhead in the worst case.  Our
        loop runs 20x per second, so the per-invocation cost is ~0.44 ms
        (the paper reports 0.54 ms at its effective 16 Hz)."""
        ovh = ManagementOverheadModel()
        assert 20 * ovh.dvfs_invocation_s(8) == pytest.approx(8.7e-3, rel=0.15)

    def test_migration_magnitude_matches_paper(self, model):
        """Paper: ~4.3 ms per migration-policy invocation."""
        ovh = ManagementOverheadModel()
        assert ovh.migration_invocation_s(8, model) == pytest.approx(
            4.3e-3, rel=0.3
        )

    def test_migration_nearly_constant_in_apps(self, model):
        """The NPU keeps migration cost flat (Fig. 12)."""
        ovh = ManagementOverheadModel()
        l1 = ovh.migration_invocation_s(1, model)
        l8 = ovh.migration_invocation_s(8, model)
        assert (l8 - l1) / l8 < 0.4

    def test_total_overhead_near_paper_bound(self, model):
        """Total ~1.7% of one core (the paper's 8.7 + 8.6 ms/s)."""
        ovh = ManagementOverheadModel()
        per_second = 20 * ovh.dvfs_invocation_s(8) + 2 * ovh.migration_invocation_s(
            8, model
        )
        assert per_second < 0.018

    def test_negative_apps_rejected(self, model):
        ovh = ManagementOverheadModel()
        with pytest.raises(ValueError):
            ovh.dvfs_invocation_s(-1)
        with pytest.raises(ValueError):
            ovh.migration_invocation_s(-1, model)
