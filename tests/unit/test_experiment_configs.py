"""Experiment configuration objects: smoke/paper constructors and guards."""

import pytest

from repro.experiments.ablation import AblationConfig
from repro.experiments.illustrative import IllustrativeConfig
from repro.experiments.main_mixed import MainMixedConfig, TECHNIQUE_NAMES
from repro.experiments.migration import MigrationOverheadConfig
from repro.experiments.model_eval import ModelEvalConfig
from repro.experiments.motivation import MotivationConfig
from repro.experiments.nas import NASConfig
from repro.experiments.overhead import OverheadConfig
from repro.experiments.report import ReportScale
from repro.experiments.single_app import SingleAppConfig

ALL_CONFIGS = [
    MotivationConfig,
    NASConfig,
    MigrationOverheadConfig,
    IllustrativeConfig,
    MainMixedConfig,
    SingleAppConfig,
    ModelEvalConfig,
    OverheadConfig,
    AblationConfig,
]


class TestConstructors:
    @pytest.mark.parametrize("config_cls", ALL_CONFIGS)
    def test_smoke_and_paper_construct(self, config_cls):
        assert config_cls.smoke() is not None
        assert config_cls.paper() is not None

    @pytest.mark.parametrize("config_cls", ALL_CONFIGS)
    def test_smoke_is_not_paper(self, config_cls):
        assert config_cls.smoke() != config_cls.paper()


class TestPaperParameters:
    def test_main_mixed_paper_matches_paper_setup(self):
        cfg = MainMixedConfig.paper()
        assert cfg.n_apps == 20           # 20 randomly selected applications
        assert cfg.repetitions == 3       # three models / repetitions
        assert len(cfg.coolings) == 2     # fan and no fan
        assert set(cfg.techniques) == set(TECHNIQUE_NAMES)

    def test_single_app_paper_covers_all_unseen_apps(self):
        cfg = SingleAppConfig.paper()
        assert len(cfg.apps) == 10  # 8 PARSEC + 2 held-out kernels
        assert cfg.repetitions == 3

    def test_nas_paper_grid_contains_best_topology(self):
        cfg = NASConfig.paper()
        assert 4 in cfg.depths
        assert 64 in cfg.widths

    def test_migration_paper_uses_parsec_pool(self):
        cfg = MigrationOverheadConfig.paper()
        assert len(cfg.apps) == 8
        assert cfg.epoch_s == pytest.approx(0.5)  # the migration epoch

    def test_motivation_paper_studies_adi_and_seidel(self):
        cfg = MotivationConfig.paper()
        assert set(cfg.apps) == {"adi", "seidel-2d"}
        assert cfg.qos_fraction == pytest.approx(0.3)

    def test_overhead_paper_covers_one_to_eight_apps(self):
        cfg = OverheadConfig.paper()
        assert min(cfg.app_counts) == 1
        assert max(cfg.app_counts) == 8


class TestValidation:
    def test_motivation_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            MotivationConfig(observe_s=0.0)

    def test_model_eval_rejects_zero_scenarios(self):
        with pytest.raises(ValueError):
            ModelEvalConfig(n_scenarios=0)

    def test_migration_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            MigrationOverheadConfig(repetitions=0)


class TestReportScale:
    @pytest.mark.parametrize("name", ["smoke", "medium", "paper"])
    def test_scales_construct(self, name):
        scale = getattr(ReportScale, name)()
        assert scale.name == name

    def test_medium_between_smoke_and_paper(self):
        smoke = ReportScale.smoke()
        medium = ReportScale.medium()
        paper = ReportScale.paper()
        assert (
            smoke.main_mixed.n_apps
            <= medium.main_mixed.n_apps
            <= paper.main_mixed.n_apps
        )
