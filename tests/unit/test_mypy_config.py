"""mypy wiring: config shape always, a real strict run when mypy is present."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

try:
    import tomllib
except ImportError:  # Python < 3.11
    tomllib = None  # type: ignore[assignment]

REPO_ROOT = Path(__file__).resolve().parents[2]
STRICT_PACKAGES = [
    "repro.utils.*",
    "repro.thermal.*",
    "repro.power.*",
    "repro.faults.*",
    "repro.store.*",
    "repro.platform.*",
    "repro.sim.batch",
    "repro.experiments.parallel",
    "repro.chaos.*",
    "repro.sim.checkpoint",
]


@pytest.fixture(scope="module")
def pyproject() -> dict:
    if tomllib is None:
        pytest.skip("tomllib unavailable")
    with open(REPO_ROOT / "pyproject.toml", "rb") as fh:
        return tomllib.load(fh)


def test_lint_extra_declared(pyproject):
    extras = pyproject["project"]["optional-dependencies"]
    assert any(dep.startswith("mypy") for dep in extras["lint"])
    assert any(dep.startswith("ruff") for dep in extras["lint"])


def test_mypy_base_config(pyproject):
    cfg = pyproject["tool"]["mypy"]
    assert cfg["mypy_path"] == "src"
    assert cfg["no_implicit_optional"] is True
    assert cfg["check_untyped_defs"] is True


def test_strict_overrides_cover_core_packages(pyproject):
    overrides = pyproject["tool"]["mypy"]["overrides"]
    strict = [o for o in overrides if o.get("disallow_untyped_defs")]
    assert strict, "no strict override block"
    covered = set()
    for block in strict:
        covered.update(block["module"])
        assert block["disallow_incomplete_defs"] is True
    assert covered >= set(STRICT_PACKAGES)


def test_strict_packages_fully_annotated():
    """AST-level stand-in for the strict mypy gate (mypy may be absent).

    Every function in the strict packages must have a return annotation and
    annotations on all non-self/cls parameters — the exact surface
    ``disallow_untyped_defs``/``disallow_incomplete_defs`` police.
    """
    import ast

    strict_paths = []
    for pkg in (
        "utils", "thermal", "power", "faults", "store", "platform", "chaos",
    ):
        strict_paths.extend(
            sorted((REPO_ROOT / "src" / "repro" / pkg).rglob("*.py"))
        )
    # Strict single modules (non-wildcard entries in STRICT_PACKAGES).
    strict_paths.append(REPO_ROOT / "src" / "repro" / "sim" / "batch.py")
    strict_paths.append(REPO_ROOT / "src" / "repro" / "sim" / "checkpoint.py")
    strict_paths.append(
        REPO_ROOT / "src" / "repro" / "experiments" / "parallel.py"
    )

    missing = []
    for path in strict_paths:
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            args = (
                node.args.posonlyargs
                + node.args.args
                + node.args.kwonlyargs
            )
            unannotated = [
                a.arg
                for a in args
                if a.annotation is None and a.arg not in ("self", "cls")
            ]
            if node.returns is None or unannotated:
                missing.append(f"{path.name}:{node.lineno} {node.name}")
    assert not missing, "untyped defs in strict packages:\n" + "\n".join(missing)


def test_pre_commit_config_runs_full_lint():
    yaml = pytest.importorskip("yaml")
    cfg = yaml.safe_load(
        (REPO_ROOT / ".pre-commit-config.yaml").read_text()
    )
    [local] = cfg["repos"]
    assert local["repo"] == "local"
    hooks = {h["id"]: h for h in local["hooks"]}
    lint = hooks["repro-lint"]
    assert "--interprocedural" in lint["entry"]
    assert "src/" in lint["entry"] and "tools/" in lint["entry"]
    assert lint["pass_filenames"] is False
    assert hooks["mypy-strict-core"]["entry"].startswith("python -m mypy")


def test_mypy_runs_clean_when_available():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
