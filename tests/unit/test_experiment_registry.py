"""The experiment registry: the single source for list/run/report."""

from repro.experiments import EXPERIMENT_SPECS, EXPERIMENTS, ExperimentSpec


class TestRegistryShape:
    def test_names_unique_and_indexed(self):
        names = [spec.name for spec in EXPERIMENT_SPECS]
        assert len(names) == len(set(names))
        assert set(EXPERIMENTS) == set(names)
        for name, spec in EXPERIMENTS.items():
            assert spec.name == name

    def test_every_spec_is_complete(self):
        for spec in EXPERIMENT_SPECS:
            assert spec.title, spec.name
            assert spec.paper_claim, spec.name
            assert callable(spec.body), spec.name

    def test_paper_figures_present(self):
        for name in ("fig1", "fig3", "fig5", "fig7", "fig8", "fig10",
                     "fig11", "fig12", "model-eval"):
            assert name in EXPERIMENTS

    def test_extensions_present(self):
        for name in ("ablations", "optimality", "stability", "ambient",
                     "resilience", "rl-variants", "chaos"):
            assert name in EXPERIMENTS

    def test_fig10_is_run_only(self):
        # Its data is folded into the fig8 section; the report must not
        # run the main grid twice.
        assert EXPERIMENTS["fig10"].in_report is False
        in_report = [s.name for s in EXPERIMENT_SPECS if s.in_report]
        assert "fig8" in in_report and "fig10" not in in_report

    def test_store_participation_flags(self):
        for name in ("fig8", "fig10", "ablations", "ambient", "resilience"):
            assert EXPERIMENTS[name].uses_store, name
        for name in ("fig1", "fig5"):
            assert not EXPERIMENTS[name].uses_store, name


class TestReportIterationContract:
    def test_generate_report_renders_registry_in_order(self, monkeypatch):
        import repro.experiments.report as report_mod

        calls = []

        def make_body(tag):
            def body(assets, scale, registry):
                calls.append(tag)
                return f"body-{tag}"

            return body

        fake = (
            ExperimentSpec(
                name="a", title="Section A", paper_claim="claim A",
                body=make_body("a"),
            ),
            ExperimentSpec(
                name="b", title="Section B", paper_claim="claim B",
                body=make_body("b"), in_report=False,
            ),
            ExperimentSpec(
                name="c", title="Section C", paper_claim="claim C",
                body=make_body("c"),
            ),
        )
        monkeypatch.setattr(report_mod, "EXPERIMENT_SPECS", fake)
        text = report_mod.generate_report(
            assets=None,
            scale=report_mod.ReportScale.smoke(),
            progress=None,
        )
        assert calls == ["a", "c"]  # registry order, in_report only
        assert text.index("## Section A") < text.index("## Section C")
        assert "Section B" not in text
        assert "**Paper:** claim A" in text
        assert "body-c" in text

    def test_failing_section_contained_not_fatal(self, monkeypatch):
        """One raising experiment renders as an explicit SECTION FAILED
        entry; the sections around it still run and render."""
        import repro.experiments.report as report_mod
        from repro.obs.metrics import MetricsRegistry

        def ok_body(assets, scale, registry):
            return "fine"

        def broken_body(assets, scale, registry):
            raise RuntimeError("simulated section blow-up")

        fake = (
            ExperimentSpec(
                name="before", title="Section Before", paper_claim="x",
                body=ok_body,
            ),
            ExperimentSpec(
                name="broken", title="Section Broken", paper_claim="x",
                body=broken_body,
            ),
            ExperimentSpec(
                name="after", title="Section After", paper_claim="x",
                body=ok_body,
            ),
        )
        monkeypatch.setattr(report_mod, "EXPERIMENT_SPECS", fake)
        registry = MetricsRegistry()
        text = report_mod.generate_report(
            assets=None,
            scale=report_mod.ReportScale.smoke(),
            progress=None,
            registry=registry,
        )
        assert "## Section Before" in text
        assert "## Section After" in text
        assert "SECTION FAILED" in text
        assert "simulated section blow-up" in text
        assert (
            registry.counter(
                "report_section_failures_total", section="broken"
            ).value
            == 1
        )
