"""Call-graph layer: symbol resolution, type inference, CHA, reachability.

Every test builds a tiny fixture project in ``tmp_path`` and asserts on
the resulting edges/qualnames — the same surface the FORK/KEY/PAR rules
consume, so a regression here is a regression in every project rule.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis.callgraph import build_project
from tools.analysis.interproc import (
    grid_call_sites,
    sim_entry_seeds,
    worker_init_functions,
    worker_seeds,
)


def build(tmp_path: Path, files: dict):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return build_project([tmp_path], repo_root=tmp_path)


class TestResolution:
    def test_resolve_global_follows_reexport(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "from pkg.core import Engine\n",
            "pkg/core.py": "class Engine:\n    def step(self):\n        return 1\n",
        })
        assert project.resolve_global("pkg.Engine") == "pkg.core.Engine"
        assert project.resolve_global("pkg.core.Engine") == "pkg.core.Engine"
        assert project.resolve_global("json.dumps") is None

    def test_module_level_import_makes_call_edge(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/b.py": (
                "from pkg.a import helper\n\n"
                "def entry():\n"
                "    return helper()\n"
            ),
        })
        assert "pkg.a.helper" in project.edges["pkg.b.entry"]

    def test_function_level_import_resolves_call(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/b.py": (
                "def entry():\n"
                "    from pkg.a import helper\n"
                "    return helper()\n"
            ),
        })
        assert "pkg.a.helper" in project.edges["pkg.b.entry"]

    def test_relative_import_resolves(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/b.py": (
                "from .a import helper\n\n"
                "def entry():\n"
                "    return helper()\n"
            ),
        })
        assert "pkg.a.helper" in project.edges["pkg.b.entry"]

    def test_callable_passed_as_argument_is_an_edge(self, tmp_path):
        # A function handed to another function (worker=...) counts as
        # reachable from the caller even though it is never called there.
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": (
                "def _cell(c):\n    return c\n\n"
                "def dispatch(fn, c):\n    return fn(c)\n\n"
                "def entry(c):\n"
                "    return dispatch(_cell, c)\n"
            ),
        })
        assert "pkg.a._cell" in project.edges["pkg.a.entry"]


class TestTypeInference:
    ENGINE = "class Engine:\n    def step(self):\n        return 1\n"

    def test_annotated_param_method_call(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core.py": self.ENGINE,
            "pkg/use.py": (
                "from pkg.core import Engine\n\n"
                "def drive(engine: Engine):\n"
                "    return engine.step()\n"
            ),
        })
        assert "pkg.core.Engine.step" in project.edges["pkg.use.drive"]

    def test_optional_annotation_unwrapped(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core.py": self.ENGINE,
            "pkg/use.py": (
                "from typing import Optional\n"
                "from pkg.core import Engine\n\n"
                "def drive(engine: Optional[Engine]):\n"
                "    return engine.step()\n"
            ),
        })
        assert "pkg.core.Engine.step" in project.edges["pkg.use.drive"]

    def test_constructor_local_binding(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core.py": self.ENGINE,
            "pkg/use.py": (
                "from pkg.core import Engine\n\n"
                "def drive():\n"
                "    engine = Engine()\n"
                "    return engine.step()\n"
            ),
        })
        assert "pkg.core.Engine.step" in project.edges["pkg.use.drive"]

    def test_self_attr_type_from_init(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core.py": self.ENGINE,
            "pkg/use.py": (
                "from pkg.core import Engine\n\n"
                "class Driver:\n"
                "    def __init__(self):\n"
                "        self.engine = Engine()\n"
                "    def run(self):\n"
                "        return self.engine.step()\n"
            ),
        })
        assert "pkg.core.Engine.step" in project.edges["pkg.use.Driver.run"]


class TestClassHierarchy:
    def test_call_through_base_links_overrides(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core.py": (
                "class Base:\n"
                "    def tick(self):\n        return 0\n\n"
                "class Fast(Base):\n"
                "    def tick(self):\n        return 1\n"
            ),
            "pkg/use.py": (
                "from pkg.core import Base\n\n"
                "def drive(b: Base):\n"
                "    return b.tick()\n"
            ),
        })
        edges = project.edges["pkg.use.drive"]
        assert "pkg.core.Base.tick" in edges
        assert "pkg.core.Fast.tick" in edges

    def test_inherited_method_resolves_to_base(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/core.py": (
                "class Base:\n"
                "    def tick(self):\n        return 0\n\n"
                "class Child(Base):\n"
                "    pass\n"
            ),
            "pkg/use.py": (
                "from pkg.core import Child\n\n"
                "def drive(c: Child):\n"
                "    return c.tick()\n"
            ),
        })
        assert "pkg.core.Base.tick" in project.edges["pkg.use.drive"]


class TestReachability:
    def test_transitive_including_nested_defs(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": (
                "def leaf():\n    return 1\n\n"
                "def outer():\n"
                "    def inner():\n"
                "        return leaf()\n"
                "    return inner()\n\n"
                "def unrelated():\n    return 2\n"
            ),
        })
        reach = project.reachable(["pkg.a.outer"])
        assert "pkg.a.leaf" in reach
        assert "pkg.a.unrelated" not in reach

    def test_functions_matching_is_suffix_based(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/kernel.py": (
                "class Simulator:\n"
                "    def step(self):\n        return 1\n"
                "    def stepper(self):\n        return 2\n"
            ),
        })
        hits = project.functions_matching(".Simulator.step")
        assert [f.qualname for f in hits] == ["pkg.kernel.Simulator.step"]


GRID_FILES = {
    "pkg/__init__.py": "",
    "pkg/parallel.py": (
        "def run_cells(grid, worker, init=None, batch_plan=None,"
        " cell_key=None):\n"
        "    return [worker(c) for c in grid]\n"
    ),
    "pkg/exp.py": (
        "from pkg.parallel import run_cells\n\n"
        "def _cell(cell):\n    return cell\n\n"
        "def _init():\n    return None\n\n"
        "def run_experiment(grid):\n"
        "    def _key(cell):\n"
        "        return cell\n"
        "    return run_cells(grid, _cell, init=_init, cell_key=_key)\n"
    ),
}


class TestGridSites:
    def test_positional_worker_and_kwargs_resolved(self, tmp_path):
        project = build(tmp_path, dict(GRID_FILES))
        [site] = grid_call_sites(project)
        assert site.worker == "pkg.exp._cell"
        assert site.init == "pkg.exp._init"
        assert site.batch_plan is None
        # cell_key bound to a closure nested in the calling function.
        assert site.cell_key == "pkg.exp.run_experiment._key"

    def test_worker_seeds_and_init_set(self, tmp_path):
        files = dict(GRID_FILES)
        files["pkg/kernel.py"] = (
            "class Simulator:\n"
            "    def step(self):\n        return 1\n"
        )
        files["pkg/hot.py"] = (
            "from pkg.util import hot_path\n\n"
            "@hot_path\n"
            "def inner_loop(x):\n    return x\n"
        )
        files["pkg/util.py"] = "def hot_path(fn):\n    return fn\n"
        project = build(tmp_path, files)
        seeds = worker_seeds(project)
        assert "pkg.exp._cell" in seeds
        assert "pkg.exp._init" in seeds
        assert "pkg.kernel.Simulator.step" in seeds
        assert "pkg.hot.inner_loop" in seeds
        assert worker_init_functions(project) == {"pkg.exp._init"}

    def test_sim_entry_seeds(self, tmp_path):
        project = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/kernel.py": (
                "class Simulator:\n"
                "    def __init__(self):\n        self.t = 0\n"
                "    def step(self):\n        return 1\n"
            ),
            "pkg/workload.py": "def run_workload(cfg):\n    return cfg\n",
        })
        seeds = sim_entry_seeds(project)
        assert "pkg.kernel.Simulator.__init__" in seeds
        assert "pkg.kernel.Simulator.step" in seeds
        assert "pkg.workload.run_workload" in seeds
