"""Multi-cluster generalization: the paper claims compatibility with any
number of clusters.  These tests run the whole stack — substrate, trace
collection, dataset building, NN training, and the TOP-IL policy — on a
synthetic tri-cluster (LITTLE / big / prime) platform."""

import dataclasses

import pytest

from repro.governors.qos_dvfs import QoSDVFSControlLoop
from repro.il.dataset import DatasetBuilder
from repro.il.features import FeatureExtractor
from repro.il.policy import TopILMigrationPolicy
from repro.il.traces import TraceCollector, TraceScenario
from repro.nn.layers import build_mlp
from repro.nn.training import TrainingConfig, train_model
from repro.platform.synthetic import (
    BIG,
    LITTLE,
    PRIME,
    synthetic_app,
    tricluster,
)
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING, build_thermal_network
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def tri():
    return tricluster()


@pytest.fixture(scope="module")
def tri_grid(tri):
    """A small trace grid on the tri-cluster platform."""
    import repro.apps.catalog as catalog_module

    app = synthetic_app("tri-kernel")
    # Trace collection resolves apps by name through the catalog; register
    # the synthetic app for the duration of the module.
    saved = dict(catalog_module._CATALOG)
    catalog_module._CATALOG["tri-kernel"] = app
    try:
        collector = TraceCollector(
            tri,
            vf_levels_per_cluster=2,
            max_window_s=2.0,
            min_window_s=1.5,
            dt_s=0.02,
        )
        scenario = TraceScenario(
            aoi_app="tri-kernel", background=((1, "tri-kernel"),)
        )
        yield collector.collect(scenario, aoi_cores=[0, 4, 7])
    finally:
        catalog_module._CATALOG.clear()
        catalog_module._CATALOG.update(saved)


class TestPlatform:
    def test_three_clusters_eight_cores(self, tri):
        assert set(tri.cluster_names) == {LITTLE, BIG, PRIME}
        assert tri.n_cores == 8

    def test_prime_is_fastest_cluster(self, tri):
        freqs = {
            name: tri.cluster(name).vf_table.max_level.frequency_hz
            for name in tri.cluster_names
        }
        assert freqs[PRIME] > freqs[BIG] > freqs[LITTLE]

    def test_thermal_network_builds(self, tri):
        net = build_thermal_network(tri, FAN_COOLING)
        assert set(net.node_names) == set(tri.floorplan) | {"board"}


class TestSubstrate:
    def test_simulation_runs(self, tri):
        sim = Simulator(
            tri,
            FAN_COOLING,
            config=SimConfig(dt_s=0.02, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        app = dataclasses.replace(
            synthetic_app(), total_instructions=1e15
        )
        for _ in range(3):
            sim.submit(app, 1e8, 0.0)
        sim.run_for(2.0)
        assert len(sim.running_processes()) == 3
        assert sim.total_power_w() > 0

    def test_dvfs_loop_handles_three_clusters(self, tri):
        sim = Simulator(
            tri,
            FAN_COOLING,
            config=SimConfig(dt_s=0.02, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        for cluster in tri.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
        QoSDVFSControlLoop().attach(sim)
        sim.run_for(1.0)
        # Idle clusters all drop to their lowest level.
        for cluster in tri.clusters:
            assert sim.vf_level(cluster.name) == cluster.vf_table.min_level


class TestFeatureVector:
    def test_feature_count_adapts(self, tri):
        extractor = FeatureExtractor(tri)
        # 3 scalars + 8 one-hot + 3 cluster ratios + 8 utilizations = 22.
        assert extractor.n_features == 22


class TestILOnTricluster:
    def test_trace_grid_covers_all_clusters(self, tri_grid):
        assert tri_grid.aoi_cores() == [0, 4, 7]
        # 3 cores x 2^3 VF combinations.
        assert len(tri_grid.points) == 24

    def test_dataset_builds(self, tri, tri_grid):
        builder = DatasetBuilder(tri, qos_fractions=(0.3, 0.7))
        dataset = builder.build_from_grid(tri_grid)
        assert len(dataset) > 0
        assert dataset.features.shape[1] == 22
        assert dataset.labels.shape[1] == 8

    def test_policy_runs_end_to_end(self, tri, tri_grid):
        builder = DatasetBuilder(tri, qos_fractions=(0.3, 0.7))
        dataset = builder.build_from_grid(tri_grid)
        model = build_mlp(22, 8, 2, 16, RandomSource(0))
        train_model(
            model,
            dataset.features,
            dataset.labels,
            TrainingConfig(max_epochs=30, patience=10),
        )
        sim = Simulator(
            tri,
            FAN_COOLING,
            config=SimConfig(dt_s=0.02, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        loop = QoSDVFSControlLoop()
        loop.attach(sim)
        policy = TopILMigrationPolicy(model, period_s=0.5, dvfs_loop=loop)
        policy.attach(sim)
        app = dataclasses.replace(synthetic_app(), total_instructions=1e15)
        sim.submit(app, 5e8, 0.0)
        sim.run_for(3.0)
        assert policy.invocations >= 5  # ran without shape errors
