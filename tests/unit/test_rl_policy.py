"""TOP-RL migration policy: reward, mediator, learning."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.rl.policy import RLConfig, TopRLMigrationPolicy
from repro.rl.qtable import QTable
from repro.rl.state import N_STATES
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.rng import RandomSource


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name="syr2k"):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


class TestReward:
    def test_temperature_reward_when_qos_met(self, platform):
        sim = _sim(platform)
        sim.submit(_long(), 1e6, 0.0)  # trivially met target
        sim.run_for(0.5)
        policy = TopRLMigrationPolicy(rng=RandomSource(0))
        reward = policy.reward(sim)
        assert reward == pytest.approx(80.0 - sim.sensor_temp_c(), abs=0.5)

    def test_violation_reward_is_minus_200(self, platform):
        sim = _sim(platform)
        sim.submit(_long(), 1e6, 0.0)
        sim.run_for(0.5)
        sim.running_processes()[0].qos_target_ips = 1e13
        policy = TopRLMigrationPolicy(rng=RandomSource(0))
        assert policy.reward(sim) == -200.0


class TestMediator:
    def test_single_action_per_epoch(self, platform):
        sim = _sim(platform)
        policy = TopRLMigrationPolicy(rng=RandomSource(0))
        for _ in range(4):
            sim.submit(_long(), 1e6, 0.0)
        sim.run_for(0.3)
        migrations_before = len(sim.trace.migrations)
        policy(sim)
        executed = len(
            [m for m in sim.trace.migrations if m.from_core is not None]
        ) - len([m for m in sim.trace.migrations[:migrations_before] if m.from_core is not None])
        assert executed <= 1

    def test_highest_q_proposal_wins(self, platform):
        sim = _sim(platform)
        table = QTable(N_STATES, 8)
        policy = TopRLMigrationPolicy(
            qtable=table,
            config=RLConfig(epsilon=0.0),
            rng=RandomSource(0),
        )
        pids = [sim.submit(_long(), 1e6, 0.0) for _ in range(2)]
        order = iter([0, 4])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(0.3)
        from repro.rl.state import StateQuantizer

        q = StateQuantizer(platform)
        s0 = q.state_of(sim, sim.process(pids[0]))
        s1 = q.state_of(sim, sim.process(pids[1]))
        table.values[s0, 7] = 1.0   # proposal of agent 0
        table.values[s1, 2] = 10.0  # proposal of agent 1 (higher Q)
        policy(sim)
        assert sim.process(pids[1]).core_id == 2
        assert sim.process(pids[0]).core_id == 0

    def test_learning_updates_only_selected_agent(self, platform):
        sim = _sim(platform)
        table = QTable(N_STATES, 8)
        policy = TopRLMigrationPolicy(
            qtable=table, config=RLConfig(epsilon=0.0), rng=RandomSource(0)
        )
        sim.submit(_long(), 1e6, 0.0)
        sim.run_for(0.3)
        policy(sim)  # selects and executes an action
        updates_before = table.updates
        sim.run_for(0.5)
        policy(sim)  # learns from the previous action
        assert table.updates == updates_before + 1


class TestLearningDynamics:
    def test_violation_penalty_discourages_action(self, platform):
        sim = _sim(platform)
        table = QTable(N_STATES, 8)
        policy = TopRLMigrationPolicy(
            qtable=table, config=RLConfig(epsilon=0.0), rng=RandomSource(0)
        )
        pid = sim.submit(_long(), 1e6, 0.0)
        sim.run_for(0.3)
        policy(sim)
        _, state, action = policy._last_executed
        sim.process(pid).qos_target_ips = 1e13  # force violation
        sim.run_for(0.3)
        policy(sim)
        assert table.q(state, action) < 0

    def test_learning_disabled_freezes_table(self, platform):
        sim = _sim(platform)
        table = QTable(N_STATES, 8)
        policy = TopRLMigrationPolicy(
            qtable=table, learning_enabled=False, rng=RandomSource(0)
        )
        sim.submit(_long(), 1e6, 0.0)
        sim.run_for(0.3)
        policy(sim)
        sim.run_for(0.5)
        policy(sim)
        assert table.updates == 0

    def test_exploration_rate_zero_is_greedy(self, platform):
        sim = _sim(platform)
        table = QTable(N_STATES, 8)
        table.values[:, 3] = 1.0  # core 3 globally attractive
        policy = TopRLMigrationPolicy(
            qtable=table, config=RLConfig(epsilon=0.0), rng=RandomSource(0)
        )
        pid = sim.submit(_long(), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.run_for(0.3)
        policy(sim)
        assert sim.process(pid).core_id == 3

    def test_finished_process_skipped_in_update(self, platform):
        sim = _sim(platform)
        short = dataclasses.replace(get_app("syr2k"), total_instructions=5e8)
        policy = TopRLMigrationPolicy(rng=RandomSource(0))
        sim.submit(short, 1e6, 0.0)
        sim.run_for(0.3)
        policy(sim)
        sim.run_for(5.0)  # process finishes
        policy(sim)  # must not raise
        assert not sim.running_processes()

    def test_overhead_charged(self, platform):
        sim = _sim(platform)
        policy = TopRLMigrationPolicy(rng=RandomSource(0))
        sim.submit(_long(), 1e6, 0.0)
        sim.run_for(0.2)
        policy(sim)
        assert sim.overhead_cpu_s["migration"] > 0


class TestPaperDefaults:
    def test_rl_config_matches_paper(self):
        """Sec. 6.3: eps=0.1, gamma=0.8, alpha=0.05, 500 ms epochs."""
        cfg = RLConfig()
        assert cfg.epsilon == pytest.approx(0.1)
        assert cfg.discount == pytest.approx(0.8)
        assert cfg.learning_rate == pytest.approx(0.05)
        assert cfg.period_s == pytest.approx(0.5)

    def test_reward_constants_match_paper(self):
        """Eq. 7: r = 80C - T, or -200 on a QoS violation."""
        cfg = RLConfig()
        assert cfg.reward_offset_c == pytest.approx(80.0)
        assert cfg.qos_violation_reward == pytest.approx(-200.0)
