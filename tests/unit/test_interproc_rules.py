"""Interprocedural rule families (FORK/KEY/PAR) against fixture projects.

Each family gets a seeded-violation fixture (the rule must fire, at the
right symbol) and a clean fixture (the rule must stay silent) — plus the
rule-specific escape hatches: ``init=`` exemption and inline waivers for
FORK001, the result-neutral allowlist and fold-surface reachability for
KEY001, whole-object folding for KEY002, and ``--update-parity`` /
``scalar_only`` for PAR001.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis.callgraph import build_project
from tools.analysis.interproc import analyze_project
from tools.analysis.rules.cachekeys import (
    CellKeyFieldOmittedRule,
    EnvReadNotFoldedRule,
)
from tools.analysis.rules.forksafety import (
    ForkEnvironMutationRule,
    ForkGlobalRngRule,
    ForkModuleStateRule,
)
from tools.analysis.rules.parity import (
    ParityGroup,
    ParityRegistry,
    ScalarBatchParityRule,
    update_parity,
)

RUN_CELLS = (
    "def run_cells(grid, worker, init=None, batch_plan=None, cell_key=None):\n"
    "    return [worker(c) for c in grid]\n"
)


def write(tmp_path: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def run(tmp_path: Path, files: dict, rule, honor_allowlist: bool = True):
    root = write(tmp_path, files)
    return analyze_project(
        [root], [rule], repo_root=root, honor_allowlist=honor_allowlist
    )


def base(files: dict) -> dict:
    out = {"pkg/__init__.py": "", "pkg/parallel.py": RUN_CELLS}
    out.update(files)
    return out


class TestFork001ModuleState:
    def test_worker_writing_module_dict_fires(self, tmp_path):
        files = base({"pkg/exp.py": (
            "from pkg.parallel import run_cells\n\n"
            "_CACHE = {}\n\n"
            "def _cell(cell):\n"
            "    _CACHE[cell] = 1\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        [v] = run(tmp_path, files, ForkModuleStateRule())
        assert v.rule_id == "FORK001"
        assert "_CACHE" in v.message
        assert v.symbol.endswith("._cell")

    def test_transitive_helper_also_flagged(self, tmp_path):
        files = base({"pkg/exp.py": (
            "from pkg.parallel import run_cells\n\n"
            "_CACHE = {}\n\n"
            "def _stash(cell):\n"
            "    _CACHE.setdefault(cell, 1)\n\n"
            "def _cell(cell):\n"
            "    _stash(cell)\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        [v] = run(tmp_path, files, ForkModuleStateRule())
        assert v.symbol.endswith("._stash")

    def test_init_bound_function_exempt(self, tmp_path):
        files = base({"pkg/exp.py": (
            "from pkg.parallel import run_cells\n\n"
            "_STASH = {}\n\n"
            "def _init():\n"
            "    _STASH['cfg'] = 1\n\n"
            "def _cell(cell):\n"
            "    return _STASH['cfg'] + cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell, init=_init)\n"
        )})
        assert run(tmp_path, files, ForkModuleStateRule()) == []

    def test_init_exemption_does_not_cover_callees(self, tmp_path):
        files = base({"pkg/exp.py": (
            "from pkg.parallel import run_cells\n\n"
            "_STASH = {}\n\n"
            "def _store():\n"
            "    _STASH['cfg'] = 1\n\n"
            "def _init():\n"
            "    _store()\n\n"
            "def _cell(cell):\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell, init=_init)\n"
        )})
        [v] = run(tmp_path, files, ForkModuleStateRule())
        assert v.symbol.endswith("._store")

    def test_inline_waiver_honored(self, tmp_path):
        files = base({"pkg/exp.py": (
            "from pkg.parallel import run_cells\n\n"
            "_CACHE = {}\n\n"
            "def _cell(cell):\n"
            "    _CACHE[cell] = 1  # repro-lint: ignore[FORK001]\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        assert run(tmp_path, files, ForkModuleStateRule()) == []
        flagged = run(
            tmp_path, files, ForkModuleStateRule(), honor_allowlist=False
        )
        assert [v.rule_id for v in flagged] == ["FORK001"]

    def test_local_shadow_is_clean(self, tmp_path):
        files = base({"pkg/exp.py": (
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    cache = {}\n"
            "    cache[cell] = 1\n"
            "    cache.update({cell: 2})\n"
            "    return cache[cell]\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        assert run(tmp_path, files, ForkModuleStateRule()) == []


class TestFork002Environ:
    def test_environ_store_fires(self, tmp_path):
        files = base({"pkg/exp.py": (
            "import os\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    os.environ['REPRO_FAULTS'] = 'x'\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        [v] = run(tmp_path, files, ForkEnvironMutationRule())
        assert v.rule_id == "FORK002"

    def test_environ_pop_fires(self, tmp_path):
        files = base({"pkg/exp.py": (
            "import os\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    os.environ.pop('REPRO_FAULTS', None)\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        [v] = run(tmp_path, files, ForkEnvironMutationRule())
        assert "pop" in v.message

    def test_read_only_access_is_clean(self, tmp_path):
        files = base({"pkg/exp.py": (
            "import os\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    return os.environ.get('REPRO_FAULTS'), cell\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        assert run(tmp_path, files, ForkEnvironMutationRule()) == []

    def test_mutation_outside_worker_is_clean(self, tmp_path):
        # The parent process may set carriers pre-fork: only
        # worker-reachable mutation is flagged.
        files = base({"pkg/exp.py": (
            "import os\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    return cell\n\n"
            "def run(grid):\n"
            "    os.environ['REPRO_FAULTS'] = 'x'\n"
            "    return run_cells(grid, _cell)\n"
        )})
        assert run(tmp_path, files, ForkEnvironMutationRule()) == []


class TestFork003GlobalRng:
    def test_np_random_module_call_fires(self, tmp_path):
        files = base({"pkg/exp.py": (
            "import numpy as np\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    return np.random.rand(3)\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        [v] = run(tmp_path, files, ForkGlobalRngRule())
        assert "np.random.rand" in v.message

    def test_stdlib_random_fires(self, tmp_path):
        files = base({"pkg/exp.py": (
            "import random\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    return random.random()\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        [v] = run(tmp_path, files, ForkGlobalRngRule())
        assert "stdlib" in v.message

    def test_explicit_generator_is_clean(self, tmp_path):
        files = base({"pkg/exp.py": (
            "import numpy as np\n"
            "from pkg.parallel import run_cells\n\n"
            "def _cell(cell):\n"
            "    rng = np.random.Generator(np.random.PCG64(cell))\n"
            "    return rng.random()\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell)\n"
        )})
        assert run(tmp_path, files, ForkGlobalRngRule()) == []

    def test_sanctioned_rng_module_exempt(self, tmp_path):
        files = base({
            "repro/__init__.py": "",
            "repro/utils/__init__.py": "",
            "repro/utils/rng.py": (
                "import numpy as np\n\n"
                "def make(seed):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "pkg/exp.py": (
                "from pkg.parallel import run_cells\n"
                "from repro.utils.rng import make\n\n"
                "def _cell(cell):\n"
                "    return make(cell).random()\n\n"
                "def run(grid):\n"
                "    return run_cells(grid, _cell)\n"
            ),
        })
        assert run(tmp_path, files, ForkGlobalRngRule()) == []


STORE_FOLDING = (
    "import os\n\n"
    "FAULTS_ENV = 'REPRO_FAULTS'\n\n"
    "class ArtifactKey:\n"
    "    @classmethod\n"
    "    def create(cls, kind, config):\n"
    "        return (kind, config, os.environ.get(FAULTS_ENV))\n"
)


class TestKey001EnvFolding:
    def test_unfolded_repro_env_read_fires(self, tmp_path):
        files = base({
            "pkg/store.py": STORE_FOLDING,
            "pkg/run.py": (
                "import os\n\n"
                "def run_workload(cfg):\n"
                "    knob = os.environ.get('REPRO_KNOB')\n"
                "    faults = os.environ.get('REPRO_FAULTS')\n"
                "    trace = os.environ.get('REPRO_TRACE')\n"
                "    return cfg, knob, faults, trace\n"
            ),
        })
        [v] = run(tmp_path, files, EnvReadNotFoldedRule())
        assert v.rule_id == "KEY001"
        assert "REPRO_KNOB" in v.message

    def test_folded_and_neutral_reads_are_clean(self, tmp_path):
        files = base({
            "pkg/store.py": STORE_FOLDING,
            "pkg/run.py": (
                "import os\n"
                "from pkg.store import FAULTS_ENV\n\n"
                "def run_workload(cfg):\n"
                "    faults = os.environ.get(FAULTS_ENV)\n"
                "    trace = os.environ.get('REPRO_TRACE')\n"
                "    return cfg, faults, trace\n"
            ),
        })
        assert run(tmp_path, files, EnvReadNotFoldedRule()) == []

    def test_non_repro_env_ignored(self, tmp_path):
        files = base({"pkg/run.py": (
            "import os\n\n"
            "def run_workload(cfg):\n"
            "    return cfg, os.environ.get('HOME')\n"
        )})
        assert run(tmp_path, files, EnvReadNotFoldedRule()) == []

    def test_unresolvable_env_name_fires(self, tmp_path):
        files = base({"pkg/run.py": (
            "import os\n\n"
            "def run_workload(cfg, name):\n"
            "    return cfg, os.environ.get(name)\n"
        )})
        [v] = run(tmp_path, files, EnvReadNotFoldedRule())
        assert "could not be resolved" in v.message

    def test_read_outside_sim_reachable_code_ignored(self, tmp_path):
        files = base({"pkg/cli.py": (
            "import os\n\n"
            "def main():\n"
            "    return os.environ.get('REPRO_KNOB')\n"
        )})
        assert run(tmp_path, files, EnvReadNotFoldedRule()) == []


def key2_files(create_args: str) -> dict:
    return base({
        "pkg/store.py": (
            "class ArtifactKey:\n"
            "    @classmethod\n"
            "    def create(cls, kind, config):\n"
            "        return (kind, config)\n"
        ),
        "pkg/exp.py": (
            "from dataclasses import dataclass\n"
            "from pkg.parallel import run_cells\n"
            "from pkg.store import ArtifactKey\n\n"
            "@dataclass\n"
            "class Config:\n"
            "    alpha: int = 0\n"
            "    beta: int = 0\n\n"
            "def _cell(cell):\n"
            "    cfg: Config = cell\n"
            "    return cfg.alpha + cfg.beta\n\n"
            "def _key(cell):\n"
            "    cfg: Config = cell\n"
            f"    return ArtifactKey.create('cell/x', {create_args})\n\n"
            "def run(grid):\n"
            "    return run_cells(grid, _cell, cell_key=_key)\n"
        ),
    })


class TestKey002FieldCoverage:
    def test_omitted_field_fires(self, tmp_path):
        files = key2_files("{'alpha': cfg.alpha}")
        [v] = run(tmp_path, files, CellKeyFieldOmittedRule())
        assert v.rule_id == "KEY002"
        assert "beta" in v.message
        assert v.symbol.endswith("._key")

    def test_all_fields_folded_is_clean(self, tmp_path):
        files = key2_files("{'alpha': cfg.alpha, 'beta': cfg.beta}")
        assert run(tmp_path, files, CellKeyFieldOmittedRule()) == []

    def test_whole_object_fold_is_clean(self, tmp_path):
        files = key2_files("cfg")
        assert run(tmp_path, files, CellKeyFieldOmittedRule()) == []


KERNEL_V1 = (
    "class Simulator:\n"
    "    def step(self):\n"
    "        return self._tick_helper()\n"
    "    def _tick_helper(self):\n"
    "        return 1\n"
)
BATCH_V1 = (
    "class BatchSimulator:\n"
    "    def _tick(self):\n"
    "        return 1\n"
)


def parity_registry(tmp_path: Path, scalar_only=None) -> Path:
    registry = ParityRegistry(
        kernel_root="pkg.kernel.Simulator.step",
        groups=[ParityGroup(
            name="step",
            scalar=["pkg.kernel.Simulator.step"],
            batch=["pkg.batch.BatchSimulator._tick"],
        )],
        scalar_only=(
            scalar_only
            if scalar_only is not None
            else {"pkg.kernel.Simulator._tick_helper": "no batch twin"}
        ),
    )
    path = tmp_path / "parity.json"
    path.write_text(registry.to_json())
    return path


def parity_rule(path: Path) -> ScalarBatchParityRule:
    rule = ScalarBatchParityRule()
    rule.registry_path = path
    return rule


def parity_project(tmp_path: Path, kernel: str = KERNEL_V1,
                   batch: str = BATCH_V1):
    root = write(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/kernel.py": kernel,
        "pkg/batch.py": batch,
    })
    return build_project([root], repo_root=root)


class TestPar001Parity:
    def test_unrecorded_hashes_fire(self, tmp_path):
        path = parity_registry(tmp_path)
        project = parity_project(tmp_path)
        [v] = list(parity_rule(path).check_project(project))
        assert "no recorded hash" in v.message

    def test_update_parity_then_clean(self, tmp_path):
        path = parity_registry(tmp_path)
        project = parity_project(tmp_path)
        assert update_parity(project, path) == ["step"]
        assert list(parity_rule(path).check_project(project)) == []
        # Idempotent: a second update refreshes nothing.
        assert update_parity(project, path) == []

    def test_scalar_edit_without_batch_twin_fires(self, tmp_path):
        path = parity_registry(tmp_path)
        update_parity(parity_project(tmp_path), path)
        edited = parity_project(
            tmp_path,
            kernel=KERNEL_V1.replace(
                "return self._tick_helper()", "return self._tick_helper() + 1"
            ),
        )
        [v] = list(parity_rule(path).check_project(edited))
        assert "scalar side" in v.message and "batch twin did not" in v.message
        assert v.symbol == "pkg.kernel.Simulator.step"

    def test_batch_edit_without_scalar_twin_fires(self, tmp_path):
        path = parity_registry(tmp_path)
        update_parity(parity_project(tmp_path), path)
        edited = parity_project(
            tmp_path, batch=BATCH_V1.replace("return 1", "return 2")
        )
        [v] = list(parity_rule(path).check_project(edited))
        assert "batch side" in v.message

    def test_both_sides_changed_requires_refresh(self, tmp_path):
        path = parity_registry(tmp_path)
        update_parity(parity_project(tmp_path), path)
        edited = parity_project(
            tmp_path,
            kernel=KERNEL_V1.replace(
                "return self._tick_helper()", "return self._tick_helper() + 1"
            ),
            batch=BATCH_V1.replace("return 1", "return 2"),
        )
        [v] = list(parity_rule(path).check_project(edited))
        assert "--update-parity" in v.message

    def test_docstring_and_comment_edits_do_not_fire(self, tmp_path):
        path = parity_registry(tmp_path)
        update_parity(parity_project(tmp_path), path)
        reformatted = KERNEL_V1.replace(
            "    def step(self):\n",
            "    def step(self):\n"
            '        """Advance one slot."""  # a comment\n',
        )
        edited = parity_project(tmp_path, kernel=reformatted)
        assert list(parity_rule(path).check_project(edited)) == []

    def test_missing_listed_function_fires(self, tmp_path):
        path = parity_registry(tmp_path)
        update_parity(parity_project(tmp_path), path)
        edited = parity_project(
            tmp_path, batch="class BatchSimulator:\n    pass\n"
        )
        violations = list(parity_rule(path).check_project(edited))
        assert any("no longer exists" in v.message for v in violations)

    def test_unmapped_private_kernel_method_fires(self, tmp_path):
        path = parity_registry(tmp_path, scalar_only={})
        update_parity(parity_project(tmp_path), path)
        [v] = list(parity_rule(path).check_project(parity_project(tmp_path)))
        assert "unmapped" in v.message
        assert v.symbol == "pkg.kernel.Simulator._tick_helper"

    def test_missing_registry_file_is_silent(self, tmp_path):
        project = parity_project(tmp_path)
        rule = parity_rule(tmp_path / "absent.json")
        assert list(rule.check_project(project)) == []
