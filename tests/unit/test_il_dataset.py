"""Training-data extraction: Eq. 3 trace selection and Eq. 4 labels."""

import numpy as np
import pytest

from repro.il.dataset import (
    DatasetBuilder,
    ILDataset,
    LabelConfig,
    _Selection,
)
from repro.il.traces import TracePoint
from repro.platform import hikey970  # noqa: F401 (platform fixture lives in conftest)
from repro.platform.hikey import BIG, LITTLE


# The session-scoped `platform` fixture comes from tests/conftest.py.


@pytest.fixture
def builder(platform):
    return DatasetBuilder(platform)


def _point(core, temp, ips=1e9):
    return TracePoint(
        aoi_core=core,
        f_hz=((BIG, 1e9), (LITTLE, 1e9)),
        aoi_ips=ips,
        aoi_l2d_rate=1e7,
        peak_temp_c=temp,
    )


class TestLabels:
    def test_optimal_mapping_gets_one(self, builder):
        sels = {
            0: _Selection(_point(0, 40.0), {}),
            4: _Selection(_point(4, 45.0), {}),
        }
        labels = builder.make_labels(sels, occupied=[])
        assert labels[0] == pytest.approx(1.0)

    def test_soft_decay_matches_eq4(self, builder):
        """l_j = exp(-alpha (T_j - T_min)) with alpha = 1."""
        sels = {
            0: _Selection(_point(0, 40.0), {}),
            4: _Selection(_point(4, 44.0), {}),
        }
        labels = builder.make_labels(sels, occupied=[])
        assert labels[4] == pytest.approx(np.exp(-4.0))

    def test_paper_example_line_one(self, builder):
        """42.5C vs 46.6C -> labels 1.00 and 0.02 (Fig. 2c line I)."""
        sels = {
            3: _Selection(_point(3, 42.5), {}),
            6: _Selection(_point(6, 46.6), {}),
        }
        labels = builder.make_labels(sels, occupied=[0, 1, 2, 4, 5, 7])
        assert labels[3] == pytest.approx(1.0)
        assert labels[6] == pytest.approx(0.0166, abs=0.005)

    def test_infeasible_core_gets_minus_one(self, builder):
        sels = {
            3: _Selection(None, {}),
            6: _Selection(_point(6, 52.2), {}),
        }
        labels = builder.make_labels(sels, occupied=[])
        assert labels[3] == -1.0
        assert labels[6] == pytest.approx(1.0)

    def test_occupied_cores_get_zero(self, builder):
        sels = {0: _Selection(_point(0, 40.0), {})}
        labels = builder.make_labels(sels, occupied=[1, 2])
        assert labels[1] == 0.0 and labels[2] == 0.0

    def test_all_infeasible_returns_none(self, builder):
        sels = {0: _Selection(None, {}), 4: _Selection(None, {})}
        assert builder.make_labels(sels, occupied=[]) is None

    def test_alpha_controls_decay(self, platform):
        sharp = DatasetBuilder(platform, LabelConfig(alpha=2.0))
        sels = {
            0: _Selection(_point(0, 40.0), {}),
            4: _Selection(_point(4, 41.0), {}),
        }
        labels = sharp.make_labels(sels, occupied=[])
        assert labels[4] == pytest.approx(np.exp(-2.0))

    def test_hard_labels_one_hot(self, platform):
        hard = DatasetBuilder(platform, LabelConfig(hard_labels=True))
        sels = {
            0: _Selection(_point(0, 40.0), {}),
            4: _Selection(_point(4, 41.0), {}),
        }
        labels = hard.make_labels(sels, occupied=[])
        assert labels[0] == 1.0 and labels[4] == 0.0


class TestSelectTrace:
    def test_respects_background_floor(self, builder, tiny_trace_grid):
        grid = tiny_trace_grid
        hi_l = grid.vf_grid[LITTLE][-1]
        f_wo = {LITTLE: hi_l, BIG: grid.vf_grid[BIG][0]}
        sel = builder.select_trace(grid, 0, qos_target=1.0, f_wo_aoi=f_wo)
        assert sel.f_hz[LITTLE] == hi_l

    def test_raises_aoi_cluster_until_target(self, builder, tiny_trace_grid):
        grid = tiny_trace_grid
        f_wo = {n: grid.vf_grid[n][0] for n in grid.vf_grid}
        easy = builder.select_trace(grid, 0, qos_target=1.0, f_wo_aoi=f_wo)
        hard_target = grid.lookup(
            0, {LITTLE: grid.vf_grid[LITTLE][-1], BIG: grid.vf_grid[BIG][0]}
        ).aoi_ips * 0.99
        hard = builder.select_trace(grid, 0, hard_target, f_wo_aoi=f_wo)
        assert hard.f_hz[LITTLE] > easy.f_hz[LITTLE]

    def test_infeasible_returns_none_point(self, builder, tiny_trace_grid):
        grid = tiny_trace_grid
        f_wo = {n: grid.vf_grid[n][0] for n in grid.vf_grid}
        sel = builder.select_trace(grid, 0, qos_target=1e12, f_wo_aoi=f_wo)
        assert sel.point is None

    def test_non_aoi_cluster_stays_at_background_level(
        self, builder, tiny_trace_grid
    ):
        grid = tiny_trace_grid
        f_wo = {n: grid.vf_grid[n][0] for n in grid.vf_grid}
        sel = builder.select_trace(grid, 0, qos_target=1.0, f_wo_aoi=f_wo)
        assert sel.f_hz[BIG] == grid.vf_grid[BIG][0]


class TestBuildFromGrid:
    def test_examples_generated(self, builder, tiny_trace_grid):
        dataset = builder.build_from_grid(tiny_trace_grid)
        assert len(dataset) > 0
        assert dataset.features.shape[1] == builder.extractor.n_features
        assert dataset.labels.shape[1] == 8

    def test_labels_within_range(self, builder, tiny_trace_grid):
        dataset = builder.build_from_grid(tiny_trace_grid)
        assert dataset.labels.min() >= -1.0
        assert dataset.labels.max() <= 1.0

    def test_every_label_row_has_an_optimum_or_infeasible(
        self, builder, tiny_trace_grid
    ):
        dataset = builder.build_from_grid(tiny_trace_grid)
        for row in dataset.labels:
            assert row.max() == pytest.approx(1.0)

    def test_meta_records_aoi_and_source(self, builder, tiny_trace_grid):
        dataset = builder.build_from_grid(tiny_trace_grid)
        apps = {m[0] for m in dataset.meta}
        sources = {m[1] for m in dataset.meta}
        assert apps == {"seidel-2d"}
        assert sources.issubset({0, 4})

    def test_occupied_cores_labeled_zero(self, builder, tiny_trace_grid):
        dataset = builder.build_from_grid(tiny_trace_grid)
        # Background sits on cores 1 and 5 in the fixture scenario.
        assert np.all(dataset.labels[:, 1] == 0.0)
        assert np.all(dataset.labels[:, 5] == 0.0)


class TestILDataset:
    def _dataset(self):
        return ILDataset(
            features=np.arange(12).reshape(3, 4).astype(float),
            labels=np.ones((3, 2)),
            meta=[("adi", 0), ("seidel-2d", 1), ("adi", 2)],
        )

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ILDataset(np.ones((2, 3)), np.ones((3, 2)), [("a", 0)] * 3)

    def test_filter_by_apps(self):
        ds = self._dataset().filter_by_apps(["adi"])
        assert len(ds) == 2
        assert all(m[0] == "adi" for m in ds.meta)

    def test_merge(self):
        merged = self._dataset().merge(self._dataset())
        assert len(merged) == 6

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        ds = self._dataset()
        ds.save(path)
        loaded = ILDataset.load(path, expected_features=4)
        assert np.allclose(loaded.features, ds.features)
        assert np.allclose(loaded.labels, ds.labels)
        assert loaded.meta == ds.meta

    def test_load_rejects_wrong_feature_width(self, tmp_path):
        path = str(tmp_path / "ds.npz")
        self._dataset().save(path)  # 4 features, not FEATURE_COUNT
        with pytest.raises(ValueError, match="ds.npz"):
            ILDataset.load(path)
