"""GTS scheduler: placement, up-migration, spreading."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.governors.gts import GTSScheduler
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING


@pytest.fixture(scope="module")
def platform():
    return hikey970()


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name="adi"):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


class TestPlacement:
    def test_prefers_big_cluster(self, platform):
        sim = _sim(platform)
        GTSScheduler().attach(sim)
        pid = sim.submit(_long(), 1e8, 0.0)
        sim.step()
        assert sim.process(pid).core_id in platform.cores_in_cluster(BIG)

    def test_fills_big_then_little(self, platform):
        sim = _sim(platform)
        GTSScheduler().attach(sim)
        pids = [sim.submit(_long(), 1e8, 0.0) for _ in range(6)]
        sim.step()
        big_cores = set(platform.cores_in_cluster(BIG))
        on_big = [p for p in pids if sim.process(p).core_id in big_cores]
        assert len(on_big) == 4
        assert all(sim.process(p).core_id is not None for p in pids)

    def test_overflow_shares_big_cores(self, platform):
        sim = _sim(platform)
        GTSScheduler().attach(sim)
        pids = [sim.submit(_long(), 1e8, 0.0) for _ in range(10)]
        sim.step()
        counts = [len(sim.processes_on_core(c)) for c in range(8)]
        assert max(counts) == 2
        assert sum(counts) == 10


class TestBalancing:
    def test_up_migration_when_big_frees(self, platform):
        sim = _sim(platform)
        gts = GTSScheduler(balance_period_s=0.05)
        gts.attach(sim)
        little_pid = sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0  # force onto LITTLE
        sim.step()
        assert sim.process(little_pid).core_id == 0
        sim.placement_policy = gts.place
        sim.run_for(0.2)  # balance passes run
        assert sim.process(little_pid).core_id in platform.cores_in_cluster(BIG)

    def test_spreading_from_crowded_core(self, platform):
        sim = _sim(platform)
        gts = GTSScheduler(balance_period_s=0.05)
        gts.attach(sim)
        pids = [sim.submit(_long(), 1e8, 0.0) for _ in range(2)]
        sim.placement_policy = lambda s, p: 4  # both on core 4
        sim.step()
        sim.placement_policy = gts.place
        sim.run_for(0.2)
        cores = {sim.process(p).core_id for p in pids}
        assert len(cores) == 2

    def test_balance_idempotent_when_spread(self, platform):
        sim = _sim(platform)
        gts = GTSScheduler(balance_period_s=0.05)
        gts.attach(sim)
        pids = [sim.submit(_long(), 1e8, 0.0) for _ in range(4)]
        sim.run_for(0.3)
        before = {p: sim.process(p).core_id for p in pids}
        sim.run_for(0.3)
        after = {p: sim.process(p).core_id for p in pids}
        assert before == after
