"""Command-line interface."""

import pytest

from repro import cli


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig3", "fig5", "fig7", "fig8", "fig10",
                     "fig11", "fig12", "model-eval"):
            assert name in out


class TestScaleParsing:
    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli._scale("gigantic")

    @pytest.mark.parametrize("name", ["smoke", "medium", "paper"])
    def test_known_scales(self, name):
        assert cli._scale(name).name == name


class TestRun:
    def test_unknown_experiment_errors(self, tmp_path, capsys):
        code = cli.main(
            ["run", "fig99", "--scale", "smoke", "--cache", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig1_prints_table(self, tmp_path, capsys, monkeypatch):
        # fig1 needs no trained assets, so it is cheap enough for a test.
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            ["run", "fig1", "--scale", "smoke", "--cache", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adi" in out and "seidel-2d" in out
