"""Command-line interface."""

import os

import pytest

from repro import cli
from repro.faults import FAULT_SEED_ENV, FAULTS_ENV


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig3", "fig5", "fig7", "fig8", "fig10",
                     "fig11", "fig12", "model-eval", "resilience"):
            assert name in out


class TestScaleParsing:
    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli._scale("gigantic")

    @pytest.mark.parametrize("name", ["smoke", "medium", "paper"])
    def test_known_scales(self, name):
        assert cli._scale(name).name == name


class TestRun:
    def test_unknown_experiment_errors(self, tmp_path, capsys):
        code = cli.main(
            ["run", "fig99", "--scale", "smoke", "--cache", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig1_prints_table(self, tmp_path, capsys, monkeypatch):
        # fig1 needs no trained assets, so it is cheap enough for a test.
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            ["run", "fig1", "--scale", "smoke", "--cache", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adi" in out and "seidel-2d" in out


class TestCarrierEnv:
    """The env carriers must be set/unset symmetrically around a command:
    a ``--faults`` run that leaked ``REPRO_FAULTS`` would poison every
    later in-process run *and* its ``ArtifactKey`` fault-env folding."""

    def _args(self, **overrides):
        import argparse

        base = dict(
            trace=False, trace_dir=None, faults=None, fault_seed=0,
            chaos=None, chaos_seed=0,
            checkpoint_dir=None, checkpoint_period_s=30.0,
        )
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_flags_export_env_inside_context(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        updates = cli._command_env(
            self._args(faults="sensor_dropout:0.1,npu_failure:0.05", fault_seed=7)
        )
        with cli._carrier_env(updates):
            assert os.environ[FAULTS_ENV] == "sensor_dropout:0.1,npu_failure:0.05"
            assert os.environ[FAULT_SEED_ENV] == "7"
        assert FAULTS_ENV not in os.environ
        assert FAULT_SEED_ENV not in os.environ

    def test_no_flags_touch_nothing(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        assert cli._command_env(self._args()) == {}

    def test_bad_plan_rejected(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        with pytest.raises(SystemExit):
            cli._command_env(self._args(faults="warp_core_breach:0.5"))
        assert FAULTS_ENV not in os.environ

    def test_prior_values_restored(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "sensor_dropout:0.25")
        monkeypatch.setenv(FAULT_SEED_ENV, "11")
        with cli._carrier_env({FAULTS_ENV: "npu_failure:0.1",
                               FAULT_SEED_ENV: "3"}):
            assert os.environ[FAULTS_ENV] == "npu_failure:0.1"
            assert os.environ[FAULT_SEED_ENV] == "3"
        assert os.environ[FAULTS_ENV] == "sensor_dropout:0.25"
        assert os.environ[FAULT_SEED_ENV] == "11"

    def test_restored_on_error(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        with pytest.raises(RuntimeError):
            with cli._carrier_env({FAULTS_ENV: "sensor_dropout:0.5"}):
                raise RuntimeError("boom")
        assert FAULTS_ENV not in os.environ

    def test_run_does_not_leak_carriers(self, tmp_path, monkeypatch, capsys):
        """Regression: a faulted run used to leave REPRO_FAULTS behind, so
        a later in-process run folded a stale plan into its cache keys."""
        from repro.experiments.motivation import MotivationConfig
        from repro.store.keys import fault_env_signature

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        signature_before = fault_env_signature()
        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            [
                "run", "fig1", "--scale", "smoke", "--cache", str(tmp_path),
                "--faults", "sensor_dropout:0.0", "--fault-seed", "3",
            ]
        )
        assert code == 0
        assert FAULTS_ENV not in os.environ
        assert FAULT_SEED_ENV not in os.environ
        assert fault_env_signature() == signature_before

    def test_empty_faults_does_not_leak(self, tmp_path, monkeypatch, capsys):
        """`--faults ""` (explicit zero-fault plan) installs the carrier
        only for the command's duration — later runs see pristine env."""
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            [
                "run", "fig1", "--scale", "smoke", "--cache", str(tmp_path),
                "--faults", "",
            ]
        )
        assert code == 0
        assert FAULTS_ENV not in os.environ
        assert FAULT_SEED_ENV not in os.environ


class TestCacheFlags:
    def test_cache_dir_alias(self, tmp_path, monkeypatch):
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            ["run", "fig1", "--scale", "smoke", "--cache-dir", str(tmp_path)]
        )
        assert code == 0

    def test_no_cache_disables_store(self, tmp_path, monkeypatch):
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            [
                "run", "fig1", "--scale", "smoke",
                "--cache-dir", str(tmp_path), "--no-cache",
            ]
        )
        assert code == 0
        assert not (tmp_path / "il-dataset").exists()

    def test_resolve_cache_dir(self):
        import argparse

        args = argparse.Namespace(cache_dir="/tmp/x", no_cache=False)
        assert cli._resolve_cache_dir(args) == "/tmp/x"
        args.no_cache = True
        assert cli._resolve_cache_dir(args) is None


class TestPlatformCommand:
    def test_list_shows_registry(self, capsys):
        assert cli.main(["platform", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("hikey970", "tricluster", "snuca-grid"):
            assert name in out
        assert "fingerprint" in out

    def test_show_prints_spec_json(self, capsys):
        import json

        assert cli.main(["platform", "show", "tricluster"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["name"] == "tricluster"
        assert [c["name"] for c in payload["clusters"]] == [
            "LITTLE", "big", "prime",
        ]

    def test_show_unknown_errors(self, capsys):
        assert cli.main(["platform", "show", "vaporchip"]) == 2
        assert "unknown platform" in capsys.readouterr().err


class TestPlatformFlag:
    def test_run_fig1_on_tricluster(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            [
                "run", "fig1", "--scale", "smoke",
                "--platform", "tricluster", "--cache", str(tmp_path),
            ]
        )
        assert code == 0
        assert "adi" in capsys.readouterr().out

    def test_unknown_platform_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown platform"):
            cli.main(
                [
                    "run", "fig1", "--scale", "smoke",
                    "--platform", "vaporchip", "--cache", str(tmp_path),
                ]
            )

    def test_assets_helper_builds_selected_platform(self, tmp_path):
        assets = cli._assets(str(tmp_path), "smoke", "snuca-grid")
        assert assets.platform.name == "snuca-grid"
        assert cli._assets(str(tmp_path), "smoke").platform.name == "hikey970"


class TestCacheCommand:
    def _seed(self, tmp_path):
        from repro.store import ArtifactKey, ArtifactStore, CellResultHandle

        store = ArtifactStore(str(tmp_path))
        key = ArtifactKey.create("cell/smoketest", config={"n": 1})
        store.put(key, {"row": 1}, CellResultHandle())
        return store

    def test_stats_empty(self, tmp_path, capsys):
        assert cli.main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_stats_lists_kinds_and_total(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert cli.main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cell/smoketest" in out
        assert "TOTAL" in out

    def test_gc_reports_removals(self, tmp_path, capsys):
        self._seed(tmp_path)
        (tmp_path / "cell" / "smoketest" / "tmp-999-deadbeef.pkl").write_bytes(
            b"dropping"
        )
        assert cli.main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out

    def test_clear_empties_store(self, tmp_path, capsys):
        store = self._seed(tmp_path)
        assert cli.main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 2 file(s)" in capsys.readouterr().out
        assert store.disk_stats() == []

    def test_cache_alias_accepted(self, tmp_path, capsys):
        assert cli.main(["cache", "stats", "--cache", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out
