"""Command-line interface."""

import os

import pytest

from repro import cli
from repro.faults import FAULT_SEED_ENV, FAULTS_ENV


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig3", "fig5", "fig7", "fig8", "fig10",
                     "fig11", "fig12", "model-eval", "resilience"):
            assert name in out


class TestScaleParsing:
    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli._scale("gigantic")

    @pytest.mark.parametrize("name", ["smoke", "medium", "paper"])
    def test_known_scales(self, name):
        assert cli._scale(name).name == name


class TestRun:
    def test_unknown_experiment_errors(self, tmp_path, capsys):
        code = cli.main(
            ["run", "fig99", "--scale", "smoke", "--cache", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig1_prints_table(self, tmp_path, capsys, monkeypatch):
        # fig1 needs no trained assets, so it is cheap enough for a test.
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            ["run", "fig1", "--scale", "smoke", "--cache", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adi" in out and "seidel-2d" in out


class TestFaultFlags:
    def test_flags_export_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        cli._apply_fault_flags("sensor_dropout:0.1,npu_failure:0.05", 7)
        assert os.environ[FAULTS_ENV] == "sensor_dropout:0.1,npu_failure:0.05"
        assert os.environ[FAULT_SEED_ENV] == "7"

    def test_no_flags_leave_env_untouched(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        cli._apply_fault_flags(None, 0)
        assert FAULTS_ENV not in os.environ
        assert FAULT_SEED_ENV not in os.environ

    def test_bad_plan_rejected(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        with pytest.raises(SystemExit):
            cli._apply_fault_flags("warp_core_breach:0.5", 0)
        assert FAULTS_ENV not in os.environ

    def test_run_accepts_fault_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        from repro.experiments.motivation import MotivationConfig

        monkeypatch.setattr(
            "repro.experiments.report.MotivationConfig.smoke",
            classmethod(lambda cls: MotivationConfig(observe_s=5.0)),
        )
        code = cli.main(
            [
                "run", "fig1", "--scale", "smoke", "--cache", str(tmp_path),
                "--faults", "sensor_dropout:0.0", "--fault-seed", "3",
            ]
        )
        assert code == 0
        assert os.environ[FAULTS_ENV] == "sensor_dropout:0.0"
        assert os.environ[FAULT_SEED_ENV] == "3"
