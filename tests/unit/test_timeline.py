"""Timeline extraction from run traces."""

import pytest

from repro.metrics.timeline import (
    AppTimeline,
    extract_timelines,
    render_run_timelines,
)
from repro.sim.trace import TraceRecorder


def _trace_with(samples):
    """Build a trace; samples = list of (t, {pid: core}, {pid: ips})."""
    rec = TraceRecorder(sample_period_s=0.1)
    for t, cores, ips in samples:
        rec.record(
            now_s=t,
            sensor_temp_c=30.0 + t,
            max_core_temp_c=31.0 + t,
            total_power_w=2.0,
            vf_hz={"LITTLE": 1e9, "big": 2e9},
            node_temps_c={},
            process_core=cores,
            process_ips=ips,
        )
    return rec


class TestAppTimeline:
    def _timeline(self):
        return AppTimeline(
            pid=1,
            times_s=[0.0, 0.1, 0.2, 0.3],
            clusters=["LITTLE", "LITTLE", "big", ""],
            ips=[1e9, 0.5e9, 2e9, 0.0],
            qos_target_ips=0.9e9,
        )

    def test_cluster_residency(self):
        res = self._timeline().cluster_residency()
        assert res["LITTLE"] == pytest.approx(2 / 3)
        assert res["big"] == pytest.approx(1 / 3)

    def test_switch_count(self):
        assert self._timeline().switches() == 1

    def test_qos_met_series_skips_inactive(self):
        series = self._timeline().qos_met_series()
        assert series == [True, False, True]

    def test_qos_met_fraction(self):
        assert self._timeline().qos_met_fraction() == pytest.approx(2 / 3)

    def test_empty_timeline_defaults(self):
        empty = AppTimeline(1, [], [], [], 1e9)
        assert empty.qos_met_fraction() == 1.0
        assert empty.cluster_residency() == {}
        assert empty.switches() == 0


class TestExtraction:
    def test_extract_from_trace(self, platform):
        trace = _trace_with(
            [
                (0.0, {1: 0}, {1: 1e9}),
                (0.1, {1: 4}, {1: 2e9}),
                (0.2, {}, {}),
            ]
        )
        timelines = extract_timelines(trace, platform, {1: 0.5e9})
        assert timelines[1].clusters == ["LITTLE", "big", ""]
        assert timelines[1].qos_target_ips == 0.5e9

    def test_render_panel(self, platform):
        trace = _trace_with(
            [
                (0.0, {1: 0}, {1: 1e9}),
                (0.1, {1: 4}, {1: 2e9}),
            ]
        )
        panel = render_run_timelines(trace, platform, {1: 0.5e9})
        assert "temperature" in panel
        assert "pid 1" in panel
        assert "Lb" in panel
