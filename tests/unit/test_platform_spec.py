"""Declarative PlatformSpec layer: validation, roundtrip, registry, zoo."""

from __future__ import annotations

import dataclasses

import pytest

from repro.platform import (
    ClusterSpec,
    NPUSpec,
    PlatformSpec,
    PlatformSpecError,
    TileSpec,
    get_platform,
    get_spec,
    hikey970,
    platform_names,
    register_platform,
    spec_for_platform,
)
from repro.platform.registry import _REGISTRY
from repro.platform.spec import CoolingSpec, DTMSpec, ThermalSpec
from repro.platform.zoo import HIKEY970, SNUCA_GRID, TRICLUSTER, builtin_specs
from repro.utils.units import MHZ


def _valid_spec(name="testchip") -> PlatformSpec:
    """A minimal valid two-core single-cluster platform."""
    return PlatformSpec(
        name=name,
        clusters=(
            ClusterSpec(
                name="solo",
                core_ids=(0, 1),
                vf_points=((500 * MHZ, 0.7), (1000 * MHZ, 0.9)),
                dyn_power_coeff=3e-10,
                static_power_coeff=0.05,
                perf_like="LITTLE",
            ),
        ),
        floorplan=(
            TileSpec("core0", 0.0, 0.0, 1e-3, 1e-3),
            TileSpec("core1", 1e-3, 0.0, 1e-3, 1e-3),
            TileSpec("uncore_solo", 0.0, 1e-3, 2e-3, 1e-3),
            TileSpec("soc_rest", 0.0, 2e-3, 2e-3, 1e-3),
        ),
        npu=NPUSpec(present=False),
    )


class TestValidation:
    def test_valid_spec_builds(self):
        platform = _valid_spec().build()
        assert platform.n_cores == 2
        assert [c.name for c in platform.clusters] == ["solo"]

    def test_duplicate_cluster_names_rejected(self):
        spec = _valid_spec()
        spec = dataclasses.replace(spec, clusters=spec.clusters * 2)
        with pytest.raises(PlatformSpecError, match="duplicate cluster"):
            spec.validate()

    def test_non_contiguous_core_ids_rejected(self):
        spec = _valid_spec()
        bad = dataclasses.replace(spec.clusters[0], core_ids=(0, 2))
        with pytest.raises(PlatformSpecError, match="core ids"):
            dataclasses.replace(spec, clusters=(bad,)).validate()

    def test_descending_vf_points_rejected(self):
        spec = _valid_spec()
        bad = dataclasses.replace(
            spec.clusters[0],
            vf_points=((1000 * MHZ, 0.9), (500 * MHZ, 0.7)),
        )
        with pytest.raises(PlatformSpecError, match="ascending"):
            dataclasses.replace(spec, clusters=(bad,)).validate()

    def test_missing_core_tile_rejected(self):
        spec = _valid_spec()
        floorplan = tuple(
            t for t in spec.floorplan if t.name != "core1"
        )
        with pytest.raises(PlatformSpecError, match="core1"):
            dataclasses.replace(spec, floorplan=floorplan).validate()

    def test_missing_uncore_tile_rejected(self):
        spec = _valid_spec()
        floorplan = tuple(
            t for t in spec.floorplan if t.name != "uncore_solo"
        )
        with pytest.raises(PlatformSpecError, match="uncore_solo"):
            dataclasses.replace(spec, floorplan=floorplan).validate()

    def test_missing_soc_rest_tile_rejected(self):
        spec = _valid_spec()
        floorplan = tuple(
            t for t in spec.floorplan if t.name != "soc_rest"
        )
        with pytest.raises(PlatformSpecError, match="soc_rest"):
            dataclasses.replace(spec, floorplan=floorplan).validate()

    def test_self_referential_perf_like_rejected(self):
        spec = _valid_spec()
        bad = dataclasses.replace(spec.clusters[0], perf_like="solo")
        with pytest.raises(PlatformSpecError, match="perf_like"):
            dataclasses.replace(spec, clusters=(bad,)).validate()

    def test_error_names_the_spec(self):
        spec = _valid_spec(name="badchip")
        bad = dataclasses.replace(spec.clusters[0], core_ids=(5, 6))
        with pytest.raises(PlatformSpecError, match="badchip"):
            dataclasses.replace(spec, clusters=(bad,)).validate()


class TestRoundtrip:
    @pytest.mark.parametrize("spec", builtin_specs(), ids=lambda s: s.name)
    def test_builtin_to_from_dict(self, spec):
        assert PlatformSpec.from_dict(spec.to_dict()) == spec

    def test_dict_form_is_plain_data(self):
        import json

        payload = _valid_spec().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_from_platform_roundtrip(self):
        spec = PlatformSpec.from_platform(hikey970(), npu=NPUSpec())
        rebuilt = spec.build()
        direct = hikey970()
        assert rebuilt.floorplan == direct.floorplan
        assert rebuilt.dtm == direct.dtm
        for built, want in zip(rebuilt.clusters, direct.clusters):
            assert list(built.vf_table) == list(want.vf_table)

    def test_optional_sections_default(self):
        payload = _valid_spec().to_dict()
        for section in ("dtm", "npu", "thermal", "cooling"):
            payload.pop(section, None)
        spec = PlatformSpec.from_dict(payload)
        assert spec.dtm == DTMSpec()
        assert spec.npu == NPUSpec()
        assert spec.thermal == ThermalSpec()
        assert spec.cooling == CoolingSpec()


class TestRegistry:
    def test_builtins_registered(self):
        assert {HIKEY970, TRICLUSTER, SNUCA_GRID} <= set(platform_names())

    def test_get_platform_builds_fresh_objects(self):
        assert get_platform(HIKEY970) is not get_platform(HIKEY970)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="hikey970"):
            get_platform("made-up-chip")

    def test_reregister_without_replace_rejected(self):
        spec = get_spec(HIKEY970)
        with pytest.raises(ValueError, match="already registered"):
            register_platform(spec)
        register_platform(spec, replace=True)  # idempotent with replace

    def test_register_validates(self):
        spec = _valid_spec(name="invalid-entry")
        bad = dataclasses.replace(spec.clusters[0], core_ids=(3, 4))
        with pytest.raises(PlatformSpecError):
            register_platform(dataclasses.replace(spec, clusters=(bad,)))
        assert "invalid-entry" not in platform_names()

    def test_spec_for_platform_by_name(self):
        assert spec_for_platform(hikey970()) is get_spec(HIKEY970)
        unknown = _valid_spec(name="unregistered").build()
        assert spec_for_platform(unknown) is None

    def test_register_and_unregister_custom(self):
        spec = _valid_spec(name="customchip")
        register_platform(spec)
        try:
            assert get_platform("customchip").n_cores == 2
        finally:
            _REGISTRY.pop("customchip")


class TestZoo:
    def test_hikey_is_big_little_with_npu(self):
        spec = get_spec(HIKEY970)
        assert spec.cluster_names == ("LITTLE", "big")
        assert spec.npu.present

    def test_tricluster_shape(self):
        spec = get_spec(TRICLUSTER)
        assert spec.cluster_names == ("LITTLE", "big", "prime")
        assert spec.n_cores == 8
        assert spec.npu.present

    def test_grid_shape(self):
        spec = get_spec(SNUCA_GRID)
        assert spec.cluster_names == ("grid",)
        assert spec.n_cores == 16
        assert not spec.npu.present

    def test_npuless_platform_gets_cpu_overhead_model(self):
        model = get_spec(SNUCA_GRID).management_overhead_model()
        assert model is not None
        # Inference falls back to the CPU path on both legs.
        assert model.inference is model.cpu_inference or (
            type(model.inference) is type(model.cpu_inference)
        )

    def test_npu_platform_overhead_model_uses_npu(self):
        model = get_spec(HIKEY970).management_overhead_model()
        assert model is not None
        assert type(model.inference) is not type(model.cpu_inference)

    @pytest.mark.parametrize("spec", builtin_specs(), ids=lambda s: s.name)
    def test_every_builtin_builds_and_fingerprints(self, spec):
        from repro.store.keys import platform_fingerprint

        fingerprint = platform_fingerprint(spec.build())
        assert len(fingerprint) == 16

    def test_fingerprints_are_distinct(self):
        from repro.store.keys import platform_fingerprint

        prints = {
            platform_fingerprint(get_platform(name))
            for name in platform_names()
        }
        assert len(prints) == len(platform_names())
