"""Deterministic random-source behaviour."""

import numpy as np

from repro.utils.rng import RandomSource, spawn_rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(7).uniform(size=10)
        b = RandomSource(7).uniform(size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomSource(7).uniform(size=10)
        b = RandomSource(8).uniform(size=10)
        assert not np.array_equal(a, b)


class TestChildStreams:
    def test_child_is_deterministic(self):
        a = RandomSource(7).child("workload").uniform(size=5)
        b = RandomSource(7).child("workload").uniform(size=5)
        assert np.array_equal(a, b)

    def test_children_with_different_keys_differ(self):
        root = RandomSource(7)
        a = root.child("alpha").uniform(size=5)
        b = root.child("beta").uniform(size=5)
        assert not np.array_equal(a, b)

    def test_child_independent_of_parent_draws(self):
        """Consuming the parent stream must not shift a child stream."""
        root1 = RandomSource(7)
        child_before = root1.child("x").uniform(size=5)
        root2 = RandomSource(7)
        root2.uniform(size=100)  # consume parent draws
        child_after = root2.child("x").uniform(size=5)
        assert np.array_equal(child_before, child_after)

    def test_spawn_rng_shortcut(self):
        a = spawn_rng(3, "k").uniform(size=4)
        b = RandomSource(3).child("k").uniform(size=4)
        assert np.array_equal(a, b)


class TestDistributionPassthroughs:
    def test_integers_within_bounds(self):
        values = RandomSource(0).integers(0, 8, size=1000)
        assert values.min() >= 0 and values.max() < 8

    def test_choice_draws_from_sequence(self):
        options = ["a", "b", "c"]
        picks = {str(RandomSource(i).choice(options)) for i in range(20)}
        assert picks.issubset(set(options))

    def test_exponential_positive(self):
        values = RandomSource(0).exponential(scale=10.0, size=100)
        assert (values > 0).all()

    def test_shuffle_preserves_elements(self):
        items = list(range(10))
        RandomSource(0).shuffle(items)
        assert sorted(items) == list(range(10))

    def test_normal_centered(self):
        values = RandomSource(0).normal(5.0, 0.1, size=2000)
        assert abs(values.mean() - 5.0) < 0.05
