"""Oracle static-mapping baseline."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.apps.qos import qos_fraction_of_big_max
from repro.governors.oracle import OracleStaticMapping
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


class TestPlacement:
    def test_adi_placed_on_big(self, platform):
        """The oracle must find the Fig. 1 anchor without any learning."""
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        oracle.attach(sim)
        target = qos_fraction_of_big_max(get_app("adi"), platform, 0.3)
        pid = sim.submit(_long("adi"), target, 0.0)
        sim.step()
        cluster = platform.cluster_of_core(sim.process(pid).core_id)
        assert cluster.name == BIG

    def test_seidel_placed_on_little(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        oracle.attach(sim)
        target = qos_fraction_of_big_max(get_app("seidel-2d"), platform, 0.3)
        pid = sim.submit(_long("seidel-2d"), target, 0.0)
        sim.step()
        cluster = platform.cluster_of_core(sim.process(pid).core_id)
        assert cluster.name == LITTLE

    def test_avoids_occupied_cores(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        oracle.attach(sim)
        pids = [sim.submit(_long("adi"), 1e8, 0.0) for _ in range(3)]
        sim.step()
        cores = [sim.process(p).core_id for p in pids]
        assert len(set(cores)) == 3

    def test_full_system_shares_least_loaded(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        oracle.attach(sim)
        pids = [sim.submit(_long("adi"), 1e8, 0.0) for _ in range(9)]
        sim.step()
        counts = [len(sim.processes_on_core(c)) for c in range(8)]
        assert max(counts) == 2

    def test_infeasible_target_still_places(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        oracle.attach(sim)
        pid = sim.submit(_long("adi"), 1e13, 0.0)  # unreachable target
        sim.step()
        assert sim.process(pid).core_id is not None


class TestPrediction:
    def test_predicted_temp_feasible_assignment(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        pid = sim.submit(_long("adi"), 1e8, 0.0)
        sim.step()
        temp = oracle.predicted_zone_temp(sim, {pid: 4})
        assert platform.ambient_temp_c < temp < 100.0

    def test_prediction_none_for_infeasible(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        pid = sim.submit(_long("adi"), 1e13, 0.0)
        sim.step()
        assert oracle.predicted_zone_temp(sim, {pid: 0}) is None

    def test_hotter_config_predicted_hotter(self, platform):
        sim = _sim(platform)
        oracle = OracleStaticMapping()
        easy = sim.submit(_long("adi"), 1e8, 0.0)
        sim.step()
        low = oracle.predicted_zone_temp(sim, {easy: 4})
        hard_target = qos_fraction_of_big_max(get_app("adi"), platform, 0.9)
        sim.process(easy).qos_target_ips = hard_target
        high = oracle.predicted_zone_temp(sim, {easy: 4})
        assert high > low
