"""RL state quantization."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.platform.hikey import BIG, LITTLE
from repro.rl.state import N_STATES, StateQuantizer
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name="adi"):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


class TestTableSize:
    def test_paper_qtable_size(self):
        """288 states x 8 actions = 2,304 entries as in the paper."""
        assert N_STATES * 8 == 2304


class TestComponentBins:
    def test_cluster_bin(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        pids = [sim.submit(_long(), 1e8, 0.0) for _ in range(2)]
        order = iter([0, 4])
        sim.placement_policy = lambda s, p: next(order)
        sim.step()
        assert q.cluster_bin(sim, sim.process(pids[0])) == 0
        assert q.cluster_bin(sim, sim.process(pids[1])) == 1

    def test_qos_bin_tracks_satisfaction(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        pid = sim.submit(_long("syr2k"), 1e6, 0.0)
        sim.run_for(0.5)
        proc = sim.process(pid)
        assert q.qos_bin(sim, proc) == 1
        proc.qos_target_ips = 1e12
        assert q.qos_bin(sim, proc) == 0

    def test_l2d_bins_cover_app_spectrum(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        pids = [
            sim.submit(_long("swaptions"), 1e6, 0.0),
            sim.submit(_long("canneal"), 1e6, 0.0),
        ]
        sim.run_for(0.5)
        compute = q.l2d_bin(sim.process(pids[0]))
        memory = q.l2d_bin(sim.process(pids[1]))
        assert compute < memory

    def test_vf_bins_monotone(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        table = platform.cluster(LITTLE).vf_table
        sim.set_vf_level(LITTLE, table.min_level)
        low = q.fl_bin(sim)
        sim.set_vf_level(LITTLE, table.max_level)
        high = q.fl_bin(sim)
        assert low == 0 and high == 3

    def test_free_other_bin(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        pid = sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.step()
        assert q.free_other_bin(sim, sim.process(pid)) == 1
        # Fill the big cluster entirely.
        fills = [sim.submit(_long(), 1e8, 0.01) for _ in range(4)]
        order = iter([4, 5, 6, 7])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(0.05)
        assert q.free_other_bin(sim, sim.process(pid)) == 0


class TestCombinedIndex:
    def test_state_in_range(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        for name in ("adi", "canneal", "swaptions"):
            sim.submit(_long(name), 1e8, 0.0)
        sim.run_for(0.3)
        for p in sim.running_processes():
            state = q.state_of(sim, p)
            assert 0 <= state < N_STATES

    def test_distinct_configurations_distinct_states(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        pids = [sim.submit(_long(), 1e8, 0.0) for _ in range(2)]
        order = iter([0, 4])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(0.3)
        s0 = q.state_of(sim, sim.process(pids[0]))
        s1 = q.state_of(sim, sim.process(pids[1]))
        assert s0 != s1

    def test_pending_process_rejected(self, platform):
        sim = _sim(platform)
        q = StateQuantizer(platform)
        pid = sim.submit(_long(), 1e8, arrival_time_s=5.0)
        with pytest.raises(ValueError):
            q.state_of(sim, sim.process(pid))
