"""Simulator kernel: arrivals, execution, thermal coupling, DTM, controllers."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING, PASSIVE_COOLING


@pytest.fixture(scope="module")
def platform():
    return hikey970()


def _sim(platform, **cfg):
    config = SimConfig(dt_s=0.01, model_overhead_on_core=None, **cfg)
    return Simulator(platform, FAN_COOLING, config=config, sensor_noise_std_c=0.0)


def _long(app_name):
    return dataclasses.replace(get_app(app_name), total_instructions=1e15)


class TestArrivalsAndPlacement:
    def test_arrival_starts_process(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long("adi"), 1e8, arrival_time_s=0.05)
        sim.step()
        assert not sim.process(pid).is_running()
        sim.run_for(0.1)
        assert sim.process(pid).is_running()

    def test_submit_in_past_rejected(self, platform):
        sim = _sim(platform)
        sim.run_for(1.0)
        with pytest.raises(ValueError):
            sim.submit(_long("adi"), 1e8, arrival_time_s=0.0)

    def test_default_placement_spreads(self, platform):
        sim = _sim(platform)
        for _ in range(4):
            sim.submit(_long("adi"), 1e8, 0.0)
        sim.step()
        cores = {p.core_id for p in sim.running_processes()}
        assert len(cores) == 4

    def test_custom_placement_policy(self, platform):
        sim = _sim(platform)
        sim.placement_policy = lambda s, p: 7
        pid = sim.submit(_long("adi"), 1e8, 0.0)
        sim.step()
        assert sim.process(pid).core_id == 7


class TestExecution:
    def test_instructions_match_model_ips(self, platform):
        sim = _sim(platform)
        sim.set_vf_level(BIG, platform.cluster(BIG).vf_table.max_level)
        pid = sim.submit(_long("swaptions"), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 4
        sim.run_for(1.0)
        expected = get_app("swaptions").ips(
            BIG, platform.cluster(BIG).vf_table.max_level.frequency_hz
        )
        assert sim.process(pid).instructions_done == pytest.approx(expected, rel=0.05)

    def test_timeslicing_halves_throughput(self, platform):
        sim = _sim(platform)
        pids = [sim.submit(_long("syr2k"), 1e6, 0.0) for _ in range(2)]
        sim.placement_policy = lambda s, p: 0  # both on core 0
        sim.run_for(1.0)
        solo = _sim(platform)
        solo_pid = solo.submit(_long("syr2k"), 1e6, 0.0)
        solo.placement_policy = lambda s, p: 0
        solo.run_for(1.0)
        shared = sim.process(pids[0]).instructions_done
        alone = solo.process(solo_pid).instructions_done
        assert shared == pytest.approx(alone / 2, rel=0.05)

    def test_completion_finishes_process(self, platform):
        sim = _sim(platform)
        short = dataclasses.replace(get_app("swaptions"), total_instructions=1e8)
        pid = sim.submit(short, 1e6, 0.0)
        sim.run_for(2.0)
        proc = sim.process(pid)
        assert not proc.is_running()
        assert proc.finish_time_s is not None
        assert proc.instructions_done == pytest.approx(1e8, rel=1e-6)

    def test_memory_contention_slows_corunners(self, platform):
        """Two memory-hungry apps on one cluster run slower than solo."""
        solo = _sim(platform)
        p0 = solo.submit(_long("heat-3d"), 1e6, 0.0)
        solo.placement_policy = lambda s, p: 0
        solo.run_for(1.0)
        pair = _sim(platform)
        pids = [pair.submit(_long("heat-3d"), 1e6, 0.0) for _ in range(2)]
        order = iter([0, 1])
        pair.placement_policy = lambda s, p: next(order)
        pair.run_for(1.0)
        assert (
            pair.process(pids[0]).instructions_done
            < solo.process(p0).instructions_done
        )

    def test_contention_disabled_when_coeff_zero(self, platform):
        sim = _sim(platform, contention_coeff=0.0)
        pids = [sim.submit(_long("heat-3d"), 1e6, 0.0) for _ in range(2)]
        order = iter([0, 1])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(1.0)
        solo = _sim(platform, contention_coeff=0.0)
        p0 = solo.submit(_long("heat-3d"), 1e6, 0.0)
        solo.placement_policy = lambda s, p: 0
        solo.run_for(1.0)
        assert sim.process(pids[0]).instructions_done == pytest.approx(
            solo.process(p0).instructions_done, rel=0.01
        )

    def test_cold_cache_penalty_after_migration(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long("heat-3d"), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.run_for(0.5)
        before = sim.process(pid).smoothed_ips
        sim.migrate(pid, 1)  # same cluster: model params unchanged
        sim.run_for(0.05)
        after = sim.process(pid).smoothed_ips
        assert after < before


class TestObservables:
    def test_core_utilization_binary(self, platform):
        sim = _sim(platform)
        sim.submit(_long("adi"), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 2
        sim.step()
        assert sim.core_utilization(2) == 1.0
        assert sim.core_utilization(3) == 0.0

    def test_free_cores(self, platform):
        sim = _sim(platform)
        sim.submit(_long("adi"), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 5
        sim.step()
        assert 5 not in sim.free_cores()
        assert len(sim.free_cores()) == 7

    def test_smoothed_ips_converges(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long("syr2k"), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.run_for(1.0)
        expected = get_app("syr2k").ips(
            LITTLE, sim.vf_level(LITTLE).frequency_hz
        )
        assert sim.process(pid).smoothed_ips == pytest.approx(expected, rel=0.1)

    def test_qos_satisfied_uses_tolerance(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long("syr2k"), 1e6, 0.0)
        sim.run_for(0.5)
        proc = sim.process(pid)
        proc.qos_target_ips = proc.smoothed_ips * 1.01  # within 2% tolerance
        assert sim.qos_satisfied(proc)
        proc.qos_target_ips = proc.smoothed_ips * 1.10
        assert not sim.qos_satisfied(proc)


class TestActuation:
    def test_set_vf_level(self, platform):
        sim = _sim(platform)
        top = platform.cluster(BIG).vf_table.max_level
        applied = sim.set_vf_level(BIG, top)
        assert applied == top
        assert sim.vf_level(BIG) == top

    def test_migrate_records_event(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long("adi"), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.step()
        sim.migrate(pid, 4)
        moves = [m for m in sim.trace.migrations if m.from_core is not None]
        assert len(moves) == 1
        assert moves[0].from_core == 0 and moves[0].to_core == 4

    def test_migrate_out_of_range_rejected(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long("adi"), 1e8, 0.0)
        sim.step()
        with pytest.raises(ValueError):
            sim.migrate(pid, 8)


class TestControllers:
    def test_controller_invoked_on_period(self, platform):
        sim = _sim(platform)
        calls = []
        sim.add_controller("probe", 0.05, lambda s: calls.append(s.now_s))
        sim.run_for(0.5)
        assert len(calls) == pytest.approx(10, abs=1)

    def test_remove_controller(self, platform):
        sim = _sim(platform)
        calls = []
        sim.add_controller("probe", 0.05, lambda s: calls.append(1))
        sim.run_for(0.2)
        n = len(calls)
        sim.remove_controller("probe")
        sim.run_for(0.2)
        assert len(calls) == n

    def test_period_not_dt_multiple_does_not_drift(self, platform):
        # With dt=0.02 and period=0.03 the due times land between steps;
        # re-anchoring to now_s would fire every other step (rate 1/0.04),
        # losing a quarter of the invocations over time.
        config = SimConfig(dt_s=0.02, model_overhead_on_core=None)
        sim = Simulator(platform, FAN_COOLING, config=config,
                        sensor_noise_std_c=0.0)
        calls = []
        sim.add_controller("probe", 0.03, lambda s: calls.append(s.now_s))
        sim.run_for(0.6)
        assert len(calls) == pytest.approx(20, abs=1)

    def test_late_controller_rebases_without_burst(self, platform):
        # A controller that falls several periods behind (period << dt)
        # fires once per step, not once per missed period.
        sim = _sim(platform)
        calls = []
        sim.add_controller("fast", 0.001, lambda s: calls.append(s.now_s))
        sim.run_for(0.1)
        assert len(calls) == pytest.approx(10, abs=1)
        assert len(calls) == len(set(calls))


class TestProcessIndices:
    def test_late_submission_admitted_in_arrival_order(self, platform):
        # The pending queue is a heap: submissions made mid-run with an
        # earlier arrival than already-queued work must still admit first.
        sim = _sim(platform)
        late = sim.submit(_long("adi"), 1e8, arrival_time_s=0.5)
        sim.run_for(0.1)
        early = sim.submit(_long("syr2k"), 1e8, arrival_time_s=0.2)
        sim.run_for(0.15)
        assert sim.process(early).is_running()
        assert not sim.process(late).is_running()
        sim.run_for(0.3)
        assert sim.process(late).is_running()

    def test_indices_track_migrate_and_finish(self, platform):
        sim = _sim(platform)
        small_a = dataclasses.replace(get_app("adi"), total_instructions=1e7)
        small_b = dataclasses.replace(get_app("syr2k"), total_instructions=1e8)
        pid_a = sim.submit(small_a, 1e8, 0.0)
        pid_b = sim.submit(small_b, 1e8, 0.0)
        sim.step()
        core_b = sim.process(pid_b).core_id
        sim.migrate(pid_b, 7 if core_b != 7 else 6)
        moved = sim.process(pid_b).core_id
        assert [p.pid for p in sim.processes_on_core(moved)] == [pid_b]
        assert sim.processes_on_core(core_b) == []
        sim.run_until_complete(timeout_s=60.0)
        assert sim.process(pid_a).state.name == "FINISHED"
        assert all(not sim.processes_on_core(c)
                   for c in range(platform.n_cores))
        assert sim.running_processes() == []

    def test_running_list_is_pid_ordered(self, platform):
        sim = _sim(platform)
        pids = [sim.submit(_long("adi"), 1e8, 0.01 * (5 - i))
                for i in range(5)]
        sim.run_for(0.1)
        running = [p.pid for p in sim.running_processes()]
        assert running == sorted(pids)


class TestThermalCoupling:
    def test_running_hot_app_raises_temperature(self, platform):
        sim = _sim(platform)
        start = sim.zone_temp_c()
        sim.set_vf_level(BIG, platform.cluster(BIG).vf_table.max_level)
        for _ in range(4):
            sim.submit(_long("swaptions"), 1e6, 0.0)
        sim.run_for(30.0)
        assert sim.zone_temp_c() > start + 3.0

    def test_no_fan_runs_hotter(self, platform):
        temps = {}
        for cooling in (FAN_COOLING, PASSIVE_COOLING):
            sim = Simulator(
                platform,
                cooling,
                config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
                sensor_noise_std_c=0.0,
            )
            sim.set_vf_level(BIG, platform.cluster(BIG).vf_table.max_level)
            for _ in range(4):
                sim.submit(_long("swaptions"), 1e6, 0.0)
            # Long enough for the board (minutes-scale time constant) to
            # feel the cooling difference.
            sim.run_for(150.0)
            temps[cooling.name] = sim.zone_temp_c()
        assert temps["no_fan"] > temps["fan"] + 1.0


class TestDTM:
    def test_dtm_throttles_hot_system(self, platform):
        hot = hikey970(dtm_trigger_c=32.0, dtm_release_c=30.0)
        sim = Simulator(
            hot,
            PASSIVE_COOLING,
            config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        for cluster in hot.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
        for _ in range(8):
            sim.submit(_long("swaptions"), 1e6, 0.0)
        sim.run_for(60.0)
        assert sim.dtm_throttle_events > 0
        assert (
            sim.vf_level(BIG).frequency_hz
            < hot.cluster(BIG).vf_table.max_level.frequency_hz
        )

    def test_dtm_caps_requests(self, platform):
        hot = hikey970(dtm_trigger_c=26.0, dtm_release_c=24.0)
        sim = Simulator(hot, PASSIVE_COOLING, config=SimConfig(dt_s=0.01))
        for _ in range(8):
            sim.submit(_long("swaptions"), 1e6, 0.0)
        for cluster in hot.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
        sim.run_for(120.0)
        # With the cap active, re-requesting max must not restore max.
        applied = sim.set_vf_level(BIG, hot.cluster(BIG).vf_table.max_level)
        assert (
            applied.frequency_hz < hot.cluster(BIG).vf_table.max_level.frequency_hz
        )


class TestOverheadAccounting:
    def test_ledger_accumulates(self, platform):
        sim = _sim(platform)
        sim.account_overhead("dvfs", 0.001)
        sim.account_overhead("dvfs", 0.002)
        sim.account_overhead("migration", 0.004)
        assert sim.overhead_cpu_s["dvfs"] == pytest.approx(0.003)
        assert sim.overhead_cpu_s["migration"] == pytest.approx(0.004)

    def test_overhead_steals_cycles_on_manager_core(self, platform):
        config = SimConfig(dt_s=0.01, model_overhead_on_core=0)
        sim = Simulator(platform, FAN_COOLING, config=config, sensor_noise_std_c=0.0)
        pid = sim.submit(_long("syr2k"), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.add_controller("load", 0.05, lambda s: s.account_overhead("x", 0.005))
        sim.run_for(1.0)
        stolen = sim.process(pid).instructions_done
        free = _sim(platform)
        pid2 = free.submit(_long("syr2k"), 1e6, 0.0)
        free.placement_policy = lambda s, p: 0
        free.run_for(1.0)
        assert stolen < 0.95 * free.process(pid2).instructions_done


class TestRunUntilComplete:
    def test_completes_workload(self, platform):
        sim = _sim(platform)
        short = dataclasses.replace(get_app("adi"), total_instructions=5e8)
        sim.submit(short, 1e6, 0.0)
        sim.submit(short, 1e6, 0.3)
        sim.run_until_complete(timeout_s=100.0)
        assert not sim.running_processes()

    def test_timeout_raises(self, platform):
        sim = _sim(platform)
        sim.submit(_long("adi"), 1e6, 0.0)
        with pytest.raises(TimeoutError):
            sim.run_until_complete(timeout_s=0.5)
