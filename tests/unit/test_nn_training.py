"""Training loop: splitting, early stopping, reproducibility."""

import numpy as np
import pytest

from repro.nn.layers import build_mlp
from repro.nn.losses import MSELoss
from repro.nn.training import TrainingConfig, train_model, train_val_split
from repro.utils.rng import RandomSource


def _toy_data(n=200, seed=0):
    rng = RandomSource(seed)
    x = rng.normal(size=(n, 3))
    y = np.stack([x[:, 0] + x[:, 1], x[:, 2] * 0.5], axis=1)
    return x, y


class TestTrainValSplit:
    def test_split_sizes(self):
        x, y = _toy_data(100)
        xt, yt, xv, yv = train_val_split(x, y, 0.2, RandomSource(0))
        assert len(xv) == 20 and len(xt) == 80

    def test_no_overlap_and_complete(self):
        x, y = _toy_data(50)
        x = x + np.arange(50)[:, None]  # make rows unique
        xt, _, xv, _ = train_val_split(x, y, 0.2, RandomSource(0))
        all_rows = {tuple(r) for r in np.vstack([xt, xv])}
        assert len(all_rows) == 50

    def test_zero_fraction_uses_all_for_both(self):
        x, y = _toy_data(10)
        xt, _, xv, _ = train_val_split(x, y, 0.0, RandomSource(0))
        assert len(xt) == 10 and len(xv) == 10

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            train_val_split(np.ones((3, 2)), np.ones((4, 1)), 0.2, RandomSource(0))


class TestTrainModel:
    def test_loss_decreases(self):
        x, y = _toy_data()
        model = build_mlp(3, 2, 2, 16, RandomSource(0))
        result = train_model(
            model, x, y, TrainingConfig(max_epochs=50, patience=50)
        )
        assert result.train_losses[-1] < 0.2 * result.train_losses[0]

    def test_early_stopping_triggers(self):
        x, y = _toy_data(40)
        model = build_mlp(3, 2, 1, 4, RandomSource(0))
        result = train_model(
            model, x, y, TrainingConfig(max_epochs=300, patience=5)
        )
        assert result.stopped_early
        assert result.epochs_run < 300

    def test_best_weights_restored(self):
        """After training, the model's val loss equals the best recorded."""
        x, y = _toy_data(60)
        config = TrainingConfig(max_epochs=60, patience=8, seed=1)
        model = build_mlp(3, 2, 1, 8, RandomSource(1))
        result = train_model(model, x, y, config)
        # Recompute the validation loss with the same deterministic split.
        rng = RandomSource(config.seed).child("training")
        _, _, xv, yv = train_val_split(x, y, config.val_fraction, rng)
        val_loss, _ = MSELoss()(model.forward(xv), yv)
        assert val_loss == pytest.approx(result.best_val_loss, rel=1e-9)

    def test_reproducible_given_seed(self):
        x, y = _toy_data()
        results = []
        for _ in range(2):
            model = build_mlp(3, 2, 1, 8, RandomSource(5))
            r = train_model(model, x, y, TrainingConfig(max_epochs=20, seed=9))
            results.append(r.val_losses)
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        x, y = _toy_data()
        losses = []
        for seed in (0, 1):
            model = build_mlp(3, 2, 1, 8, RandomSource(seed))
            r = train_model(
                model, x, y, TrainingConfig(max_epochs=10, seed=seed)
            )
            losses.append(tuple(r.val_losses))
        assert losses[0] != losses[1]

    def test_paper_defaults(self):
        cfg = TrainingConfig()
        assert cfg.initial_lr == pytest.approx(0.01)
        assert cfg.lr_decay == pytest.approx(0.95)
        assert cfg.patience == 20
