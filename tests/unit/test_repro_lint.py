"""repro-lint: every rule checked against known-good/known-bad fixtures.

Bad fixtures mark each violating line with a trailing ``# expect: RULE-ID``
comment (comma-separated for multiple ids); the harness asserts the exact
(line, rule-id) hit set.  Good fixtures must produce zero violations under
the *full* rule set, so a rule that over-triggers on innocent code fails
here too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis import REGISTRY, analyze_paths, analyze_source, default_rules
from tools.analysis.core import Violation, report_json

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "repro_lint"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9_,\s]+)")

RULE_IDS = [cls.rule_id for cls in REGISTRY.rule_classes]

BAD_FIXTURES = sorted(FIXTURE_DIR.glob("*_bad.py"))
GOOD_FIXTURES = sorted(FIXTURE_DIR.glob("*_good.py"))


def _expected_hits(source: str):
    hits = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for rule_id in match.group(1).split(","):
                hits.append((lineno, rule_id.strip()))
    return sorted(hits)


def _actual_hits(source: str):
    violations = analyze_source(source, default_rules())
    return sorted((v.line, v.rule_id) for v in violations)


class TestRegistry:
    def test_at_least_four_distinct_rule_ids(self):
        assert len(set(RULE_IDS)) == len(RULE_IDS)
        assert len(RULE_IDS) >= 4

    def test_every_rule_documented(self):
        for cls in REGISTRY.rule_classes:
            assert cls.summary, cls.__name__
            assert (cls.__doc__ or "").strip(), cls.__name__

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError):
            default_rules(["NOPE999"])

    def test_every_rule_has_fixture_pair(self):
        names = {p.name for p in BAD_FIXTURES} | {p.name for p in GOOD_FIXTURES}
        for rule_id in RULE_IDS:
            stem = rule_id.lower()
            assert f"{stem}_bad.py" in names, f"missing bad fixture for {rule_id}"
            assert f"{stem}_good.py" in names, f"missing good fixture for {rule_id}"


class TestFixtures:
    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
    def test_bad_fixture_hits_exactly(self, path):
        source = path.read_text()
        expected = _expected_hits(source)
        assert expected, f"{path.name} has no # expect: markers"
        assert _actual_hits(source) == expected

    @pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.stem)
    def test_good_fixture_clean(self, path):
        assert _actual_hits(path.read_text()) == []

    def test_allowlist_suppresses(self):
        source = (FIXTURE_DIR / "allowlist.py").read_text()
        assert _actual_hits(source) == []
        # Without the allowlist the same code must be flagged.
        stripped = re.sub(r"#\s*repro-lint:[^\n]*", "", source)
        assert (
            sorted({rule for _, rule in _actual_hits(stripped)}) == ["DET003"]
        )


class TestAllowlistEdgeCases:
    """`# repro-lint: ignore[...]` semantics beyond the one-line happy path."""

    def test_multiple_ids_one_comment(self):
        source = (
            "import time\n"
            "from repro.utils.rng import RandomSource\n"
            "x = RandomSource(), time.time()"
            "  # repro-lint: ignore[DET003, DET004]\n"
        )
        assert _actual_hits(source) == []

    def test_partial_suppression_leaves_other_rule(self):
        source = (
            "import time\n"
            "from repro.utils.rng import RandomSource\n"
            "x = RandomSource(), time.time()  # repro-lint: ignore[DET003]\n"
        )
        assert _actual_hits(source) == [(3, "DET004")]

    def test_comment_on_decorator_covers_def_header(self):
        source = (
            "import functools\n"
            "from repro.utils.rng import RandomSource\n"
            "\n"
            "\n"
            "@functools.lru_cache  # repro-lint: ignore[DET004]\n"
            "def f(rng=RandomSource()):\n"
            "    return rng\n"
        )
        assert _actual_hits(source) == []

    def test_comment_on_def_line_covers_decorator(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "@deadline(time.time() + 5)\n"
            "def f():  # repro-lint: ignore[DET003]\n"
            "    return 1\n"
        )
        assert _actual_hits(source) == []

    def test_header_comment_does_not_blanket_body(self):
        # A waiver on the def header must NOT cover violations inside
        # the function body.
        source = (
            "import time\n"
            "\n"
            "\n"
            "@deadline(5)\n"
            "def f():  # repro-lint: ignore[DET003]\n"
            "    return time.time()\n"
        )
        assert _actual_hits(source) == [(6, "DET003")]

    def test_comment_on_last_line_covers_multiline_statement(self):
        source = (
            "import time\n"
            "value = max(\n"
            "    time.time(),\n"
            "    0.0,\n"
            ")  # repro-lint: ignore[DET003]\n"
        )
        assert _actual_hits(source) == []

    def test_unknown_id_emits_ignore_warning(self):
        source = "x = 1  # repro-lint: ignore[DET999]\n"
        assert _actual_hits(source) == [(1, "IGNORE")]

    def test_known_project_rule_id_accepted_in_waiver(self):
        # Interprocedural ids (FORK/KEY/PAR) are "known" even in a
        # per-file pass, so their waivers never warn.
        source = "CACHE = {}\nCACHE['k'] = 1  # repro-lint: ignore[FORK001]\n"
        assert _actual_hits(source) == []

    def test_mixed_known_unknown_warns_only_on_unknown(self):
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: ignore[DET003, BOGUS42]\n"
        )
        assert _actual_hits(source) == [(2, "IGNORE")]


class TestDriver:
    def test_analyze_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("import random\n")
        (tmp_path / "pkg" / "data.txt").write_text("import random\n")
        violations = analyze_paths([tmp_path], default_rules())
        assert [v.rule_id for v in violations] == ["DET001"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        violations = analyze_paths([bad], default_rules())
        assert [v.rule_id for v in violations] == ["PARSE"]

    def test_render_format(self):
        violation = Violation("src/x.py", 3, "DET001", "boom")
        assert violation.render() == "src/x.py:3 DET001 boom"

    def test_json_report_shape(self):
        import json

        rules = default_rules()
        violations = analyze_source("import random\n", rules)
        payload = json.loads(report_json(violations, rules))
        assert payload["tool"] == "repro-lint"
        assert payload["total"] == 1
        assert payload["counts"] == {"DET001": 1}
        assert {r["id"] for r in payload["rules"]} == set(RULE_IDS)
        entry = payload["violations"][0]
        assert entry["rule_id"] == "DET001"
        assert entry["line"] == 1
