"""Fault layer: plans, injectors, fault-tolerant sensor, degradation."""

import pytest

from repro.faults import (
    BackoffState,
    DegradationManager,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRuntime,
    FaultSpec,
    FaultTolerantSensor,
)
from repro.thermal.rc import RCThermalNetwork
from repro.utils.rng import RandomSource


def _network(temp_c: float = 50.0) -> RCThermalNetwork:
    net = RCThermalNetwork(ambient_temp_c=25.0)
    net.add_node("a", 0.1)
    net.connect_to_ambient("a", 1.0)
    net.finalize()
    net.set_temperatures({"a": temp_c})
    return net


def _sensor(plan: FaultPlan, **kwargs) -> FaultTolerantSensor:
    return FaultTolerantSensor(
        _network(),
        injector=FaultInjector(plan),
        sample_period_s=0.05,
        quantization_c=0.0,
        **kwargs,
    )


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("sensor_dropout", 1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("sensor_dropout", -0.1)

    def test_window(self):
        spec = FaultSpec("npu_failure", 0.5, start_s=10.0, end_s=20.0)
        assert not spec.active_at(9.9)
        assert spec.active_at(10.0)
        assert spec.active_at(19.9)
        assert not spec.active_at(20.0)

    def test_default_durations(self):
        assert FaultSpec("sensor_stuck", 0.1).hold_duration_s() == 1.0
        assert FaultSpec("sensor_dropout", 0.1).hold_duration_s() == 0.05
        assert FaultSpec(
            "sensor_stuck", 0.1, duration_s=3.0
        ).hold_duration_s() == 3.0


class TestFaultPlan:
    def test_parse_round_trips(self):
        plan = FaultPlan.parse("sensor_dropout:0.05,npu_failure:0.02", seed=7)
        assert plan.seed == 7
        assert plan.describe() == "sensor_dropout:0.05,npu_failure:0.02"
        again = FaultPlan.parse(plan.describe(), seed=7)
        assert again == plan

    def test_parse_empty_is_zero_plan(self):
        plan = FaultPlan.parse("")
        assert plan.specs == ()
        assert plan.is_zero()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="kind:rate"):
            FaultPlan.parse("sensor_dropout")
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.parse("sensor_dropout:lots")

    def test_zero_rate_plan_is_zero(self):
        plan = FaultPlan(specs=(FaultSpec("npu_failure", 0.0),))
        assert plan.is_zero()
        assert not FaultPlan(specs=(FaultSpec("npu_failure", 0.1),)).is_zero()

    def test_spec_partitions(self):
        plan = FaultPlan.parse(
            "sensor_dropout:0.1,sensor_stuck:0.1,npu_failure:0.1,"
            "npu_timeout:0.1,deadline_overrun:0.1"
        )
        assert {s.kind for s in plan.sensor_specs()} == {
            "sensor_dropout", "sensor_stuck"
        }
        assert {s.kind for s in plan.npu_specs()} == {
            "npu_failure", "npu_timeout"
        }
        assert [s.kind for s in plan.deadline_specs()] == ["deadline_overrun"]

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "sensor_spike:0.2")
        monkeypatch.setenv("REPRO_FAULT_SEED", "9")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.seed == 9
        assert plan.specs[0].kind == "sensor_spike"


class TestFaultInjector:
    def test_deterministic_across_instances(self):
        plan = FaultPlan.parse("npu_failure:0.3", seed=5)
        draws_a = [
            FaultInjector(plan).npu_fault(0.5 * i) is not None
            for i in range(50)
        ]
        # Fresh injector, same plan: identical trigger pattern.
        injector = FaultInjector(plan)
        draws_b = [injector.npu_fault(0.5 * i) is not None for i in range(50)]
        assert draws_a != [False] * 50  # rate 0.3 over 50 rolls: some hits
        # First comprehension rebuilt the injector each roll, so compare
        # against a single-instance replay of the same stream:
        replay = FaultInjector(plan)
        assert draws_b == [
            replay.npu_fault(0.5 * i) is not None for i in range(50)
        ]

    def test_per_kind_streams_independent(self):
        """Changing one kind's rate never shifts another kind's pattern."""
        base = FaultPlan.parse("npu_failure:0.3,deadline_overrun:0.3", seed=5)
        bumped = FaultPlan.parse("npu_failure:0.9,deadline_overrun:0.3", seed=5)
        a = FaultInjector(base)
        b = FaultInjector(bumped)
        pattern_a = []
        pattern_b = []
        for i in range(100):
            now_s = 0.5 * i
            a.npu_fault(now_s)
            b.npu_fault(now_s)
            pattern_a.append(a.deadline_overrun(now_s))
            pattern_b.append(b.deadline_overrun(now_s))
        assert pattern_a == pattern_b

    def test_rate_zero_never_triggers_but_still_draws(self):
        plan = FaultPlan.parse("npu_failure:0.0,npu_timeout:0.5", seed=1)
        injector = FaultInjector(plan)
        kinds = [
            f.kind for f in
            (injector.npu_fault(0.5 * i) for i in range(100)) if f is not None
        ]
        assert kinds and set(kinds) == {"npu_timeout"}
        assert injector.injected_counts.get("npu_failure", 0) == 0

    def test_window_respected(self):
        plan = FaultPlan(
            specs=(FaultSpec("deadline_overrun", 1.0, start_s=5.0, end_s=6.0),),
            seed=0,
        )
        injector = FaultInjector(plan)
        assert not injector.deadline_overrun(4.9)
        assert injector.deadline_overrun(5.5)
        assert not injector.deadline_overrun(6.0)


class TestFaultTolerantSensor:
    def test_dropout_holds_ema(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("sensor_dropout", 1.0, start_s=0.2, duration_s=0.2),
            ),
            seed=0,
        )
        sensor = _sensor(plan)
        healthy = sensor.read(0.0)
        assert healthy == pytest.approx(50.0)
        sensor.read(0.05)
        sensor.read(0.1)
        # Inside the dropout window the EMA of past readings is served.
        held = sensor.read(0.2)
        assert held == pytest.approx(50.0)
        assert sensor.dropout_active(0.21)
        assert sensor.held_reads >= 1

    def test_stuck_freezes_and_self_reports(self):
        plan = FaultPlan(
            specs=(
                FaultSpec("sensor_stuck", 1.0, end_s=0.04, duration_s=0.3),
            ),
            seed=0,
        )
        sensor = _sensor(plan)
        frozen = sensor.read(0.0)
        assert sensor.stuck_active(0.1)
        # The network heats up but the frozen register does not move.
        sensor.network.set_temperatures({"a": 90.0})
        assert sensor.read(0.05) == pytest.approx(frozen)
        assert sensor.read(0.25) == pytest.approx(frozen)
        # After the window the sensor heals and tracks again.
        assert not sensor.stuck_active(0.4)
        assert sensor.read(0.4) == pytest.approx(90.0)

    def test_spike_visible_but_not_in_ema(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "sensor_spike", 1.0, start_s=0.1, end_s=0.14,
                    magnitude_c=25.0,
                ),
                FaultSpec("sensor_dropout", 1.0, start_s=0.2, duration_s=0.2),
            ),
            seed=0,
        )
        sensor = _sensor(plan)
        assert sensor.read(0.0) == pytest.approx(50.0)
        assert sensor.read(0.1) == pytest.approx(75.0)  # spiked reading
        # The spike is excluded from the EMA, so the dropout hold serves
        # the unpoisoned value.
        sensor.read(0.15)
        assert sensor.read(0.2) == pytest.approx(50.0)

    def test_zero_plan_matches_base_class(self):
        from repro.thermal.sensor import TemperatureSensor

        base = TemperatureSensor(
            _network(), sample_period_s=0.05, quantization_c=0.1,
            noise_std_c=0.3, rng=RandomSource(4).child("sensor"),
        )
        ft = FaultTolerantSensor(
            _network(), injector=FaultInjector(FaultPlan()),
            sample_period_s=0.05, quantization_c=0.1,
            noise_std_c=0.3, rng=RandomSource(4).child("sensor"),
        )
        for i in range(40):
            now_s = 0.05 * i
            assert ft.read(now_s) == base.read(now_s)

    def test_reset_clears_fault_state(self):
        plan = FaultPlan(
            specs=(FaultSpec("sensor_stuck", 1.0, duration_s=10.0),), seed=0
        )
        sensor = _sensor(plan)
        sensor.read(0.0)
        assert sensor.stuck_active(1.0)
        sensor.reset()
        assert not sensor.stuck_active(1.0)
        assert sensor.held_reads == 0
        assert sensor.fault_events == {}


class TestBackoff:
    def test_doubles_and_caps(self):
        backoff = BackoffState(1.0, 5.0)
        assert backoff.next_hold_s() == 1.0
        assert backoff.next_hold_s() == 2.0
        assert backoff.next_hold_s() == 4.0
        assert backoff.next_hold_s() == 5.0
        assert backoff.next_hold_s() == 5.0
        backoff.reset()
        assert backoff.next_hold_s() == 1.0


class TestDegradationManager:
    def test_npu_fallback_and_reprobe(self):
        deg = DegradationManager(npu_backoff_initial_s=1.0)
        assert deg.npu_mode(0.0) == "npu"
        deg.record_npu_failure(0.0, "npu_failure")
        assert not deg.npu_available
        assert deg.npu_mode(0.5) == "cpu"
        # Backoff elapsed: the policy re-probes the NPU.
        assert deg.npu_mode(1.0) == "npu"
        deg.record_npu_failure(1.0, "npu_timeout")  # re-probe fails: 2 s hold
        assert deg.npu_mode(2.5) == "cpu"
        assert deg.npu_mode(3.0) == "npu"
        deg.record_npu_success(3.0)
        assert deg.npu_available
        states = [e.state for e in deg.events]
        assert states == ["cpu_fallback", "reprobe_failed", "recovered"]

    def test_safe_mode_needs_consecutive_misses(self):
        deg = DegradationManager(deadline_miss_threshold=3)
        deg.record_deadline_miss(0.0)
        deg.record_deadline_miss(0.5)
        deg.record_deadline_ok(1.0)  # streak broken
        deg.record_deadline_miss(1.5)
        deg.record_deadline_miss(2.0)
        assert not deg.in_safe_mode(2.0)
        deg.record_deadline_miss(2.5)
        assert deg.in_safe_mode(2.5)

    def test_safe_mode_self_heals_with_growing_hold(self):
        deg = DegradationManager(
            deadline_miss_threshold=1, safe_mode_hold_initial_s=2.0,
            safe_mode_hold_max_s=60.0,
        )
        deg.record_deadline_miss(10.0)
        assert deg.in_safe_mode(11.0)
        assert not deg.in_safe_mode(12.0)  # 2 s hold expired
        assert deg.safe_mode_time_s(12.0) == pytest.approx(2.0)
        deg.record_deadline_miss(13.0)
        assert deg.in_safe_mode(16.0)  # second hold is 4 s
        assert not deg.in_safe_mode(17.0)
        states = [e.state for e in deg.events]
        assert states == ["entered", "exited", "entered", "exited"]


class TestFaultRuntime:
    def test_counters_snapshot(self):
        runtime = FaultRuntime.from_plan(
            FaultPlan.parse("deadline_overrun:1.0", seed=0)
        )
        runtime.injector.deadline_overrun(0.0)
        runtime.degradation.record_deadline_miss(0.0)
        runtime.count("qos_dvfs.hold")
        counters = runtime.counters(0.0)
        assert counters["injected.deadline_overrun"] == 1.0
        assert counters["event.qos_dvfs.hold"] == 1.0
        assert "safe_mode_time_s" in counters

    def test_all_kinds_have_a_stream(self):
        plan = FaultPlan(
            specs=tuple(FaultSpec(kind, 0.0) for kind in FAULT_KINDS)
        )
        injector = FaultInjector(plan)
        assert set(injector._streams) == set(FAULT_KINDS)
