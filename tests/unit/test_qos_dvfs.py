"""The paper's QoS DVFS control loop (Sec. 5.2) and Eq. 1."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.governors.qos_dvfs import QoSDVFSControlLoop, estimate_min_level
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.platform.vf import VFLevel, VFTable
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.units import GHZ


@pytest.fixture(scope="module")
def platform():
    return hikey970()


@pytest.fixture
def table():
    return VFTable(
        [VFLevel(0.5 * GHZ, 0.7), VFLevel(1.0 * GHZ, 0.8), VFLevel(2.0 * GHZ, 1.0)]
    )


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


class TestEstimateMinLevel:
    def test_linear_scaling(self, table):
        """At 1 GHz doing 1 GIPS with a 1.5 GIPS target -> need 1.5 GHz -> 2 GHz level."""
        level = estimate_min_level(1e9, 1e9, 1.5e9, table)
        assert level.frequency_hz == pytest.approx(2.0 * GHZ)

    def test_target_already_met_picks_lowest_sufficient(self, table):
        level = estimate_min_level(2e9, 2e9, 0.4e9, table)
        assert level.frequency_hz == pytest.approx(0.5 * GHZ)

    def test_unreachable_falls_back_to_max(self, table):
        level = estimate_min_level(1e9, 2e9, 10e9, table)
        assert level == table.max_level

    def test_no_reading_is_conservative(self, table):
        assert estimate_min_level(0.0, 1e9, 1e9, table) == table.max_level


class TestControlLoop:
    def test_idle_clusters_at_minimum(self, platform):
        sim = _sim(platform)
        sim.set_vf_level(BIG, platform.cluster(BIG).vf_table.max_level)
        QoSDVFSControlLoop().attach(sim)
        sim.run_for(0.2)
        assert sim.vf_level(BIG) == platform.cluster(BIG).vf_table.min_level

    def test_converges_to_qos_sufficient_level(self, platform):
        sim = _sim(platform)
        app = get_app("syr2k")
        target = 0.5 * app.max_ips(LITTLE, platform.cluster(LITTLE).vf_table)
        sim.submit(_long("syr2k"), target, 0.0)
        sim.placement_policy = lambda s, p: 0
        QoSDVFSControlLoop().attach(sim)
        sim.run_for(3.0)
        proc = sim.running_processes()[0]
        assert sim.qos_satisfied(proc)
        # and not at an excessive level: one step below must violate QoS.
        expected = app.min_frequency_for(
            LITTLE, platform.cluster(LITTLE).vf_table, target
        )
        got = sim.vf_level(LITTLE).frequency_hz
        assert got == pytest.approx(expected.frequency_hz, rel=0.25)

    def test_moves_one_step_per_invocation(self, platform):
        sim = _sim(platform)
        table = platform.cluster(LITTLE).vf_table
        app = get_app("syr2k")
        target = 0.9 * app.max_ips(LITTLE, table)
        sim.submit(_long("syr2k"), target, 0.0)
        sim.placement_policy = lambda s, p: 0
        loop = QoSDVFSControlLoop(period_s=0.05)
        loop.attach(sim)
        start_idx = table.index_of(sim.vf_level(LITTLE).frequency_hz)
        sim.run_for(0.06)  # exactly one loop invocation
        after_idx = table.index_of(sim.vf_level(LITTLE).frequency_hz)
        assert after_idx - start_idx <= 1

    def test_cluster_follows_most_demanding_app(self, platform):
        """Per-cluster DVFS: the max over the apps' needs wins (Eq. 5)."""
        sim = _sim(platform)
        table = platform.cluster(LITTLE).vf_table
        lazy_target = 0.2 * get_app("syr2k").max_ips(LITTLE, table)
        eager_target = 0.85 * get_app("gramschmidt").max_ips(LITTLE, table)
        sim.submit(_long("syr2k"), lazy_target, 0.0)
        sim.submit(_long("gramschmidt"), eager_target, 0.0)
        order = iter([0, 1])
        sim.placement_policy = lambda s, p: next(order)
        QoSDVFSControlLoop().attach(sim)
        sim.run_for(3.0)
        eager_level = get_app("gramschmidt").min_frequency_for(
            LITTLE, table, eager_target
        )
        assert sim.vf_level(LITTLE).frequency_hz >= eager_level.frequency_hz * 0.8

    def test_skip_after_migration(self, platform):
        sim = _sim(platform)
        loop = QoSDVFSControlLoop(period_s=0.05, skip_iterations_after_migration=2)
        loop.attach(sim)
        loop.notify_migration()
        sim.run_for(0.25)
        assert loop.skipped == 2
        assert loop.invocations >= 4

    def test_no_skip_without_migration(self, platform):
        sim = _sim(platform)
        loop = QoSDVFSControlLoop()
        loop.attach(sim)
        sim.run_for(0.3)
        assert loop.skipped == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            QoSDVFSControlLoop(period_s=0.0)
        with pytest.raises(ValueError):
            QoSDVFSControlLoop(skip_iterations_after_migration=-1)
