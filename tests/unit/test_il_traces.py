"""Oracle trace collection."""

import pytest

from repro.il.traces import TraceCollector, TracePoint, TraceScenario
from repro.platform import hikey970  # noqa: F401 (platform fixture lives in conftest)
from repro.platform.hikey import BIG, LITTLE


# The session-scoped `platform` fixture comes from tests/conftest.py.


class TestTraceScenario:
    def test_free_cores(self, platform):
        scenario = TraceScenario("adi", ((0, "syr2k"), (4, "heat-3d")))
        assert scenario.free_cores(platform) == [1, 2, 3, 5, 6, 7]

    def test_background_dict(self):
        scenario = TraceScenario("adi", ((0, "syr2k"),))
        assert scenario.background_dict() == {0: "syr2k"}


class TestTraceGrid:
    def test_lookup_roundtrip(self, tiny_trace_grid):
        grid = tiny_trace_grid
        freqs = {name: grid.vf_grid[name][0] for name in grid.vf_grid}
        point = grid.lookup(0, freqs)
        assert isinstance(point, TracePoint)
        assert point.aoi_core == 0

    def test_aoi_cores(self, tiny_trace_grid):
        assert tiny_trace_grid.aoi_cores() == [0, 4]

    def test_complete_grid(self, tiny_trace_grid):
        """2 cores x 2 LITTLE levels x 2 big levels = 8 points."""
        assert len(tiny_trace_grid.points) == 8

    def test_max_aoi_ips_positive(self, tiny_trace_grid):
        assert tiny_trace_grid.max_aoi_ips() > 1e8


class TestTracePhysics:
    def test_ips_grows_with_own_cluster_frequency(self, tiny_trace_grid):
        grid = tiny_trace_grid
        lo = {n: grid.vf_grid[n][0] for n in grid.vf_grid}
        hi = dict(lo)
        hi[LITTLE] = grid.vf_grid[LITTLE][-1]
        assert grid.lookup(0, hi).aoi_ips > grid.lookup(0, lo).aoi_ips

    def test_temperature_grows_with_frequency(self, tiny_trace_grid):
        grid = tiny_trace_grid
        lo = {n: grid.vf_grid[n][0] for n in grid.vf_grid}
        hi = {n: grid.vf_grid[n][-1] for n in grid.vf_grid}
        assert grid.lookup(4, hi).peak_temp_c > grid.lookup(4, lo).peak_temp_c

    def test_big_mapping_faster_at_equal_level_index(self, tiny_trace_grid):
        grid = tiny_trace_grid
        freqs_hi = {n: grid.vf_grid[n][-1] for n in grid.vf_grid}
        assert (
            grid.lookup(4, freqs_hi).aoi_ips > grid.lookup(0, freqs_hi).aoi_ips
        )

    def test_temperatures_in_sane_range(self, tiny_trace_grid):
        for point in tiny_trace_grid.points.values():
            assert 25.0 < point.peak_temp_c < 100.0

    def test_l2d_rate_proportional_to_ips(self, tiny_trace_grid):
        for point in tiny_trace_grid.points.values():
            assert point.aoi_l2d_rate == pytest.approx(
                point.aoi_ips * 0.015, rel=0.2
            )  # seidel-2d l2d_per_inst = 0.015


class TestCollectorValidation:
    def test_occupied_candidate_rejected(self, platform):
        collector = TraceCollector(platform, vf_levels_per_cluster=2)
        scenario = TraceScenario("adi", ((0, "syr2k"),))
        with pytest.raises(ValueError, match="occupied"):
            collector.collect(scenario, aoi_cores=[0])

    def test_full_background_rejected(self, platform):
        collector = TraceCollector(platform, vf_levels_per_cluster=2)
        scenario = TraceScenario(
            "adi", tuple((c, "syr2k") for c in range(8))
        )
        with pytest.raises(ValueError, match="no free core"):
            collector.collect(scenario)

    def test_grid_frequencies_sorted(self, platform):
        collector = TraceCollector(platform, vf_levels_per_cluster=3)
        grid = collector.grid_frequencies()
        for freqs in grid.values():
            assert freqs == sorted(freqs)
            assert len(freqs) == 3
