"""Temperature sensor: sampling, quantization, hold behaviour."""

import pytest

from repro.thermal.rc import RCThermalNetwork
from repro.thermal.sensor import TemperatureSensor
from repro.utils.rng import RandomSource


def _network():
    net = RCThermalNetwork(ambient_temp_c=25.0)
    net.add_node("a", 0.1)
    net.add_node("b", 0.1)
    net.connect("a", "b", 1.0)
    net.connect_to_ambient("b", 1.0)
    net.finalize()
    return net


class TestSensor:
    def test_reads_max_over_nodes(self):
        net = _network()
        net.set_temperatures({"a": 40.0, "b": 55.0})
        sensor = TemperatureSensor(net, quantization_c=0.0)
        assert sensor.read(0.0) == pytest.approx(55.0)

    def test_monitored_subset(self):
        net = _network()
        net.set_temperatures({"a": 40.0, "b": 55.0})
        sensor = TemperatureSensor(net, nodes=["a"], quantization_c=0.0)
        assert sensor.read(0.0) == pytest.approx(40.0)

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            TemperatureSensor(_network(), nodes=["missing"])

    def test_zero_order_hold_between_samples(self):
        net = _network()
        net.set_temperatures({"a": 40.0})
        sensor = TemperatureSensor(net, sample_period_s=0.05, quantization_c=0.0)
        first = sensor.read(0.0)
        net.set_temperatures({"a": 90.0})
        # Within the same sample period the held value is returned.
        assert sensor.read(0.01) == pytest.approx(first)
        # After the period elapses a fresh sample is taken.
        assert sensor.read(0.05) == pytest.approx(90.0)

    def test_quantization(self):
        net = _network()
        net.set_temperatures({"a": 42.5678, "b": 42.5678})
        sensor = TemperatureSensor(net, quantization_c=0.1)
        value = sensor.read(0.0)
        assert value == pytest.approx(42.6)

    def test_noise_is_seeded(self):
        readings = []
        for _ in range(2):
            net = _network()
            net.set_temperatures({"a": 50.0, "b": 50.0})
            sensor = TemperatureSensor(
                net, quantization_c=0.0, noise_std_c=0.5, rng=RandomSource(3)
            )
            readings.append(sensor.read(0.0))
        assert readings[0] == pytest.approx(readings[1])

    def test_reset_forces_fresh_sample(self):
        net = _network()
        net.set_temperatures({"a": 40.0})
        sensor = TemperatureSensor(net, sample_period_s=10.0, quantization_c=0.0)
        sensor.read(0.0)
        net.set_temperatures({"a": 60.0})
        sensor.reset()
        assert sensor.read(0.001) == pytest.approx(60.0)

    def test_paper_sampling_rate_default(self):
        sensor = TemperatureSensor(_network())
        assert sensor.sample_period_s == pytest.approx(0.05)  # 20 Hz
