"""Metrics registry arithmetic, labelling, strictness, and snapshots."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    METRIC_SPECS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric,
    metric_names,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == pytest.approx(1.5)
        g.inc(0.5)
        assert g.value == pytest.approx(2.0)

    def test_histogram_stats(self):
        h = Histogram(bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == pytest.approx(2.55)
        assert h.mean == pytest.approx(0.85)
        assert h.min == pytest.approx(0.05)
        assert h.max == pytest.approx(2.0)
        # One observation per bucket: <=0.1, <=1.0, +inf overflow.
        assert h.bucket_counts == [1, 1, 1]

    def test_histogram_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_histogram_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 0.1))

    def test_histogram_as_dict(self):
        h = Histogram(bounds=(1.0,))
        h.observe(0.5)
        payload = h.as_dict()
        assert payload["count"] == 1
        assert payload["bucket_counts"] == [1, 0]


class TestRegistry:
    def test_same_name_and_labels_memoizes(self):
        registry = MetricsRegistry()
        a = registry.counter("migrations_total")
        b = registry.counter("migrations_total")
        assert a is b

    def test_distinct_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        big = registry.counter("vf_residency_s", cluster="big", freq_mhz=2362)
        little = registry.counter(
            "vf_residency_s", cluster="LITTLE", freq_mhz=1844
        )
        assert big is not little
        big.inc(1.0)
        assert little.value == 0.0

    def test_strict_rejects_undeclared_names(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.counter("not_a_declared_metric_total")

    def test_strict_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            # Declared as a counter, requested as a gauge.
            registry.gauge("migrations_total")

    def test_non_strict_allows_anything(self):
        registry = MetricsRegistry(strict=False)
        registry.counter("adhoc_total").inc()
        assert registry.scalar_snapshot()["adhoc_total"] == 1.0

    def test_scalar_snapshot_renders_labels(self):
        registry = MetricsRegistry()
        registry.counter("qos_crossings_total", direction="violated").inc(3)
        registry.gauge("sim_time_s").set(12.5)
        snap = registry.scalar_snapshot()
        assert snap["qos_crossings_total{direction=violated}"] == 3.0
        assert snap["sim_time_s"] == 12.5

    def test_snapshot_includes_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("controller_latency_s", controller="qos-dvfs").observe(
            1e-4
        )
        snap = registry.snapshot()
        payload = snap["controller_latency_s{controller=qos-dvfs}"]
        assert payload["count"] == 1

    def test_histogram_items_filter(self):
        registry = MetricsRegistry()
        registry.histogram("controller_latency_s", controller="gts").observe(0.1)
        items = registry.histogram_items("controller_latency_s")
        assert len(items) == 1
        name, labels, histogram = items[0]
        assert name == "controller_latency_s"
        assert labels == {"controller": "gts"}
        assert histogram.count == 1

    def test_names_in_use(self):
        registry = MetricsRegistry()
        registry.counter("sim_steps_total").inc()
        registry.gauge("sim_time_s").set(1.0)
        assert registry.names_in_use() == ["sim_steps_total", "sim_time_s"]


class TestCatalog:
    def test_format_metric(self):
        assert format_metric("x", ()) == "x"
        assert format_metric("x", (("a", 1), ("b", "y"))) == "x{a=1,b=y}"

    def test_metric_names_sorted_and_complete(self):
        names = metric_names()
        assert names == sorted(names)
        assert set(names) == set(METRIC_SPECS)

    def test_every_spec_has_kind_and_unit(self):
        for spec in METRIC_SPECS.values():
            assert spec.kind in {"counter", "gauge", "histogram"}
            assert spec.unit
            assert spec.description

    def test_naming_convention(self):
        """Counters end in _total or a unit suffix; everything lowercase."""
        for name, spec in METRIC_SPECS.items():
            assert name == name.lower()
            if spec.kind == "counter":
                assert name.endswith(("_total", "_s")), name
