"""Grid-search NAS."""

import numpy as np

from repro.nn.nas import grid_search
from repro.nn.training import TrainingConfig
from repro.utils.rng import RandomSource


def _data(n, seed):
    rng = RandomSource(seed)
    x = rng.normal(size=(n, 4))
    y = np.tanh(x[:, :2]) + 0.1 * x[:, 2:]
    return x, y


class TestGridSearch:
    def test_evaluates_every_grid_point(self):
        x, y = _data(80, 0)
        xt, yt = _data(30, 1)
        result = grid_search(
            x, y, xt, yt,
            depths=(1, 2), widths=(4, 8),
            config=TrainingConfig(max_epochs=10, patience=5),
        )
        assert set(result.losses) == {(1, 4), (1, 8), (2, 4), (2, 8)}

    def test_best_matches_minimum(self):
        x, y = _data(80, 0)
        xt, yt = _data(30, 1)
        result = grid_search(
            x, y, xt, yt,
            depths=(1, 2), widths=(4,),
            config=TrainingConfig(max_epochs=10, patience=5),
        )
        best_key = min(result.losses, key=result.losses.get)
        assert (result.best_depth, result.best_width) == best_key
        assert result.best_loss == result.losses[best_key]

    def test_rows_sorted(self):
        x, y = _data(50, 0)
        result = grid_search(
            x, y, x, y,
            depths=(2, 1), widths=(8, 4),
            config=TrainingConfig(max_epochs=5, patience=5),
        )
        rows = result.as_rows()
        assert rows == sorted(rows)

    def test_capacity_helps_on_nonlinear_task(self):
        """A hidden layer beats a pure linear model on a tanh target."""
        x, y = _data(300, 0)
        xt, yt = _data(100, 1)
        result = grid_search(
            x, y, xt, yt,
            depths=(0, 2), widths=(16,),
            config=TrainingConfig(max_epochs=60, patience=20),
        )
        assert result.losses[(2, 16)] < result.losses[(0, 16)]
