"""The @hot_path marker: runtime no-op, introspectable, applied to the kernel."""

from repro.power import PowerModel
from repro.sim.kernel import Simulator
from repro.thermal import RCThermalNetwork
from repro.utils.hotpath import HOT_PATH_ATTR, hot_path, is_hot_path


def test_decorator_is_identity():
    def f(x):
        return x + 1

    g = hot_path(f)
    assert g is f
    assert g(1) == 2


def test_marker_attribute_set():
    @hot_path
    def f():
        pass

    assert getattr(f, HOT_PATH_ATTR) is True
    assert is_hot_path(f)
    assert not is_hot_path(test_decorator_is_identity)


def test_kernel_hot_functions_marked():
    assert is_hot_path(RCThermalNetwork.step_vector)
    assert is_hot_path(PowerModel.compute_vector)
    assert is_hot_path(Simulator.step)
    assert is_hot_path(Simulator._execute_processes)
    assert is_hot_path(Simulator._resolve_step_params)
    assert is_hot_path(Simulator._advance_thermal)
    # The name-keyed construction/analysis surfaces stay unmarked.
    assert not is_hot_path(RCThermalNetwork.step)
    assert not is_hot_path(PowerModel.compute)
