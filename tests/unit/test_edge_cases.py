"""Edge cases and error paths across modules."""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.experiments.main_mixed import _make_technique
from repro.experiments.nas import split_dataset_by_apps
from repro.il.dataset import ILDataset
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING


class TestMakeTechnique:
    def test_unknown_name_rejected(self, assets):
        with pytest.raises(ValueError, match="unknown technique"):
            _make_technique("SCHED_MAGIC", assets, 0, 0)

    def test_repetition_cycles_models(self, assets):
        n = len(assets.models())
        t0 = _make_technique("TOP-IL", assets, 0, 0)
        tn = _make_technique("TOP-IL", assets, n, 0)
        assert t0.migration.model is tn.migration.model


class TestNASSplit:
    def test_split_by_apps(self):
        ds = ILDataset(
            features=np.zeros((4, 21)),
            labels=np.zeros((4, 8)),
            meta=[("adi", 0), ("jacobi-2d", 0), ("adi", 1), ("covariance", 2)],
        )
        train, test = split_dataset_by_apps(ds)
        assert len(train) == 2
        assert len(test) == 2
        assert all(m[0] == "adi" for m in train.meta)


class TestSimConfigValidation:
    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(dt_s=0.0)

    def test_cold_cache_penalty_below_one_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(cold_cache_penalty=0.9)

    def test_negative_contention_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(contention_coeff=-0.1)


class TestSimulatorEdges:
    def test_zero_process_steps_are_stable(self, platform):
        sim = Simulator(platform, FAN_COOLING, config=SimConfig(dt_s=0.05))
        sim.run_for(1.0)
        assert not sim.running_processes()
        assert sim.now_s == pytest.approx(1.0)

    def test_process_finishing_exactly_at_step_boundary(self, platform):
        sim = Simulator(
            platform,
            FAN_COOLING,
            config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        app = get_app("syr2k")
        rate = app.ips("LITTLE", sim.vf_level("LITTLE").frequency_hz)
        exact = dataclasses.replace(
            app, total_instructions=rate * 0.01 * 10
        )
        pid = sim.submit(exact, 1e6, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.run_for(1.0)
        proc = sim.process(pid)
        assert not proc.is_running()
        assert proc.instructions_done == pytest.approx(
            exact.total_instructions, rel=1e-9
        )

    def test_simultaneous_arrivals_all_admitted(self, platform):
        sim = Simulator(platform, FAN_COOLING, config=SimConfig(dt_s=0.01))
        long_app = dataclasses.replace(
            get_app("adi"), total_instructions=1e15
        )
        for _ in range(5):
            sim.submit(long_app, 1e8, 0.5)
        sim.run_for(0.6)
        assert len(sim.running_processes()) == 5

    def test_unknown_pid_rejected(self, platform):
        sim = Simulator(platform, FAN_COOLING)
        with pytest.raises(KeyError):
            sim.process(42)

    def test_set_vf_unknown_cluster_rejected(self, platform):
        sim = Simulator(platform, FAN_COOLING)
        level = platform.cluster("big").vf_table.min_level
        with pytest.raises(KeyError):
            sim.set_vf_level("mega", level)

    def test_set_vf_foreign_level_rejected(self, platform):
        sim = Simulator(platform, FAN_COOLING)
        foreign = platform.cluster("big").vf_table.max_level
        with pytest.raises(KeyError):
            sim.set_vf_level("LITTLE", foreign)  # 2.36 GHz not in table
