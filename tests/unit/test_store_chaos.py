"""The hardened store under injected infrastructure faults.

Scripted duck-typed fake engines drive each failure mode one at a time
(the real :class:`~repro.chaos.engine.ChaosEngine` is probabilistic;
these tests need exact scripts): bounded retry absorbs transient write
errors, verify-on-read refuses torn payloads, ENOSPC and unwritable
directories trigger the one-shot in-memory degradation, and gc reaps
what a crashed writer left behind.
"""

import errno
import logging
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import ArtifactKey, ArtifactStore, CellResultHandle

HANDLE = CellResultHandle()


def _key(seed=7):
    return ArtifactKey.create("cell/chaos-test", config={"x": 1}, seed=seed)


class ScriptedEngine:
    """Duck-typed stand-in: fails the first ``script`` opportunities.

    ``script`` maps seam name -> list of exceptions (or ``"torn"`` /
    ``"flip"`` markers for the mangle seam) consumed FIFO; an exhausted
    list means the seam passes through.
    """

    def __init__(self, **script):
        self.script = {k: list(v) for k, v in script.items()}

    def _next(self, seam):
        queue = self.script.get(seam, [])
        return queue.pop(0) if queue else None

    def before_payload_read(self):
        exc = self._next("read")
        if exc is not None:
            raise exc

    def before_payload_write(self):
        exc = self._next("write")
        if exc is not None:
            raise exc

    def mangle_written_payload(self, path):
        action = self._next("mangle")
        if action == "torn":
            size = os.path.getsize(path)
            with open(path, "ab") as handle:
                handle.truncate(size // 2)
        elif action == "flip":
            with open(path, "r+b") as handle:
                first = handle.read(1)
                handle.seek(0)
                handle.write(bytes([first[0] ^ 0xFF]))


def _eio():
    return OSError(errno.EIO, "injected transient error")


class TestBoundedRetry:
    def test_transient_write_errors_absorbed(self, tmp_path):
        registry = MetricsRegistry()
        engine = ScriptedEngine(write=[_eio(), _eio()])
        store = ArtifactStore(str(tmp_path), registry=registry, chaos=engine)
        store.put(_key(), {"v": 1}, HANDLE)
        assert not store.degraded
        assert store.lookup(_key(), HANDLE) == (True, {"v": 1})
        assert (
            registry.counter("store_retries_total", op="write").value == 2
        )

    def test_transient_read_errors_absorbed(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(str(tmp_path), chaos=ScriptedEngine())
        store.put(_key(), {"v": 1}, HANDLE)
        flaky = ArtifactStore(
            str(tmp_path),
            registry=registry,
            chaos=ScriptedEngine(read=[_eio()]),
        )
        assert flaky.lookup(_key(), HANDLE) == (True, {"v": 1})
        assert (
            registry.counter("store_retries_total", op="read").value == 1
        )

    def test_retries_are_bounded_then_surface(self, tmp_path):
        """Exhausted retries on a read are a miss, never an infinite loop
        — and the entry is left on disk for when the I/O recovers."""
        store = ArtifactStore(str(tmp_path), chaos=ScriptedEngine())
        store.put(_key(), {"v": 1}, HANDLE)
        sick = ArtifactStore(
            str(tmp_path), chaos=ScriptedEngine(read=[_eio()] * 50)
        )
        assert sick.lookup(_key(), HANDLE) == (False, None)
        healthy = ArtifactStore(str(tmp_path), chaos=ScriptedEngine())
        assert healthy.lookup(_key(), HANDLE) == (True, {"v": 1})


class TestTornWrites:
    @pytest.mark.parametrize("mangle", ["torn", "flip"])
    def test_corrupted_payload_never_served(self, tmp_path, mangle):
        writer = ArtifactStore(
            str(tmp_path), chaos=ScriptedEngine(mangle=[mangle])
        )
        writer.put(_key(), {"v": 1}, HANDLE)
        registry = MetricsRegistry()
        reader = ArtifactStore(str(tmp_path), registry=registry)
        assert reader.lookup(_key(), HANDLE) == (False, None)
        assert (
            registry.counter(
                "store_evicted_corrupt_total", reason="checksum"
            ).value
            == 1
        )
        # The eviction cleared the way: a clean rewrite is served.
        reader.put(_key(), {"v": 2}, HANDLE)
        assert reader.lookup(_key(), HANDLE) == (True, {"v": 2})

    def test_get_or_create_recomputes_over_torn_entry(self, tmp_path):
        writer = ArtifactStore(
            str(tmp_path), chaos=ScriptedEngine(mangle=["torn"])
        )
        writer.put(_key(), {"v": "torn"}, HANDLE)
        store = ArtifactStore(str(tmp_path))
        built = []

        def build():
            built.append(True)
            return {"v": "fresh"}

        assert store.get_or_create(_key(), HANDLE, build) == {"v": "fresh"}
        assert built == [True]
        # The recomputed value was republished and now verifies.
        assert ArtifactStore(str(tmp_path)).lookup(_key(), HANDLE) == (
            True,
            {"v": "fresh"},
        )


class TestDegradation:
    def test_enospc_degrades_once_and_serves_memory(self, tmp_path, caplog):
        registry = MetricsRegistry()
        enospc = OSError(errno.ENOSPC, "injected: disk full")
        store = ArtifactStore(
            str(tmp_path),
            registry=registry,
            chaos=ScriptedEngine(write=[enospc]),
        )
        with caplog.at_level(logging.WARNING, logger="repro.store.store"):
            path = store.put(_key(), {"v": 1}, HANDLE)
        assert store.degraded
        assert path.startswith("<memory>")
        assert registry.gauge("store_degraded").value == 1.0
        warnings = [
            r for r in caplog.records if "degraded" in r.getMessage()
        ]
        assert len(warnings) == 1
        # Degraded mode still serves this process's own writes...
        assert store.lookup(_key(), HANDLE) == (True, {"v": 1})
        # ...keeps serving later puts from memory without re-warning...
        with caplog.at_level(logging.WARNING, logger="repro.store.store"):
            store.put(_key(seed=8), {"v": 2}, HANDLE)
        assert store.lookup(_key(seed=8), HANDLE) == (True, {"v": 2})
        # ...and never touched the sick directory again.
        assert [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
        ] == []

    def test_degraded_store_does_not_read_disk(self, tmp_path):
        healthy = ArtifactStore(str(tmp_path))
        healthy.put(_key(), {"v": "on-disk"}, HANDLE)
        enospc = OSError(errno.ENOSPC, "injected: disk full")
        store = ArtifactStore(
            str(tmp_path), chaos=ScriptedEngine(write=[enospc])
        )
        store.put(_key(seed=9), {"v": "mem"}, HANDLE)
        assert store.degraded
        # A degraded store cannot trust (or re-verify) the directory it
        # failed on: the on-disk entry is a miss from its point of view.
        assert store.lookup(_key(), HANDLE) == (False, None)
        assert store.lookup(_key(seed=9), HANDLE) == (True, {"v": "mem"})

    def test_unwritable_root_degrades(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permissions")
        root = tmp_path / "sealed"
        root.mkdir()
        root.chmod(0o500)
        try:
            store = ArtifactStore(str(root))
            store.put(_key(), {"v": 1}, HANDLE)
            assert store.degraded
            assert store.lookup(_key(), HANDLE) == (True, {"v": 1})
        finally:
            root.chmod(0o700)


class TestGcOrphans:
    def test_gc_reaps_crashed_writer_temp_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(_key(), {"v": 1}, HANDLE)
        # What a SIGKILL'd writer leaves behind: temp payload + meta that
        # never reached their atomic rename.
        kind_dir = store.kind_dir("cell/chaos-test")
        for name in ("tmp-999-deadbeef.json", "tmp-999-deadbeef.meta.json"):
            with open(os.path.join(kind_dir, name), "w") as fh:
                fh.write("half-written")
        removed = store.gc(orphan_grace_s=0.0)
        assert removed >= 2
        survivors = {
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
        }
        assert not any(name.startswith("tmp-") for name in survivors)
        # The completed entry survived the sweep.
        assert store.lookup(_key(), HANDLE) == (True, {"v": 1})
