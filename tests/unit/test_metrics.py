"""Run metrics: CPU-time aggregation and run summaries."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.governors.techniques import GTSOndemand
from repro.metrics.cputime import CpuTimeByVF, aggregate_cpu_time
from repro.metrics.summary import summarize_run
from repro.sim import SimConfig, Simulator
from repro.sim.process import Process
from repro.thermal import FAN_COOLING
from repro.workloads import run_workload, single_app_workload


class TestCpuTimeByVF:
    def test_add_and_total(self):
        usage = CpuTimeByVF()
        usage.add("LITTLE", 1e9, 2.0)
        usage.add("LITTLE", 1e9, 1.0)
        usage.add("big", 2e9, 3.0)
        assert usage.total == pytest.approx(6.0)
        assert usage.seconds[("LITTLE", 1e9)] == pytest.approx(3.0)

    def test_cluster_total(self):
        usage = CpuTimeByVF()
        usage.add("LITTLE", 1e9, 2.0)
        usage.add("LITTLE", 1.5e9, 1.0)
        usage.add("big", 2e9, 4.0)
        assert usage.cluster_total("LITTLE") == pytest.approx(3.0)

    def test_fraction(self):
        usage = CpuTimeByVF()
        usage.add("LITTLE", 1e9, 1.0)
        usage.add("big", 2e9, 3.0)
        assert usage.fraction("big", 2e9) == pytest.approx(0.75)
        assert usage.fraction("big", 5e9) == 0.0

    def test_fraction_of_empty_is_zero(self):
        assert CpuTimeByVF().fraction("big", 1e9) == 0.0

    def test_merge(self):
        a = CpuTimeByVF()
        a.add("big", 1e9, 1.0)
        b = CpuTimeByVF()
        b.add("big", 1e9, 2.0)
        b.add("LITTLE", 1e9, 1.0)
        merged = a.merge(b)
        assert merged.seconds[("big", 1e9)] == pytest.approx(3.0)
        assert a.seconds[("big", 1e9)] == pytest.approx(1.0)  # unchanged

    def test_as_rows_covers_full_tables(self, platform):
        usage = CpuTimeByVF()
        usage.add("big", platform.cluster("big").vf_table[0].frequency_hz, 1.0)
        rows = usage.as_rows(platform)
        n_levels = sum(len(c.vf_table) for c in platform.clusters)
        assert len(rows) == n_levels

    def test_aggregate_from_processes(self):
        p1 = Process(0, get_app("adi"), 1e8, 0.0)
        p2 = Process(1, get_app("adi"), 1e8, 0.0)
        p1.account_execution(1.0, 1e9, 0, "big", 2e9)
        p2.account_execution(2.0, 2e9, 0, "big", 2e9)
        usage = aggregate_cpu_time([p1, p2])
        assert usage.seconds[("big", 2e9)] == pytest.approx(3.0)


class TestRunSummary:
    @pytest.fixture(scope="class")
    def run(self, platform):
        workload = single_app_workload(
            "syr2k", platform, instruction_scale=0.01
        )
        return run_workload(platform, GTSOndemand(), workload, seed=0)

    def test_summary_fields_populated(self, run):
        s = run.summary
        assert s.technique == "GTS/ondemand"
        assert s.duration_s > 0
        assert 25.0 < s.mean_temp_c < 90.0
        assert s.peak_temp_c >= s.mean_temp_c
        assert s.n_apps == 1

    def test_cpu_time_recorded(self, run):
        assert run.summary.cpu_time_by_vf.total > 0

    def test_utilization_bounds(self, run):
        s = run.summary
        assert 0.0 < s.mean_utilization <= 1.0
        assert s.mean_utilization <= s.peak_utilization <= 1.0

    def test_feasible_single_app_meets_qos(self, run):
        assert run.summary.n_qos_violations == 0

    def test_overhead_fraction_for_unmanaged_run_is_zero(self, run):
        assert run.summary.overhead_fraction == 0.0
