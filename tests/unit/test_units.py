"""Unit conversions and formatting helpers."""

import pytest

from repro.utils import units


class TestFrequencyConstants:
    def test_ghz_is_1e9(self):
        assert units.GHZ == 1e9

    def test_mhz_is_1e6(self):
        assert units.MHZ == 1e6

    def test_khz_is_1e3(self):
        assert units.KHZ == 1e3

    def test_hz_is_identity(self):
        assert units.HZ == 1.0

    def test_composition(self):
        assert 1.844 * units.GHZ == 1844 * units.MHZ


class TestTemperatureConversion:
    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(42.5)) == pytest.approx(
            42.5
        )

    def test_negative_temperature(self):
        assert units.celsius_to_kelvin(-40.0) == pytest.approx(233.15)


class TestMips:
    def test_one_gips(self):
        assert units.mips(1e9) == pytest.approx(1000.0)

    def test_paper_example(self):
        # 471 MIPS from the paper's trace table.
        assert units.mips(471e6) == pytest.approx(471.0)


class TestFormatFrequency:
    def test_ghz_formatting(self):
        assert units.format_frequency(1.844e9) == "1.84 GHz"

    def test_mhz_formatting(self):
        assert units.format_frequency(682e6) == "682 MHz"

    def test_khz_formatting(self):
        assert units.format_frequency(32e3) == "32 kHz"

    def test_hz_formatting(self):
        assert units.format_frequency(50.0) == "50 Hz"


class TestFormatTemperature:
    def test_one_decimal(self):
        assert units.format_temperature(42.55) == "42.5 °C"


class TestFormatTime:
    def test_seconds(self):
        assert units.format_time(2.5) == "2.50 s"

    def test_milliseconds(self):
        assert units.format_time(0.0043) == "4.30 ms"

    def test_microseconds(self):
        assert units.format_time(25e-6) == "25.0 µs"
