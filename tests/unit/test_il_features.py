"""IL feature extraction (Table 2)."""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.il.features import FEATURE_COUNT, FeatureExtractor, feature_names
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING


@pytest.fixture(scope="module")
def platform():
    return hikey970()


@pytest.fixture
def extractor(platform):
    return FeatureExtractor(platform)


def _base_kwargs(platform):
    return dict(
        aoi_ips=1.0e9,
        aoi_l2d_rate=2.0e8,
        aoi_qos_target=0.8e9,
        aoi_core=3,
        f_wo_aoi_hz={LITTLE: 1.4e9, BIG: 0.682e9},
        f_current_hz={LITTLE: 1.844e9, BIG: 0.682e9},
        core_utilization={c: 1.0 for c in (0, 1, 2, 3)},
    )


class TestVectorLayout:
    def test_length_matches_table2(self, extractor, platform):
        vec = extractor.build(**_base_kwargs(platform))
        assert len(vec) == FEATURE_COUNT == 21

    def test_names_align_with_length(self, extractor, platform):
        assert len(feature_names(platform)) == extractor.n_features

    def test_scalar_features_normalized(self, extractor, platform):
        vec = extractor.build(**_base_kwargs(platform))
        assert vec[0] == pytest.approx(1.0)   # 1 GIPS
        assert vec[1] == pytest.approx(2.0)   # 2e8 L2D/s
        assert vec[2] == pytest.approx(0.8)   # QoS target

    def test_mapping_one_hot(self, extractor, platform):
        vec = extractor.build(**_base_kwargs(platform))
        onehot = vec[3:11]
        assert onehot[3] == 1.0
        assert onehot.sum() == 1.0

    def test_f_wo_aoi_ratios(self, extractor, platform):
        vec = extractor.build(**_base_kwargs(platform))
        # Clusters appear in platform order: LITTLE then big.
        assert vec[11] == pytest.approx(1.4e9 / 1.844e9)
        assert vec[12] == pytest.approx(1.0)

    def test_core_utilizations(self, extractor, platform):
        vec = extractor.build(**_base_kwargs(platform))
        assert np.allclose(vec[13:21], [1, 1, 1, 1, 0, 0, 0, 0])

    def test_invalid_core_rejected(self, extractor, platform):
        kwargs = _base_kwargs(platform)
        kwargs["aoi_core"] = 9
        with pytest.raises(ValueError):
            extractor.build(**kwargs)


class TestRuntimeExtraction:
    def _sim(self, platform):
        sim = Simulator(
            platform,
            FAN_COOLING,
            config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        return sim

    def test_from_simulator_layout(self, platform, extractor):
        sim = self._sim(platform)
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        pid = sim.submit(app, 5e8, 0.0)
        sim.placement_policy = lambda s, p: 4
        sim.run_for(0.5)
        vec = extractor.from_simulator(sim, sim.process(pid))
        assert vec[3 + 4] == 1.0  # mapped to core 4
        assert vec[13 + 4] == 1.0  # core 4 busy
        assert vec[0] > 0  # live IPS reading

    def test_f_wo_aoi_empty_cluster_needs_minimum(self, platform, extractor):
        sim = self._sim(platform)
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        pid = sim.submit(app, 5e8, 0.0)
        sim.placement_policy = lambda s, p: 4
        sim.run_for(0.3)
        needs = extractor.required_level_without(sim, sim.process(pid))
        for cluster in platform.clusters:
            assert needs[cluster.name] == pytest.approx(
                cluster.vf_table.min_level.frequency_hz
            )

    def test_f_wo_aoi_reflects_background_demand(self, platform, extractor):
        sim = self._sim(platform)
        hungry = dataclasses.replace(get_app("syr2k"), total_instructions=1e15)
        table = platform.cluster(LITTLE).vf_table
        target = 0.9 * get_app("syr2k").max_ips(LITTLE, table)
        aoi_pid = sim.submit(hungry, 1e6, 0.0)
        bg_pid = sim.submit(hungry, target, 0.0)
        order = iter([4, 0])  # AoI on big, background on LITTLE
        sim.placement_policy = lambda s, p: next(order)
        sim.set_vf_level(LITTLE, table.max_level)
        sim.run_for(0.5)
        needs = extractor.required_level_without(sim, sim.process(aoi_pid))
        assert needs[LITTLE] > table.min_level.frequency_hz

    def test_not_running_aoi_rejected(self, platform, extractor):
        sim = self._sim(platform)
        pid = sim.submit(get_app("adi"), 1e8, arrival_time_s=10.0)
        with pytest.raises(ValueError):
            extractor.from_simulator(sim, sim.process(pid))
