"""Ring tracer semantics: capacity, drop counting, ordering, no-op paths."""

from __future__ import annotations

import pytest

from repro.obs.config import Observability, tracing_enabled
from repro.obs.tracer import NULL_TRACER, NullTracer, RingTracer
from repro.sim.kernel import Simulator
from repro.thermal import FAN_COOLING


class TestRingTracer:
    def test_emit_below_capacity_keeps_everything(self):
        tracer = RingTracer(capacity=8)
        for i in range(5):
            tracer.emit(f"e{i}", ts_s=float(i))
        events = tracer.events()
        assert [e.name for e in events] == ["e0", "e1", "e2", "e3", "e4"]
        stats = tracer.stats()
        assert stats.recorded == 5
        assert stats.dropped == 0
        assert stats.stored == 5

    def test_wrap_drops_oldest_and_counts(self):
        tracer = RingTracer(capacity=4)
        for i in range(6):
            tracer.emit(f"e{i}", ts_s=float(i))
        events = tracer.events()
        # Oldest two (e0, e1) were overwritten; order stays oldest-first.
        assert [e.name for e in events] == ["e2", "e3", "e4", "e5"]
        stats = tracer.stats()
        assert stats.recorded == 6
        assert stats.dropped == 2
        assert stats.stored == 4

    def test_exact_capacity_boundary(self):
        tracer = RingTracer(capacity=3)
        for i in range(3):
            tracer.emit(f"e{i}", ts_s=float(i))
        assert tracer.stats().dropped == 0
        assert [e.name for e in tracer.events()] == ["e0", "e1", "e2"]
        tracer.emit("e3", ts_s=3.0)
        assert tracer.stats().dropped == 1
        assert [e.name for e in tracer.events()] == ["e1", "e2", "e3"]

    def test_event_fields_round_trip(self):
        tracer = RingTracer(capacity=4)
        tracer.emit(
            "span", ts_s=1.5, ph="X", cat="controller", dur_s=0.25,
            args={"k": 1},
        )
        (event,) = tracer.events()
        assert event.name == "span"
        assert event.ph == "X"
        assert event.cat == "controller"
        assert event.ts_s == pytest.approx(1.5)
        assert event.dur_s == pytest.approx(0.25)
        assert event.args == {"k": 1}

    def test_clear_resets_everything(self):
        tracer = RingTracer(capacity=2)
        for i in range(5):
            tracer.emit(f"e{i}", ts_s=float(i))
        tracer.clear()
        assert tracer.events() == []
        stats = tracer.stats()
        assert (stats.recorded, stats.dropped, stats.stored) == (0, 0, 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_stats_as_dict(self):
        tracer = RingTracer(capacity=4)
        tracer.emit("e", ts_s=0.0)
        assert tracer.stats().as_dict() == {
            "capacity": 4, "recorded": 1, "dropped": 0, "stored": 1,
        }


class TestNullTracer:
    def test_null_tracer_discards(self):
        tracer = NullTracer()
        tracer.emit("e", ts_s=0.0)
        assert tracer.events() == []
        assert tracer.stats().recorded == 0

    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("e", ts_s=0.0)
        assert NULL_TRACER.events() == []


class TestOffByDefault:
    def test_unconfigured_simulator_has_no_observer(self, platform, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        sim = Simulator(platform, FAN_COOLING)
        assert sim.obs is None
        assert sim.observability.enabled is False

    def test_env_flag_attaches_observer(self, platform, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        sim = Simulator(platform, FAN_COOLING)
        assert sim.obs is not None
        assert sim.obs.tracer.capacity == sim.observability.trace_capacity

    def test_explicit_config_beats_env(self, platform, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        sim = Simulator(
            platform, FAN_COOLING, observability=Observability.disabled()
        )
        assert sim.obs is None

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsey_env_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert tracing_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_env_values(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert tracing_enabled() is True
