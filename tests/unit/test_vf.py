"""VF levels and tables."""

import pytest

from repro.platform.vf import VFLevel, VFTable
from repro.utils.units import GHZ, MHZ


@pytest.fixture
def table():
    return VFTable(
        [
            VFLevel(0.5 * GHZ, 0.70),
            VFLevel(1.0 * GHZ, 0.80),
            VFLevel(1.4 * GHZ, 0.90),
            VFLevel(1.8 * GHZ, 1.00),
        ]
    )


class TestVFLevel:
    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            VFLevel(0.0, 0.8)

    def test_rejects_non_positive_voltage(self):
        with pytest.raises(ValueError):
            VFLevel(1e9, 0.0)

    def test_ordering_by_frequency(self):
        assert VFLevel(1e9, 0.8) < VFLevel(2e9, 0.9)


class TestVFTableConstruction:
    def test_requires_levels(self):
        with pytest.raises(ValueError):
            VFTable([])

    def test_sorts_by_frequency(self, table):
        assert table.frequencies == sorted(table.frequencies)

    def test_rejects_duplicate_frequency(self):
        with pytest.raises(ValueError, match="duplicate"):
            VFTable([VFLevel(1e9, 0.8), VFLevel(1e9, 0.9)])

    def test_rejects_non_monotone_voltage(self):
        with pytest.raises(ValueError, match="voltage"):
            VFTable([VFLevel(1e9, 0.9), VFLevel(2e9, 0.8)])

    def test_len_and_iteration(self, table):
        assert len(table) == 4
        assert [lv.frequency_hz for lv in table] == table.frequencies

    def test_min_max(self, table):
        assert table.min_level.frequency_hz == 0.5 * GHZ
        assert table.max_level.frequency_hz == 1.8 * GHZ


class TestLookups:
    def test_index_of(self, table):
        assert table.index_of(1.0 * GHZ) == 1

    def test_index_of_unknown_raises(self, table):
        with pytest.raises(KeyError):
            table.index_of(999 * MHZ)

    def test_level_at_or_above_exact(self, table):
        assert table.level_at_or_above(1.0 * GHZ).frequency_hz == 1.0 * GHZ

    def test_level_at_or_above_rounds_up(self, table):
        assert table.level_at_or_above(1.1 * GHZ).frequency_hz == 1.4 * GHZ

    def test_level_at_or_above_unreachable_raises(self, table):
        with pytest.raises(ValueError, match="no VF level"):
            table.level_at_or_above(2.5 * GHZ)

    def test_has_level_at_or_above(self, table):
        assert table.has_level_at_or_above(1.8 * GHZ)
        assert not table.has_level_at_or_above(1.81 * GHZ)

    def test_clamp_saturates_at_max(self, table):
        assert table.clamp(5 * GHZ).frequency_hz == 1.8 * GHZ

    def test_clamp_below_min_picks_min(self, table):
        assert table.clamp(0.1 * GHZ).frequency_hz == 0.5 * GHZ


class TestStepping:
    def test_step_towards_up(self, table):
        nxt = table.step_towards(table[0], table[3])
        assert nxt.frequency_hz == table[1].frequency_hz

    def test_step_towards_down(self, table):
        nxt = table.step_towards(table[3], table[0])
        assert nxt.frequency_hz == table[2].frequency_hz

    def test_step_towards_same_is_identity(self, table):
        assert table.step_towards(table[2], table[2]) == table[2]

    def test_step_down_at_bottom_holds(self, table):
        assert table.step_down(table[0]) == table[0]

    def test_step_up_at_top_holds(self, table):
        assert table.step_up(table[3]) == table[3]

    def test_repeated_steps_reach_target(self, table):
        current = table[0]
        for _ in range(len(table)):
            current = table.step_towards(current, table[3])
        assert current == table[3]
