"""NN layers: shapes, backward correctness, state handling."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential, build_mlp
from repro.nn.losses import MSELoss
from repro.utils.rng import RandomSource


@pytest.fixture
def rng():
    return RandomSource(0)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_1d_promoted(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.forward(np.ones(4)).shape == (1, 3)

    def test_wrong_input_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 3, rng).forward(np.ones((2, 5)))

    def test_backward_before_forward_rejected(self, rng):
        with pytest.raises(RuntimeError):
            Linear(4, 3, rng).backward(np.ones((1, 3)))

    def test_gradients_accumulate(self, rng):
        layer = Linear(2, 2, rng)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        assert np.allclose(layer.grad_weight, 2 * first)

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)
        assert np.all(layer.grad_bias == 0)

    def test_numeric_gradient_check(self, rng):
        """Backward matches finite differences for loss = sum(output)."""
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        analytic = layer.grad_weight.copy()
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                layer.weight[i, j] += eps
                up = layer.forward(x).sum()
                layer.weight[i, j] -= 2 * eps
                down = layer.forward(x).sum()
                layer.weight[i, j] += eps
                numeric = (up - down) / (2 * eps)
                assert analytic[i, j] == pytest.approx(numeric, rel=1e-4)


class TestReLU:
    def test_clips_negative(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(out, [0.0, 0.0, 2.0])

    def test_backward_masks_gradient(self):
        relu = ReLU()
        relu.forward(np.array([-1.0, 3.0]))
        grad = relu.backward(np.array([1.0, 1.0]))
        assert np.allclose(grad, [0.0, 1.0])

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones(2))


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_chains(self, rng):
        model = build_mlp(4, 2, hidden_layers=2, hidden_width=8, rng=rng)
        assert model.forward(np.ones((3, 4))).shape == (3, 2)

    def test_callable(self, rng):
        model = build_mlp(4, 2, 1, 8, rng)
        assert np.allclose(model(np.ones((1, 4))), model.forward(np.ones((1, 4))))

    def test_n_parameters(self, rng):
        model = build_mlp(21, 8, hidden_layers=4, hidden_width=64, rng=rng)
        # 21*64+64 + 3*(64*64+64) + 64*8+8
        expected = 21 * 64 + 64 + 3 * (64 * 64 + 64) + 64 * 8 + 8
        assert model.n_parameters() == expected

    def test_state_roundtrip(self, rng):
        model = build_mlp(4, 2, 2, 8, rng)
        x = np.ones((1, 4))
        state = model.get_state()
        before = model.forward(x).copy()
        # Perturb weights, then restore.
        for _, value, _ in model.params():
            value += 1.0
        assert not np.allclose(model.forward(x), before)
        model.set_state(state)
        assert np.allclose(model.forward(x), before)

    def test_set_state_shape_mismatch_rejected(self, rng):
        a = build_mlp(4, 2, 2, 8, rng)
        b = build_mlp(4, 2, 2, 16, rng)
        with pytest.raises(ValueError):
            a.set_state(b.get_state())

    def test_full_model_gradient_check(self, rng):
        """End-to-end backward matches finite differences through MSE."""
        model = build_mlp(3, 2, hidden_layers=1, hidden_width=5, rng=rng)
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 2))
        loss_fn = MSELoss()

        def loss_value():
            return loss_fn(model.forward(x), y)[0]

        model.zero_grad()
        _, grad = loss_fn(model.forward(x), y)
        model.backward(grad)
        name, value, analytic = model.params()[0]
        eps = 1e-6
        value[0, 0] += eps
        up = loss_value()
        value[0, 0] -= 2 * eps
        down = loss_value()
        value[0, 0] += eps
        assert analytic[0, 0] == pytest.approx((up - down) / (2 * eps), rel=1e-4)


class TestBuildMLP:
    def test_zero_hidden_layers_is_linear(self, rng):
        model = build_mlp(4, 2, 0, 64, rng)
        assert len(model.layers) == 1

    def test_paper_topology(self, rng):
        """The paper's best topology: 4 hidden layers x 64 neurons."""
        model = build_mlp(21, 8, 4, 64, rng)
        linears = [l for l in model.layers if isinstance(l, Linear)]
        assert len(linears) == 5
        assert all(l.out_features == 64 for l in linears[:-1])
        assert linears[-1].out_features == 8

    def test_negative_depth_rejected(self, rng):
        with pytest.raises(ValueError):
            build_mlp(4, 2, -1, 8, rng)

    def test_seeded_init_reproducible(self):
        a = build_mlp(4, 2, 1, 8, RandomSource(1))
        b = build_mlp(4, 2, 1, 8, RandomSource(1))
        x = np.ones((1, 4))
        assert np.allclose(a.forward(x), b.forward(x))
