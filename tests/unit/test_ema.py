"""Exponential moving average."""

import pytest

from repro.utils.ema import ExponentialMovingAverage


class TestEMA:
    def test_starts_empty(self):
        assert ExponentialMovingAverage().value is None

    def test_first_sample_adopted(self):
        ema = ExponentialMovingAverage(alpha=0.3)
        assert ema.update(10.0) == pytest.approx(10.0)

    def test_alpha_one_tracks_signal(self):
        ema = ExponentialMovingAverage(alpha=1.0)
        ema.update(1.0)
        assert ema.update(5.0) == pytest.approx(5.0)

    def test_smoothing_between_samples(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        ema.update(0.0)
        assert ema.update(10.0) == pytest.approx(5.0)
        assert ema.update(10.0) == pytest.approx(7.5)

    def test_converges_to_constant_signal(self):
        ema = ExponentialMovingAverage(alpha=0.2)
        for _ in range(100):
            ema.update(3.0)
        assert ema.value == pytest.approx(3.0)

    def test_reset_forgets(self):
        ema = ExponentialMovingAverage()
        ema.update(4.0)
        ema.reset()
        assert ema.value is None

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=1.5)
