"""Thermal network builder and cooling configurations."""

import pytest

from repro.platform import Platform, hikey970
from repro.thermal import (
    FAN_COOLING,
    PASSIVE_COOLING,
    build_thermal_network,
)
from repro.thermal.builder import ThermalMaterials
from repro.thermal.cooling import CoolingConfig


@pytest.fixture
def platform():
    return hikey970()


class TestCoolingConfig:
    def test_fan_conducts_better_than_passive(self):
        assert (
            FAN_COOLING.board_to_ambient_w_per_k
            > 2 * PASSIVE_COOLING.board_to_ambient_w_per_k
        )

    def test_invalid_conductance_rejected(self):
        with pytest.raises(ValueError):
            CoolingConfig(name="x", board_to_ambient_w_per_k=0.0)


class TestBuilder:
    def test_nodes_match_floorplan_plus_board(self, platform):
        net = build_thermal_network(platform, FAN_COOLING)
        assert set(net.node_names) == set(platform.floorplan) | {"board"}

    def test_requires_floorplan(self):
        bare = hikey970()
        bare.floorplan = {}
        with pytest.raises(ValueError, match="floorplan"):
            build_thermal_network(bare, FAN_COOLING)

    def test_steady_state_hotter_without_fan(self, platform):
        power = {f"core{c}": 1.0 for c in range(4, 8)}
        fan = build_thermal_network(platform, FAN_COOLING).steady_state(power)
        passive = build_thermal_network(platform, PASSIVE_COOLING).steady_state(power)
        assert passive["core4"] > fan["core4"] + 5.0

    def test_heated_core_is_local_hotspot(self, platform):
        net = build_thermal_network(platform, FAN_COOLING)
        ss = net.steady_state({"core6": 1.5})
        assert ss["core6"] == max(ss[f"core{c}"] for c in range(8))

    def test_heat_spreads_to_neighbours(self, platform):
        """Spatial coupling: heating core6 raises core7 well above ambient."""
        net = build_thermal_network(platform, FAN_COOLING)
        ss = net.steady_state({"core6": 1.5})
        assert ss["core7"] > platform.ambient_temp_c + 2.0

    def test_custom_materials_affect_resistance(self, platform):
        low_r = ThermalMaterials(vertical_w_per_k_m2=50000.0)
        net_default = build_thermal_network(platform, FAN_COOLING)
        net_low_r = build_thermal_network(platform, FAN_COOLING, low_r)
        power = {"core4": 1.0}
        assert (
            net_low_r.steady_state(power)["core4"]
            < net_default.steady_state(power)["core4"]
        )

    def test_calibration_full_load_range_with_fan(self, platform):
        """~10.5 W total should land near the paper's loaded-board range."""
        net = build_thermal_network(platform, FAN_COOLING)
        power = {f"core{c}": 0.45 for c in range(4)}
        power.update({f"core{c}": 1.7 for c in range(4, 8)})
        power.update({"uncore_LITTLE": 0.2, "uncore_big": 0.3, "soc_rest": 0.55})
        ss = net.steady_state(power)
        hottest = max(ss[f"core{c}"] for c in range(8))
        assert 70.0 < hottest < 105.0

    def test_idle_board_near_ambient(self, platform):
        net = build_thermal_network(platform, FAN_COOLING)
        ss = net.steady_state({"soc_rest": 0.55})
        assert ss["board"] < platform.ambient_temp_c + 3.0
