"""Process lifecycle and accounting."""

import pytest

from repro.apps import get_app
from repro.sim.process import Process, ProcessState


@pytest.fixture
def process():
    return Process(
        pid=1, app=get_app("adi"), qos_target_ips=5e8, arrival_time_s=2.0
    )


class TestLifecycle:
    def test_starts_pending(self, process):
        assert process.state is ProcessState.PENDING
        assert process.core_id is None

    def test_start_places_on_core(self, process):
        process.start(3, 2.0)
        assert process.state is ProcessState.RUNNING
        assert process.core_id == 3
        assert process.last_migration_time_s is None  # placement != migration

    def test_double_start_rejected(self, process):
        process.start(3, 2.0)
        with pytest.raises(RuntimeError):
            process.start(4, 2.5)

    def test_migrate_updates_core_and_counters(self, process):
        process.start(3, 2.0)
        process.migrate(6, 5.0)
        assert process.core_id == 6
        assert process.migration_count == 1
        assert process.last_migration_time_s == 5.0

    def test_migrate_to_same_core_is_noop(self, process):
        process.start(3, 2.0)
        process.migrate(3, 5.0)
        assert process.migration_count == 0

    def test_migrate_before_start_rejected(self, process):
        with pytest.raises(RuntimeError):
            process.migrate(1, 0.0)

    def test_finish(self, process):
        process.start(3, 2.0)
        process.finish(100.0)
        assert process.state is ProcessState.FINISHED
        assert process.finish_time_s == 100.0
        assert process.core_id is None


class TestExecutionAccounting:
    def test_instructions_accumulate(self, process):
        process.start(0, 2.0)
        process.account_execution(0.01, 1e7, 1e5, "LITTLE", 1e9)
        process.account_execution(0.01, 2e7, 2e5, "LITTLE", 1e9)
        assert process.instructions_done == pytest.approx(3e7)
        assert process.total_cpu_time_s == pytest.approx(0.02)

    def test_cpu_time_keyed_by_vf(self, process):
        process.start(0, 2.0)
        process.account_execution(0.01, 1e7, 0, "LITTLE", 1e9)
        process.account_execution(0.02, 1e7, 0, "LITTLE", 2e9)
        process.account_execution(0.03, 1e7, 0, "big", 2e9)
        assert process.cpu_time_by_vf[("LITTLE", 1e9)] == pytest.approx(0.01)
        assert process.cpu_time_by_vf[("LITTLE", 2e9)] == pytest.approx(0.02)
        assert process.cpu_time_by_vf[("big", 2e9)] == pytest.approx(0.03)

    def test_remaining_instructions(self, process):
        total = process.app.total_instructions
        process.account_execution(0.0, total / 2, 0, "LITTLE", 1e9)
        assert process.remaining_instructions == pytest.approx(total / 2)

    def test_window_read_resets(self, process):
        process.account_execution(0.05, 5e7, 5e5, "LITTLE", 1e9)
        ips, l2d, share = process.read_window(0.1)
        assert ips == pytest.approx(5e8)
        assert l2d == pytest.approx(5e6)
        assert share == pytest.approx(0.5)
        ips2, _, _ = process.read_window(0.1)
        assert ips2 == 0.0


class TestQoSMetrics:
    def test_mean_ips_uses_wall_clock_since_arrival(self, process):
        process.start(0, 2.0)
        process.account_execution(1.0, 1e9, 0, "LITTLE", 1e9)
        assert process.mean_ips(now_s=4.0) == pytest.approx(5e8)

    def test_violated_qos_threshold(self, process):
        process.start(0, 2.0)
        # Exactly on target: 5e8 IPS over 2 s elapsed.
        process.account_execution(2.0, 1e9, 0, "LITTLE", 1e9)
        assert not process.violated_qos(now_s=4.0)
        # Now dilute with idle time: mean drops below the target.
        assert process.violated_qos(now_s=8.0)

    def test_qos_met_fraction(self, process):
        process.account_qos_observation(1.0, True)
        process.account_qos_observation(1.0, False)
        process.account_qos_observation(2.0, True)
        assert process.qos_met_fraction() == pytest.approx(0.75)

    def test_qos_met_fraction_defaults_to_one(self, process):
        assert process.qos_met_fraction() == 1.0


class TestValidation:
    def test_invalid_qos_target_rejected(self):
        with pytest.raises(ValueError):
            Process(0, get_app("adi"), qos_target_ips=0.0, arrival_time_s=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Process(0, get_app("adi"), qos_target_ips=1e8, arrival_time_s=-1.0)
