"""Platform description, floorplan geometry, and the HiKey 970 facts."""

import pytest

from repro.platform import (
    Cluster,
    DTMConfig,
    FloorplanTile,
    Platform,
    VFLevel,
    VFTable,
    hikey970,
)
from repro.platform.description import grid_floorplan
from repro.platform.hikey import BIG, LITTLE, reduced_vf_grid
from repro.utils.units import GHZ


def _cluster(name, core_ids, out_of_order=False):
    return Cluster(
        name=name,
        core_ids=core_ids,
        vf_table=VFTable([VFLevel(1e9, 0.8), VFLevel(2e9, 1.0)]),
        dyn_power_coeff=1e-10,
        static_power_coeff=0.01,
        out_of_order=out_of_order,
    )


class TestPlatformValidation:
    def test_duplicate_core_id_rejected(self):
        with pytest.raises(ValueError, match="two clusters"):
            Platform("p", [_cluster("a", (0, 1)), _cluster("b", (1, 2))])

    def test_non_contiguous_ids_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            Platform("p", [_cluster("a", (0, 2))])

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Platform("p", [_cluster("a", (0,)), _cluster("a", (1,))])

    def test_cluster_lookup(self):
        p = Platform("p", [_cluster("a", (0, 1)), _cluster("b", (2, 3))])
        assert p.cluster("b").core_ids == (2, 3)
        with pytest.raises(KeyError):
            p.cluster("zzz")

    def test_cluster_of_core(self):
        p = Platform("p", [_cluster("a", (0, 1)), _cluster("b", (2, 3))])
        assert p.cluster_of_core(3).name == "b"


class TestFloorplanTile:
    def test_area_and_center(self):
        tile = FloorplanTile("t", 1.0, 2.0, 2.0, 4.0)
        assert tile.area == pytest.approx(8.0)
        assert tile.center == (2.0, 4.0)

    def test_side_by_side_adjacency(self):
        a = FloorplanTile("a", 0, 0, 1, 1)
        b = FloorplanTile("b", 1, 0, 1, 1)
        assert a.shares_edge_with(b) == pytest.approx(1.0)

    def test_stacked_adjacency(self):
        a = FloorplanTile("a", 0, 0, 2, 1)
        b = FloorplanTile("b", 0.5, 1, 1, 1)
        assert a.shares_edge_with(b) == pytest.approx(1.0)

    def test_disjoint_tiles_share_nothing(self):
        a = FloorplanTile("a", 0, 0, 1, 1)
        b = FloorplanTile("b", 5, 5, 1, 1)
        assert a.shares_edge_with(b) == 0.0

    def test_gap_breaks_adjacency(self):
        a = FloorplanTile("a", 0, 0, 1, 1)
        b = FloorplanTile("b", 1.1, 0, 1, 1)
        assert a.shares_edge_with(b) == 0.0


class TestGridFloorplan:
    def test_row_major_layout(self):
        tiles = grid_floorplan([("a", 1, 1), ("b", 1, 1), ("c", 1, 1)], columns=2)
        assert tiles["b"].x == pytest.approx(1.0)
        assert tiles["c"].y == pytest.approx(1.0)

    def test_no_overlap(self):
        tiles = grid_floorplan([(f"t{i}", 1, 1) for i in range(4)], columns=2)
        coords = {(t.x, t.y) for t in tiles.values()}
        assert len(coords) == 4


class TestDTMConfig:
    def test_release_above_trigger_rejected(self):
        with pytest.raises(ValueError):
            DTMConfig(trigger_temp_c=80.0, release_temp_c=85.0)

    def test_defaults_sane(self):
        cfg = DTMConfig()
        assert cfg.release_temp_c <= cfg.trigger_temp_c


class TestHiKey970:
    def test_eight_cores_two_clusters(self):
        p = hikey970()
        assert p.n_cores == 8
        assert set(p.cluster_names) == {LITTLE, BIG}

    def test_core_numbering_matches_board(self):
        p = hikey970()
        assert p.cores_in_cluster(LITTLE) == [0, 1, 2, 3]
        assert p.cores_in_cluster(BIG) == [4, 5, 6, 7]

    def test_peak_frequencies_match_board(self):
        p = hikey970()
        assert p.cluster(LITTLE).vf_table.max_level.frequency_hz == pytest.approx(
            1.844 * GHZ
        )
        assert p.cluster(BIG).vf_table.max_level.frequency_hz == pytest.approx(
            2.362 * GHZ
        )

    def test_big_cluster_is_out_of_order(self):
        p = hikey970()
        assert p.cluster(BIG).out_of_order
        assert not p.cluster(LITTLE).out_of_order

    def test_floorplan_covers_cores_and_zones(self):
        p = hikey970()
        for c in range(8):
            assert f"core{c}" in p.floorplan
        assert "uncore_LITTLE" in p.floorplan
        assert "uncore_big" in p.floorplan
        assert "soc_rest" in p.floorplan

    def test_big_cores_larger_than_little(self):
        p = hikey970()
        assert p.floorplan["core4"].area > 2 * p.floorplan["core0"].area

    def test_default_vf_is_minimum(self):
        p = hikey970()
        for name, level in p.default_vf_levels().items():
            assert level == p.cluster(name).vf_table.min_level


class TestReducedVFGrid:
    def test_includes_min_and_max(self):
        p = hikey970()
        grid = reduced_vf_grid(p, per_cluster=4)
        for cluster in p.clusters:
            freqs = [lv.frequency_hz for lv in grid[cluster.name]]
            assert cluster.vf_table.min_level.frequency_hz in freqs
            assert cluster.vf_table.max_level.frequency_hz in freqs

    def test_respects_count(self):
        p = hikey970()
        grid = reduced_vf_grid(p, per_cluster=3)
        assert all(len(levels) == 3 for levels in grid.values())

    def test_requesting_more_than_available_returns_all(self):
        p = hikey970()
        grid = reduced_vf_grid(p, per_cluster=99)
        assert len(grid[LITTLE]) == len(p.cluster(LITTLE).vf_table)

    def test_rejects_fewer_than_two(self):
        with pytest.raises(ValueError):
            reduced_vf_grid(hikey970(), per_cluster=1)
