"""Report rendering helpers (the full report run is exercised via the CLI)."""

from repro.experiments.report import ReportScale, _section


class TestSection:
    def test_contains_title_claim_and_body(self):
        text = _section("Fig. X — Something", "the paper says Y", "row1\nrow2", 1.5)
        assert "## Fig. X — Something" in text
        assert "**Paper:** the paper says Y" in text
        assert "row1" in text and "row2" in text

    def test_body_fenced_as_code(self):
        text = _section("T", "c", "body", 0.0)
        assert text.count("```") == 2


class TestScaleOrdering:
    def test_paper_model_eval_larger_than_smoke(self):
        assert (
            ReportScale.paper().model_eval.n_scenarios
            > ReportScale.smoke().model_eval.n_scenarios
        )

    def test_paper_nas_grid_is_full(self):
        scale = ReportScale.paper()
        assert len(scale.nas.depths) * len(scale.nas.widths) == 30

    def test_medium_uses_both_coolings(self):
        names = {c.name for c in ReportScale.medium().main_mixed.coolings}
        assert names == {"fan", "no_fan"}
