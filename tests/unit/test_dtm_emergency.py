"""DTM under forced thermal emergencies (fault-injected sensor).

Satellite coverage for ``Simulator._check_dtm``: a sensor *spike* must
drive the normal throttle/release hysteresis (reading crosses the trigger,
caps tighten, then recover step-by-step once the reading falls below the
release threshold), and a *stuck* sensor must engage the fail-safe
throttle — every cluster capped to its lowest VF level while the sensor
self-reports ill health — followed by hysteresis-driven recovery.
"""

import pytest

from repro.faults import FaultPlan, FaultRuntime, FaultSpec
from repro.platform import hikey970
from repro.sim.kernel import SimConfig, Simulator
from repro.thermal import FAN_COOLING


def _sim(plan: FaultPlan, **platform_kwargs) -> Simulator:
    platform = hikey970(**platform_kwargs)
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01),
        sensor_noise_std_c=0.0,
        faults=FaultRuntime.from_plan(plan),
    )


def _max_everywhere(sim: Simulator) -> bool:
    return all(
        sim.vf_level(c.name).frequency_hz == c.vf_table.max_level.frequency_hz
        for c in sim.platform.clusters
    )


class TestSpikeEmergency:
    def test_spike_throttles_then_hysteresis_recovers(self):
        # Idle board at ~25 C ambient; trigger far above the real
        # temperature so only the injected spike can cross it.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "sensor_spike", 1.0, start_s=1.0, end_s=1.5,
                    magnitude_c=60.0,
                ),
            ),
            seed=0,
        )
        sim = _sim(plan, dtm_trigger_c=60.0, dtm_release_c=55.0)
        for cluster in sim.platform.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
        sim.run_for(1.0)
        assert sim.dtm_throttle_events == 0
        assert _max_everywhere(sim)
        # Spike window: every fresh sample reads ~85 C >= trigger.
        sim.run_for(0.6)
        assert sim.dtm_throttle_events > 0
        assert not _max_everywhere(sim)
        assert sim.dtm_failsafe_events == 0  # spike is NOT the stuck path
        # Past the window the reading returns to ~25 C <= release, and the
        # caps recover one step per DTM check period.
        sim.run_for(2.0)
        for cluster in sim.platform.clusters:
            applied = sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
            assert applied.frequency_hz == cluster.vf_table.max_level.frequency_hz

    def test_recovery_is_gradual_not_instant(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "sensor_spike", 1.0, start_s=0.5, end_s=1.2,
                    magnitude_c=60.0,
                ),
            ),
            seed=0,
        )
        sim = _sim(plan, dtm_trigger_c=60.0, dtm_release_c=55.0)
        for cluster in sim.platform.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
        sim.run_for(1.3)  # several throttle checks inside the window
        assert sim.dtm_throttle_events >= 2
        # One check period after the spike ends: at most one release step,
        # so the caps must not be fully restored yet.
        sim.run_for(0.1)
        assert not _max_everywhere(sim)


class TestStuckFailSafe:
    def test_stuck_sensor_engages_failsafe_then_recovers(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "sensor_stuck", 1.0, start_s=0.5, end_s=0.54,
                    duration_s=1.0,
                ),
            ),
            seed=0,
        )
        sim = _sim(plan)
        for cluster in sim.platform.clusters:
            sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
        sim.run_for(0.4)
        assert sim.dtm_failsafe_events == 0
        sim.run_for(0.4)
        # Fail-safe: engaged exactly once per stuck window, every cluster
        # capped to its lowest level.
        assert sim.dtm_failsafe_events == 1
        assert sim.faults.event_counts.get("dtm.failsafe") == 1
        for cluster in sim.platform.clusters:
            lowest = cluster.vf_table.levels[0]
            assert (
                sim.vf_level(cluster.name).frequency_hz == lowest.frequency_hz
            )
            # Requests are capped while the fail-safe holds.
            applied = sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
            assert applied.frequency_hz == lowest.frequency_hz
        # Sensor heals at ~1.5 s; the caps then recover step-by-step via
        # the release hysteresis (idle board is far below release temp).
        sim.run_for(2.5)
        assert sim.faults.event_counts.get("dtm.failsafe_release") == 1
        for cluster in sim.platform.clusters:
            applied = sim.set_vf_level(cluster.name, cluster.vf_table.max_level)
            assert applied.frequency_hz == cluster.vf_table.max_level.frequency_hz

    def test_quantized_steady_state_never_false_triggers(self):
        """A zero-fault runtime at steady state must not trip the fail-safe.

        The DTM keys on the sensor's *self-reported* stuck flag, not on
        "same reading twice" — a quantized idle board reports the same
        0.1 C bucket for long stretches while being perfectly healthy.
        """
        sim = _sim(FaultPlan())
        sim.run_for(3.0)
        assert sim.dtm_failsafe_events == 0
        assert sim.faults.event_counts == {}
