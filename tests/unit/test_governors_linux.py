"""Linux governors: ondemand, powersave, performance."""

import dataclasses

import pytest

from repro.apps import get_app
from repro.governors.linux import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING


@pytest.fixture(scope="module")
def platform():
    return hikey970()


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


class TestPowersave:
    def test_pins_minimum(self, platform):
        sim = _sim(platform)
        sim.set_vf_level(BIG, platform.cluster(BIG).vf_table.max_level)
        PowersaveGovernor().attach(sim)
        sim.run_for(0.2)
        for cluster in platform.clusters:
            assert sim.vf_level(cluster.name) == cluster.vf_table.min_level

    def test_effect_is_immediate(self, platform):
        sim = _sim(platform)
        sim.set_vf_level(BIG, platform.cluster(BIG).vf_table.max_level)
        PowersaveGovernor().attach(sim)
        assert sim.vf_level(BIG) == platform.cluster(BIG).vf_table.min_level


class TestPerformance:
    def test_pins_maximum(self, platform):
        sim = _sim(platform)
        PerformanceGovernor().attach(sim)
        sim.run_for(0.2)
        for cluster in platform.clusters:
            assert sim.vf_level(cluster.name) == cluster.vf_table.max_level


class TestOndemand:
    def test_busy_cluster_jumps_to_max(self, platform):
        sim = _sim(platform)
        sim.submit(_long("swaptions"), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 4
        OndemandGovernor().attach(sim)
        sim.run_for(0.3)
        assert sim.vf_level(BIG) == platform.cluster(BIG).vf_table.max_level

    def test_idle_cluster_steps_down(self, platform):
        sim = _sim(platform)
        sim.set_vf_level(LITTLE, platform.cluster(LITTLE).vf_table.max_level)
        OndemandGovernor().attach(sim)
        sim.run_for(1.5)
        assert sim.vf_level(LITTLE) == platform.cluster(LITTLE).vf_table.min_level

    def test_step_down_is_gradual(self, platform):
        sim = _sim(platform)
        table = platform.cluster(LITTLE).vf_table
        sim.set_vf_level(LITTLE, table.max_level)
        gov = OndemandGovernor(sampling_period_s=0.1)
        gov.attach(sim)
        sim.run_for(0.15)  # one governor invocation
        assert sim.vf_level(LITTLE).frequency_hz == table[-2].frequency_hz

    def test_clusters_independent(self, platform):
        sim = _sim(platform)
        sim.submit(_long("swaptions"), 1e6, 0.0)
        sim.placement_policy = lambda s, p: 4  # busy big, idle LITTLE
        OndemandGovernor().attach(sim)
        sim.run_for(1.5)
        assert sim.vf_level(BIG) == platform.cluster(BIG).vf_table.max_level
        assert sim.vf_level(LITTLE) == platform.cluster(LITTLE).vf_table.min_level

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            OndemandGovernor(up_threshold=0.5, down_threshold=0.8)
