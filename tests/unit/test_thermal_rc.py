"""RC thermal network: construction, steady state, dynamics."""

import numpy as np
import pytest

from repro.thermal.rc import RCThermalNetwork


def _two_node_network(ambient=25.0):
    net = RCThermalNetwork(ambient_temp_c=ambient)
    net.add_node("chip", 0.01)
    net.add_node("board", 10.0)
    net.connect("chip", "board", 0.5)
    net.connect_to_ambient("board", 1.0)
    net.finalize()
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = RCThermalNetwork()
        net.add_node("a", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            net.add_node("a", 1.0)

    def test_self_connection_rejected(self):
        net = RCThermalNetwork()
        net.add_node("a", 1.0)
        with pytest.raises(ValueError):
            net.connect("a", "a", 1.0)

    def test_finalize_requires_ambient_path(self):
        net = RCThermalNetwork()
        net.add_node("a", 1.0)
        with pytest.raises(ValueError, match="ambient"):
            net.finalize()

    def test_no_modification_after_finalize(self):
        net = _two_node_network()
        with pytest.raises(RuntimeError):
            net.add_node("x", 1.0)
        with pytest.raises(RuntimeError):
            net.connect_to_ambient("chip", 1.0)

    def test_use_before_finalize_rejected(self):
        net = RCThermalNetwork()
        net.add_node("a", 1.0)
        net.connect_to_ambient("a", 1.0)
        with pytest.raises(RuntimeError):
            net.temperatures()

    def test_double_finalize_rejected(self):
        net = _two_node_network()
        with pytest.raises(RuntimeError):
            net.finalize()


class TestSteadyState:
    def test_no_power_means_ambient(self):
        net = _two_node_network(ambient=30.0)
        ss = net.steady_state({})
        assert all(t == pytest.approx(30.0) for t in ss.values())

    def test_two_node_analytic_solution(self):
        """chip = ambient + P (1/G_amb + 1/G_link), board = ambient + P/G_amb."""
        net = _two_node_network(ambient=25.0)
        ss = net.steady_state({"chip": 2.0})
        assert ss["board"] == pytest.approx(25.0 + 2.0 / 1.0)
        assert ss["chip"] == pytest.approx(25.0 + 2.0 * (1.0 + 1.0 / 0.5))

    def test_power_at_unknown_node_rejected(self):
        net = _two_node_network()
        with pytest.raises(KeyError):
            net.steady_state({"nope": 1.0})

    def test_negative_power_rejected(self):
        net = _two_node_network()
        with pytest.raises(ValueError):
            net.steady_state({"chip": -1.0})


class TestDynamics:
    def test_step_converges_to_steady_state(self):
        net = _two_node_network()
        target = net.steady_state({"chip": 1.5})
        for _ in range(5000):
            net.step({"chip": 1.5}, 0.1)
        temps = net.temperatures()
        for name in temps:
            assert temps[name] == pytest.approx(target[name], abs=1e-3)

    def test_cooling_decays_to_ambient(self):
        net = _two_node_network()
        net.set_temperatures({"chip": 80.0, "board": 60.0})
        for _ in range(5000):
            net.step({}, 0.5)
        assert net.temperature_of("chip") == pytest.approx(25.0, abs=1e-2)

    def test_heating_monotone_from_cold_start(self):
        net = _two_node_network()
        prev = net.temperature_of("chip")
        for _ in range(50):
            net.step({"chip": 1.0}, 0.05)
            cur = net.temperature_of("chip")
            assert cur >= prev - 1e-12
            prev = cur

    def test_exact_integration_independent_of_step_size(self):
        """The expm integrator is exact for constant power: two half steps
        must equal one full step."""
        net1 = _two_node_network()
        net2 = _two_node_network()
        net1.step({"chip": 1.0}, 1.0)
        net2.step({"chip": 1.0}, 0.5)
        net2.step({"chip": 1.0}, 0.5)
        assert net1.temperature_of("chip") == pytest.approx(
            net2.temperature_of("chip"), abs=1e-9
        )

    def test_step_requires_positive_dt(self):
        net = _two_node_network()
        with pytest.raises(ValueError):
            net.step({}, 0.0)

    def test_time_constants_positive_and_ordered(self):
        net = _two_node_network()
        taus = net.time_constants()
        assert (taus > 0).all()
        assert taus[0] >= taus[-1]

    def test_board_time_constant_dominates(self):
        """Board capacitance sets the minutes-scale dominant time constant."""
        net = _two_node_network()
        taus = net.time_constants()
        assert taus[0] > 50 * taus[-1]


class TestStateAccess:
    def test_set_and_reset(self):
        net = _two_node_network()
        net.set_temperatures({"chip": 55.0})
        assert net.temperature_of("chip") == pytest.approx(55.0)
        net.reset()
        assert net.temperature_of("chip") == pytest.approx(25.0)

    def test_reset_to_temperature(self):
        net = _two_node_network()
        net.reset(40.0)
        assert net.temperature_of("board") == pytest.approx(40.0)

    def test_max_temperature_subset(self):
        net = _two_node_network()
        net.set_temperatures({"chip": 50.0, "board": 70.0})
        assert net.max_temperature(["chip"]) == pytest.approx(50.0)
        assert net.max_temperature() == pytest.approx(70.0)

    def test_conductance_matrix_symmetric(self):
        net = _two_node_network()
        g = net.conductance_matrix
        assert np.allclose(g, g.T)


class TestArrayNativeSurface:
    def test_step_vector_matches_dict_step(self):
        a = _two_node_network()
        b = _two_node_network()
        p = np.zeros(b.n_nodes)
        p[b.node_index("chip")] = 2.0
        for _ in range(50):
            a.step({"chip": 2.0}, 0.01)
            b.step_vector(p, 0.01)
        for name in a.node_names:
            assert b.temperature_of(name) == a.temperature_of(name)

    def test_theta_is_live_view(self):
        net = _two_node_network()
        view = net.theta
        net.step({"chip": 2.0}, 1.0)
        assert view is net.theta
        assert view[net.node_index("chip")] > 0.0

    def test_temperatures_array_matches_dict(self):
        net = _two_node_network()
        net.step({"chip": 2.0}, 5.0)
        arr = net.temperatures_array()
        temps = net.temperatures()
        for name, idx in net.index_map.items():
            assert arr[idx] == pytest.approx(temps[name])

    def test_indices_of_cached_and_correct(self):
        net = _two_node_network()
        idx = net.indices_of(["board", "chip"])
        assert list(idx) == [net.node_index("board"), net.node_index("chip")]
        assert net.indices_of(["board", "chip"]) is idx

    def test_max_temperature_at(self):
        net = _two_node_network()
        net.set_temperatures({"chip": 50.0, "board": 70.0})
        chip_only = net.indices_of(["chip"])
        assert net.max_temperature_at(chip_only) == pytest.approx(50.0)
