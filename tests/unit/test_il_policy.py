"""TOP-IL run-time migration policy."""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.governors.qos_dvfs import QoSDVFSControlLoop
from repro.il.policy import TopILMigrationPolicy
from repro.nn.layers import build_mlp
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.rng import RandomSource


class _FixedModel:
    """A stand-in model returning a constant rating matrix."""

    def __init__(self, ratings_per_core):
        self.ratings = np.asarray(ratings_per_core, dtype=float)

    def forward(self, batch):
        batch = np.atleast_2d(batch)
        return np.tile(self.ratings, (batch.shape[0], 1))


def _sim(platform):
    return Simulator(
        platform,
        FAN_COOLING,
        config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
        sensor_noise_std_c=0.0,
    )


def _long(name="adi"):
    return dataclasses.replace(get_app(name), total_instructions=1e15)


def _real_model():
    return build_mlp(21, 8, 2, 16, RandomSource(0))


class TestBestMigration:
    def test_prefers_highest_improvement(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.run_for(0.2)
        ratings = np.zeros((1, 8))
        ratings[0, 6] = 0.9  # core 6 much better than current core 0
        policy = TopILMigrationPolicy(_real_model())
        best = policy.best_migration(sim, sim.running_processes(), ratings)
        assert best == (pid, 6, pytest.approx(0.9))

    def test_occupied_cores_excluded(self, platform):
        sim = _sim(platform)
        sim.submit(_long(), 1e8, 0.0)
        sim.submit(_long(), 1e8, 0.0)
        order = iter([0, 6])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(0.2)
        procs = sim.running_processes()
        ratings = np.zeros((2, 8))
        ratings[0, 6] = 5.0  # tempting but occupied by the other process
        ratings[0, 5] = 0.5
        policy = TopILMigrationPolicy(_real_model())
        best = policy.best_migration(sim, procs, ratings)
        assert best[1] == 5

    def test_improvement_relative_to_current_core(self, platform):
        sim = _sim(platform)
        pid = sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 2
        sim.run_for(0.2)
        ratings = np.full((1, 8), 0.5)
        ratings[0, 2] = 0.9  # current core already best
        policy = TopILMigrationPolicy(_real_model())
        best = policy.best_migration(sim, sim.running_processes(), ratings)
        assert best[2] < 0  # any move is a downgrade


class TestEpochBehaviour:
    def test_executes_single_best_migration(self, platform):
        sim = _sim(platform)
        model = _FixedModel([0, 0, 0, 0, 0.9, 0, 0, 0])
        policy = TopILMigrationPolicy(model, period_s=0.5)
        pid = sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        policy.attach(sim)
        sim.run_for(0.6)
        assert sim.process(pid).core_id == 4
        assert policy.migrations_executed == 1

    def test_hysteresis_blocks_tiny_improvements(self, platform):
        sim = _sim(platform)
        model = _FixedModel([0.50, 0.51, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5])
        policy = TopILMigrationPolicy(model, improvement_threshold=0.05)
        pid = sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        policy.attach(sim)
        sim.run_for(1.2)
        assert sim.process(pid).core_id == 0
        assert policy.migrations_executed == 0

    def test_notifies_dvfs_loop(self, platform):
        sim = _sim(platform)
        loop = QoSDVFSControlLoop(period_s=0.05)
        model = _FixedModel([0, 0, 0, 0, 0.9, 0, 0, 0])
        policy = TopILMigrationPolicy(model, period_s=0.3, dvfs_loop=loop)
        sim.submit(_long(), 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        loop.attach(sim)
        policy.attach(sim)
        sim.run_for(0.6)
        assert loop.skipped >= 2

    def test_overhead_charged_every_epoch(self, platform):
        sim = _sim(platform)
        policy = TopILMigrationPolicy(_real_model(), period_s=0.25)
        sim.submit(_long(), 1e8, 0.0)
        policy.attach(sim)
        sim.run_for(1.1)
        assert sim.overhead_cpu_s["migration"] > 0
        assert policy.invocations == 4

    def test_idle_system_is_safe(self, platform):
        sim = _sim(platform)
        policy = TopILMigrationPolicy(_real_model(), period_s=0.2)
        policy.attach(sim)
        sim.run_for(0.5)  # no processes: must not raise
        assert policy.migrations_executed == 0

    def test_parallel_inference_one_row_per_app(self, platform):
        sim = _sim(platform)
        for _ in range(3):
            sim.submit(_long(), 1e8, 0.0)
        sim.run_for(0.2)
        policy = TopILMigrationPolicy(_real_model())
        ratings = policy.rate_mappings(sim, sim.running_processes())
        assert ratings.shape == (3, 8)
