"""ASCII plotting helpers."""

import pytest

from repro.utils.plots import ascii_bars, sparkline


class TestAsciiBars:
    def test_longest_value_fills_width(self):
        out = ascii_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_baseline_anchors_left_edge(self):
        out = ascii_bars([("cool", 30.0), ("hot", 40.0)], width=10, baseline=30.0)
        lines = out.splitlines()
        assert lines[0].count("#") == 0
        assert lines[1].count("#") == 10

    def test_unit_rendered(self):
        out = ascii_bars([("x", 1.0)], unit=" C")
        assert "1.00 C" in out

    def test_labels_aligned(self):
        out = ascii_bars([("short", 1.0), ("a-long-label", 2.0)])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars([])

    def test_negative_values_handled(self):
        out = ascii_bars([("neg", -1.0), ("pos", 1.0)])
        assert len(out.splitlines()) == 2


class TestSparkline:
    def test_length_bounded_by_width(self):
        assert len(sparkline(range(1000), width=50)) <= 50

    def test_monotone_series_monotone_blocks(self):
        from repro.utils.plots import _SPARK_BLOCKS

        line = sparkline([0, 1, 2, 3, 4], width=5)
        levels = [_SPARK_BLOCKS.index(ch) for ch in line]
        assert levels == sorted(levels)

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_constant_series_uniform(self):
        line = sparkline([5.0] * 20, width=10)
        assert len(set(line)) == 1
