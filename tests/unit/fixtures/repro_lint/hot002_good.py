"""Fixture: preallocated arrays on the hot path (no HOT002 hits)."""

from repro.utils.hotpath import hot_path


@hot_path
def read_temps(net, core_idx, out):
    scratch = {}  # empty-dict init is allowed
    out[:] = net.theta[core_idx]
    return out, scratch
