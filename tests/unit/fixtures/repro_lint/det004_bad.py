"""Fixture: unseeded RandomSource construction (DET004 hits)."""

from repro.utils import rng
from repro.utils.rng import RandomSource


def fresh_streams():
    a = RandomSource()  # expect: DET004
    b = RandomSource(seed=None)  # expect: DET004
    c = rng.RandomSource()  # expect: DET004
    return a, b, c
