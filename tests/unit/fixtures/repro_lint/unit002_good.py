"""Fixture: explicit unit conversion before combining (no UNIT002 hits)."""


def schedule(controller, start_s, offset_ms, deadline_s, budget_ms):
    total_s = start_s + offset_ms * 1e-3
    late = deadline_s < budget_ms * 1e-3
    controller.configure(period_s=0.5)
    return total_s, late
