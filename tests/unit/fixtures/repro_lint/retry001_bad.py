"""Fixture: unbounded retry loops (RETRY001 hits)."""

import time


def retry_forever(op):
    while True:  # expect: RETRY001
        try:
            return op()
        except OSError:
            time.sleep(0.1)


def retry_forever_bare_sleep(op, sleep):
    while 1:  # expect: RETRY001
        try:
            return op()
        except OSError:
            pass
        sleep(0.05)
