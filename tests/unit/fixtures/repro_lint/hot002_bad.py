"""Fixture: name-keyed dict rebuilds on the hot path (HOT002 hits)."""

from repro.utils.hotpath import hot_path


@hot_path
def read_temps(net):
    snapshot = {"core0": net.theta[0], "core1": net.theta[1]}  # expect: HOT002
    merged = dict(snapshot)  # expect: HOT002
    return merged
