"""Fixture: stdlib random use (DET001 hits)."""

import random  # expect: DET001
from random import choice  # expect: DET001


def pick(items):
    random.shuffle(items)
    return choice(items)
