"""Fixture: numpy global RNG state (DET002 hits)."""

import numpy as np
from numpy.random import rand  # expect: DET002


def noisy(shape):
    np.random.seed(0)  # expect: DET002
    base = np.random.rand(*shape)  # expect: DET002
    rng = np.random.default_rng()  # expect: DET002
    return base + rng.normal(size=shape) + rand()
