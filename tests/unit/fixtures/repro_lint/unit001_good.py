"""Fixture: unit-suffixed time names (no UNIT001 hits)."""


class Controller:
    def __init__(self):
        self.interval_s = 0.05
        self.warmup = 3  # not a time word

    def configure(self, period_s, timeout_ms, duration_steps):
        duration_s = period_s * 10
        return duration_s + timeout_ms * 1e-3 + duration_steps
