"""Fixture: seed-explicit numpy construction types (no DET002 hits)."""

import numpy as np


def make_generator(seed: int) -> np.random.Generator:
    seq = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.PCG64(seq))
