"""Fixture: sanctioned randomness (no DET001 hits)."""

from repro.utils.rng import RandomSource


def pick(items, seed):
    rng = RandomSource(seed).child("pick")
    rng.shuffle(items)
    return items[0]
