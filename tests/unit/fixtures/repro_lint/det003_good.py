"""Fixture: simulated time only (no DET003 hits)."""


def elapsed(sim, start_s: float) -> float:
    return sim.now_s - start_s
