"""Fixture: ambiguous time-valued names (UNIT001 hits)."""


class Controller:
    def __init__(self):
        self.interval = 0.05  # expect: UNIT001

    def configure(
        self,
        period,  # expect: UNIT001
        timeout,  # expect: UNIT001
    ):
        duration = period * 10  # expect: UNIT001
        return duration + timeout
