"""Fixture: seeded RandomSource construction (no DET004 hits)."""

from repro.utils.rng import RandomSource


def streams(config):
    a = RandomSource(0)
    b = RandomSource(seed=42)
    c = RandomSource(config.seed).child("component")
    return a, b, c
