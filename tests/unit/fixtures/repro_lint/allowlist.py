"""Fixture: justified violations suppressed by the inline allowlist."""

import time


def profile(fn):
    # Wall-clock profiling of the report generator is reporting metadata.
    start = time.time()  # repro-lint: ignore[DET003]
    result = fn()
    elapsed = time.time() - start  # repro-lint: ignore[DET003, FLT001]
    return result, elapsed
