"""Fixture: bounded retries and innocent loops (no RETRY001 hits)."""

import time


def retry_bounded(op, max_attempts: int = 3):
    for attempt in range(1, max_attempts + 1):
        try:
            return op()
        except OSError:
            if attempt == max_attempts:
                raise
            time.sleep(0.01 * attempt)


def retry_counted(op, max_attempts: int = 3):
    attempt = 1
    while attempt <= max_attempts:
        try:
            return op()
        except OSError:
            attempt += 1
            time.sleep(0.01)
    raise OSError("exhausted")


def drain_forever(queue):
    # Infinite, but no try+sleep pair: an event loop, not a retry loop.
    while True:
        item = queue.get()
        if item is None:
            break
        item.run()


def schedule_retry(queue):
    # The sleep lives in a nested callback, not in the loop's own body.
    while True:
        try:
            task = queue.get()
        except LookupError:
            break

        def backoff():
            time.sleep(0.1)

        task.on_failure = backoff
