"""Fixture: exact float equality (FLT001 hits)."""


def judge(x, y, total, count):
    at_limit = x == 1.0  # expect: FLT001
    not_cool = y != 0.0  # expect: FLT001
    mean_match = total / count == x  # expect: FLT001
    cast_match = float(y) == x  # expect: FLT001
    return at_limit, not_cool, mean_match, cast_match
