"""Fixture: comprehensions off the hot path, loops on it (no HOT001 hits)."""

from repro.utils.hotpath import hot_path


def build_index(processes):
    # Not marked: construction-time comprehensions are fine.
    return {p.pid: p for p in processes}


@hot_path
def step_states(processes, out):
    for i, p in enumerate(processes):
        out[i] = p.state
    return out
