"""Fixture: wall-clock reads (DET003 hits)."""

import datetime
import time


def stamp():
    started = time.time()  # expect: DET003
    tick = time.perf_counter()  # expect: DET003
    today = datetime.datetime.now()  # expect: DET003
    return started, tick, today
