"""Fixture: comprehension allocation on the hot path (HOT001 hits)."""

from repro.utils.hotpath import hot_path


@hot_path
def step_states(processes):
    states = [p.state for p in processes]  # expect: HOT001
    by_pid = {p.pid: p for p in processes}  # expect: HOT001
    return states, by_pid
