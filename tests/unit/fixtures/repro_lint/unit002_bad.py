"""Fixture: mixed time-unit arithmetic and bare literals (UNIT002 hits)."""


def schedule(controller, start_s, offset_ms, deadline_s, budget_ms):
    total = start_s + offset_ms  # expect: UNIT002
    late = deadline_s < budget_ms  # expect: UNIT002
    controller.configure(period=0.5)  # expect: UNIT002
    return total, late
