"""Fixture: tolerance helpers and int comparisons (no FLT001 hits)."""

from repro.utils.floatcmp import approx_eq, is_zero


def judge(x, y, n, m):
    at_limit = approx_eq(x, 1.0)
    not_cool = not is_zero(y)
    count_match = n == 3  # int literal: exact equality is well-defined
    name_match = n == m  # no type info; not flagged
    return at_limit, not_cool, count_match, name_match
