"""Ablation utilities: feature masking and greedy multi-migration."""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.il.ablation import (
    F_WO_AOI_FEATURES,
    FeatureMaskedModel,
    GreedyMultiMigrationPolicy,
    train_masked_model,
)
from repro.il.dataset import ILDataset
from repro.nn.layers import build_mlp
from repro.nn.training import TrainingConfig
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.rng import RandomSource


class TestFeatureMaskedModel:
    def test_masked_features_ignored(self):
        inner = build_mlp(21, 8, 1, 8, RandomSource(0))
        model = FeatureMaskedModel(inner, F_WO_AOI_FEATURES)
        x = np.ones((2, 21))
        y = model.forward(x)
        x2 = x.copy()
        x2[:, list(F_WO_AOI_FEATURES)] = 123.0  # must not matter
        assert np.allclose(model.forward(x2), y)

    def test_unmasked_features_still_matter(self):
        inner = build_mlp(21, 8, 1, 8, RandomSource(0))
        model = FeatureMaskedModel(inner, F_WO_AOI_FEATURES)
        x = np.ones((1, 21))
        x2 = x.copy()
        x2[0, 0] = 5.0
        assert not np.allclose(model.forward(x2), model.forward(x))

    def test_mask_does_not_mutate_input(self):
        inner = build_mlp(21, 8, 0, 8, RandomSource(0))
        model = FeatureMaskedModel(inner, (1,))
        x = np.ones((1, 21))
        model.forward(x)
        assert x[0, 1] == 1.0

    def test_empty_mask_is_identity(self):
        inner = build_mlp(4, 2, 0, 4, RandomSource(0))
        model = FeatureMaskedModel(inner, ())
        x = np.arange(4.0).reshape(1, 4)
        assert np.allclose(model.forward(x), inner.forward(x))


class TestTrainMaskedModel:
    def test_trains_and_predicts(self):
        rng = RandomSource(0)
        features = rng.normal(size=(60, 21))
        labels = np.tanh(features[:, :8])
        dataset = ILDataset(features, labels, [("adi", 0)] * 60)
        model = train_masked_model(
            dataset,
            masked_features=(2,),
            hidden_layers=1,
            hidden_width=8,
            training=TrainingConfig(max_epochs=20, patience=10),
        )
        assert model.forward(features[:3]).shape == (3, 8)

    def test_empty_dataset_rejected(self):
        dataset = ILDataset(np.zeros((0, 21)), np.zeros((0, 8)), [])
        with pytest.raises(ValueError):
            train_masked_model(dataset)


class _AllCoresGoodModel:
    """Rates every free core far above any current mapping."""

    def forward(self, batch):
        batch = np.atleast_2d(batch)
        out = np.full((batch.shape[0], 8), 0.9)
        # The one-hot mapping occupies columns 3..10.
        current = np.argmax(batch[:, 3:11], axis=1)
        out[np.arange(batch.shape[0]), current] = 0.0
        return out


class TestGreedyMultiMigration:
    def _sim(self, platform):
        return Simulator(
            platform,
            FAN_COOLING,
            config=SimConfig(dt_s=0.01, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )

    def test_moves_multiple_apps_in_one_epoch(self, platform):
        sim = self._sim(platform)
        policy = GreedyMultiMigrationPolicy(_AllCoresGoodModel(), period_s=0.5)
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        for _ in range(3):
            sim.submit(app, 1e8, 0.0)
        order = iter([0, 1, 2])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(0.3)
        policy(sim)
        assert policy.migrations_executed >= 2

    def test_no_two_apps_share_a_target(self, platform):
        sim = self._sim(platform)
        policy = GreedyMultiMigrationPolicy(_AllCoresGoodModel(), period_s=0.5)
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        for _ in range(4):
            sim.submit(app, 1e8, 0.0)
        order = iter([0, 1, 2, 3])
        sim.placement_policy = lambda s, p: next(order)
        sim.run_for(0.3)
        policy(sim)
        cores = [p.core_id for p in sim.running_processes()]
        assert len(cores) == len(set(cores))

    def test_each_app_moves_at_most_once_per_epoch(self, platform):
        sim = self._sim(platform)
        policy = GreedyMultiMigrationPolicy(_AllCoresGoodModel(), period_s=0.5)
        app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
        sim.submit(app, 1e8, 0.0)
        sim.placement_policy = lambda s, p: 0
        sim.run_for(0.3)
        before = sim.running_processes()[0].migration_count
        policy(sim)
        after = sim.running_processes()[0].migration_count
        assert after - before <= 1
