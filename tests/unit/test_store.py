"""The content-addressed artifact store: keys, handles, verify-on-read."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import (
    ArtifactKey,
    ArtifactStore,
    CellResultHandle,
    ILDatasetHandle,
    TraceGridHandle,
    cell_artifact_key,
    handle_for_kind,
    platform_fingerprint,
)


def _key(**overrides):
    base = dict(config={"x": 1, "y": [1, 2]}, seed=7)
    base.update(overrides)
    return ArtifactKey.create("cell/test", **base)


class TestArtifactKey:
    def test_same_ingredients_same_digest(self):
        assert _key().digest == _key().digest

    @pytest.mark.parametrize(
        "override",
        [
            {"config": {"x": 2, "y": [1, 2]}},
            {"seed": 8},
            {"code_version": "2"},
            {"extra": {"env": "faulted"}},
        ],
    )
    def test_any_ingredient_changes_digest(self, override):
        assert _key().digest != _key(**override).digest

    def test_platform_changes_digest(self, platform):
        with_platform = _key(platform=platform)
        assert _key().digest != with_platform.digest
        assert with_platform.payload["platform"] == platform_fingerprint(
            platform
        )

    def test_payload_is_pure_json(self):
        key = _key(config={"nested": {"z": 3.5}})
        assert json.loads(json.dumps(key.payload)) == key.payload

    def test_bad_kind_rejected(self):
        for kind in ("", "/abs", "a/../b"):
            with pytest.raises(ValueError):
                ArtifactKey(kind=kind, digest="0" * 64)

    def test_fault_env_folds_into_cell_keys(self, monkeypatch):
        from repro.faults import FAULT_SEED_ENV, FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        clean = cell_artifact_key("exp", (1.0, "a"), seed=3)
        monkeypatch.setenv(FAULTS_ENV, "sensor_dropout:0.1")
        faulted = cell_artifact_key("exp", (1.0, "a"), seed=3)
        assert clean.digest != faulted.digest
        assert clean.kind == "cell/exp"

    def test_handle_for_kind(self):
        assert isinstance(handle_for_kind("cell/main_mixed"), CellResultHandle)
        assert isinstance(handle_for_kind("il-dataset"), ILDatasetHandle)
        assert isinstance(handle_for_kind("trace-grid"), TraceGridHandle)
        with pytest.raises(KeyError):
            handle_for_kind("hologram")


class TestLookupAndPut:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        found, _ = store.lookup(key, handle)
        assert not found
        store.put(key, {"rows": [1, 2, 3]}, handle)
        found, value = store.lookup(key, handle)
        assert found and value == {"rows": [1, 2, 3]}
        assert store.stats().hits == 1
        assert store.stats().misses == 1

    def test_stored_none_is_a_hit(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        store.put(key, None, handle)
        found, value = store.lookup(key, handle)
        assert found and value is None

    def test_get_raises_on_miss(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(KeyError):
            store.get(_key(), CellResultHandle())

    def test_get_or_create_builds_once(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        calls = []

        def build():
            calls.append(1)
            return "expensive"

        assert store.get_or_create(key, handle, build) == "expensive"
        assert store.get_or_create(key, handle, build) == "expensive"
        assert len(calls) == 1

    def test_different_digests_do_not_collide(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        handle = CellResultHandle()
        store.put(_key(), "a", handle)
        store.put(_key(seed=8), "b", handle)
        assert store.get(_key(), handle) == "a"
        assert store.get(_key(seed=8), handle) == "b"

    def test_metrics_registry_counts(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(str(tmp_path), registry=registry)
        key, handle = _key(), CellResultHandle()
        store.lookup(key, handle)
        store.put(key, 1, handle)
        store.lookup(key, handle)
        assert registry.counter("store_misses_total", kind=key.kind).value == 1
        assert registry.counter("store_hits_total", kind=key.kind).value == 1
        assert registry.gauge("store_bytes").value > 0


class TestVerifyOnRead:
    def _seeded(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        store.put(key, {"payload": True}, handle)
        return store, key, handle

    def test_corrupted_payload_evicted_and_recomputed(self, tmp_path):
        store, key, handle = self._seeded(tmp_path)
        with open(store.payload_path(key, handle), "ab") as fh:
            fh.write(b"CORRUPTION")
        value = store.get_or_create(key, handle, lambda: {"payload": "fresh"})
        assert value == {"payload": "fresh"}
        assert store.stats().evicted_corrupt == 1
        # The rebuilt entry is trusted again.
        found, value = store.lookup(key, handle)
        assert found and value == {"payload": "fresh"}

    def test_unparsable_meta_evicted(self, tmp_path):
        store, key, handle = self._seeded(tmp_path)
        with open(store.meta_path(key), "w") as fh:
            fh.write("{not json")
        found, _ = store.lookup(key, handle)
        assert not found
        assert not os.path.exists(store.payload_path(key, handle))

    def test_schema_version_mismatch_evicted(self, tmp_path):
        store, key, handle = self._seeded(tmp_path)

        class V2(CellResultHandle):
            schema_version = 2

        found, _ = store.lookup(key, V2())
        assert not found
        assert store.stats().evicted_corrupt == 1

    def test_missing_payload_evicted(self, tmp_path):
        store, key, handle = self._seeded(tmp_path)
        os.remove(store.payload_path(key, handle))
        found, _ = store.lookup(key, handle)
        assert not found
        assert not os.path.exists(store.meta_path(key))

    def test_eviction_reasons_labelled(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(str(tmp_path), registry=registry)
        key, handle = _key(), CellResultHandle()
        store.put(key, 1, handle)
        with open(store.payload_path(key, handle), "ab") as fh:
            fh.write(b"X")
        store.lookup(key, handle)
        assert (
            registry.counter(
                "store_evicted_corrupt_total", reason="checksum"
            ).value
            == 1
        )


def _die_mid_put(root: str) -> None:
    """Child-process body: start a put, die before any rename lands."""

    class DieDuringDump(CellResultHandle):
        def dump(self, obj, path):
            with open(path, "wb") as fh:
                fh.write(b"half-written")
            os._exit(1)

    store = ArtifactStore(root)
    store.put(_key(), "never-lands", DieDuringDump())


class TestAtomicity:
    def test_killed_writer_leaves_no_trusted_entry(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_die_mid_put, args=(str(tmp_path),))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 1
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        # The half-written temp file is never visible as an entry ...
        found, _ = store.lookup(key, handle)
        assert not found
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if name.startswith("tmp-")
        ]
        assert leftovers  # the dropping exists ...
        assert store.gc() == len(leftovers)  # ... and gc reaps it.
        # A later writer succeeds normally.
        store.put(key, "landed", handle)
        assert store.get(key, handle) == "landed"

    def test_put_is_meta_last(self, tmp_path):
        """A payload without meta (kill between the two renames) is a miss."""
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        store.put(key, "v", handle)
        os.remove(store.meta_path(key))
        found, _ = store.lookup(key, handle)
        assert not found


class TestOperations:
    def test_disk_stats_per_kind(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(_key(), "a", CellResultHandle())
        store.put(
            ArtifactKey.create("cell/other", config=1), "b", CellResultHandle()
        )
        kinds = {s.kind: s for s in store.disk_stats()}
        assert kinds["cell/test"].entries == 1
        assert kinds["cell/other"].entries == 1
        assert all(s.bytes > 0 for s in kinds.values())

    def test_gc_age_based_eviction(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key, handle = _key(), CellResultHandle()
        store.put(key, "old", handle)
        assert store.gc(max_age_s=1e9) == 0  # everything is fresh
        old = 12345.0
        for path in (store.payload_path(key, handle), store.meta_path(key)):
            os.utime(path, (old, old))
        assert store.gc(max_age_s=3600.0) == 2

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(_key(), "a", CellResultHandle())
        assert store.clear() == 2
        assert store.disk_stats() == []


class TestTypedHandles:
    def test_il_dataset_roundtrip(self, tmp_path):
        from repro.il.dataset import ILDataset
        from repro.il.features import FEATURE_COUNT

        dataset = ILDataset(
            features=np.arange(2 * FEATURE_COUNT, dtype=float).reshape(
                2, FEATURE_COUNT
            ),
            labels=np.ones((2, 8)),
            meta=[("adi", 0), ("seidel-2d", 4)],
        )
        store = ArtifactStore(str(tmp_path))
        key = ArtifactKey.create("il-dataset", config={"n": 2})
        store.put(key, dataset, ILDatasetHandle())
        loaded = store.get(key, ILDatasetHandle())
        assert (loaded.features == dataset.features).all()
        assert loaded.meta == dataset.meta

    def test_trace_grid_roundtrip_bit_exact(self, tmp_path):
        from repro.il.traces import TraceGrid, TracePoint, TraceScenario

        scenario = TraceScenario(
            aoi_app="adi", background=((1, "seidel-2d"),)
        )
        grid = TraceGrid(
            scenario=scenario,
            vf_grid={"big": [0.5e9, 2.36e9], "little": [0.5e9]},
        )
        grid.add(
            TracePoint(
                aoi_core=4,
                f_hz=(("big", 2.36e9), ("little", 0.5e9)),
                aoi_ips=1.234567890123e9,
                aoi_l2d_rate=0.07654321,
                peak_temp_c=71.00000000000003,
            )
        )
        store = ArtifactStore(str(tmp_path))
        key = ArtifactKey.create("trace-grid", config={"s": 1})
        store.put(key, grid, TraceGridHandle())
        loaded = store.get(key, TraceGridHandle())
        assert loaded.scenario == scenario
        freqs = {"big": 2.36e9, "little": 0.5e9}
        point = loaded.lookup(4, freqs)
        original = grid.lookup(4, freqs)
        assert point.aoi_ips == original.aoi_ips  # exact, not approx
        assert point.peak_temp_c == original.peak_temp_c
