"""The AssetStore: caching, laziness, config overrides."""

import os

import pytest

from repro.experiments.assets import AssetConfig, AssetStore
from repro.nn.training import TrainingConfig


def _tiny_config(cache_dir=None):
    return AssetConfig(
        n_scenarios=2,
        vf_levels_per_cluster=2,
        max_aoi_candidates=2,
        n_models=1,
        training=TrainingConfig(max_epochs=10, patience=5),
        rl_episodes=1,
        rl_instruction_scale=0.01,
        cache_dir=cache_dir,
    )


class TestAssetStore:
    def test_dataset_built_lazily_and_memoized(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        first = store.dataset()
        assert store.dataset() is first

    def test_dataset_cache_reused_across_stores(self, platform, tmp_path):
        config = _tiny_config(str(tmp_path))
        a = AssetStore(platform, config)
        ds_a = a.dataset()
        cache_files = os.listdir(str(tmp_path))
        assert any(f.startswith("il-dataset") for f in cache_files)
        b = AssetStore(platform, config)
        ds_b = b.dataset()
        assert len(ds_a) == len(ds_b)
        assert (ds_a.features == ds_b.features).all()

    def test_cache_tag_separates_configs(self, platform, tmp_path):
        a = AssetStore(platform, _tiny_config(str(tmp_path)))
        a.dataset()
        bigger = _tiny_config(str(tmp_path))
        bigger.n_scenarios = 3
        b = AssetStore(platform, bigger)
        b.dataset()
        files = [f for f in os.listdir(str(tmp_path)) if f.startswith("il-dataset")]
        assert len(files) == 2

    def test_models_match_config_count(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        assert len(store.models()) == 1

    def test_qtables_cached_on_disk(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        store.qtables()
        files = os.listdir(str(tmp_path))
        assert any(f.startswith("qtable-") for f in files)
        # Re-load path: a second store reads the file rather than training.
        again = AssetStore(platform, _tiny_config(str(tmp_path)))
        tables = again.qtables()
        assert len(tables) == 1

    def test_no_cache_dir_works(self, platform):
        store = AssetStore(platform, _tiny_config(None))
        assert store.dataset() is not None

    def test_with_config_overrides(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        derived = store.with_config(n_scenarios=5)
        assert derived.config.n_scenarios == 5
        assert derived.platform is store.platform
        assert store.config.n_scenarios == 2  # original untouched
