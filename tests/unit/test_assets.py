"""The AssetStore: store-backed caching, laziness, config overrides."""

import logging
import os

import pytest

from repro.experiments.assets import AssetConfig, AssetStore
from repro.nn.training import TrainingConfig
from repro.store import ILDatasetHandle, ModelHandle, QTableHandle


def _tiny_config(cache_dir=None):
    return AssetConfig(
        n_scenarios=2,
        vf_levels_per_cluster=2,
        max_aoi_candidates=2,
        n_models=1,
        training=TrainingConfig(max_epochs=10, patience=5),
        rl_episodes=1,
        rl_instruction_scale=0.01,
        cache_dir=cache_dir,
    )


class TestAssetStore:
    def test_dataset_built_lazily_and_memoized(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        first = store.dataset()
        assert store.dataset() is first

    def test_dataset_cache_reused_across_stores(self, platform, tmp_path):
        config = _tiny_config(str(tmp_path))
        a = AssetStore(platform, config)
        ds_a = a.dataset()
        assert os.path.isdir(os.path.join(str(tmp_path), "il-dataset"))
        b = AssetStore(platform, config)
        ds_b = b.dataset()
        assert b.artifacts.stats().hits >= 1
        assert len(ds_a) == len(ds_b)
        assert (ds_a.features == ds_b.features).all()

    def test_cache_key_separates_configs(self, platform, tmp_path):
        a = AssetStore(platform, _tiny_config(str(tmp_path)))
        a.dataset()
        bigger = _tiny_config(str(tmp_path))
        bigger.n_scenarios = 3
        b = AssetStore(platform, bigger)
        assert a.dataset_key().digest != b.dataset_key().digest
        b.dataset()
        entries = [
            f
            for f in os.listdir(os.path.join(str(tmp_path), "il-dataset"))
            if f.endswith(".meta.json")
        ]
        assert len(entries) == 2

    def test_models_match_config_count(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        assert len(store.models()) == 1

    def test_models_cached_on_disk(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        models = store.models()
        found, _ = store.artifacts.lookup(store.model_key(0), ModelHandle())
        assert found
        # A warm store serves the model without building the dataset.
        again = AssetStore(platform, _tiny_config(str(tmp_path)))
        cached = again.models()
        assert again._dataset is None
        import numpy as np

        x = np.zeros((1, models[0].layers[0].weight.shape[0]))
        assert np.allclose(models[0].forward(x), cached[0].forward(x))

    def test_qtables_cached_on_disk(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        store.qtables()
        found, _ = store.artifacts.lookup(store.qtable_key(0), QTableHandle())
        assert found
        # Re-load path: a second store reads the entry rather than training.
        again = AssetStore(platform, _tiny_config(str(tmp_path)))
        tables = again.qtables()
        assert len(tables) == 1
        assert again.artifacts.stats().hits >= 1

    def test_no_cache_dir_works(self, platform):
        store = AssetStore(platform, _tiny_config(None))
        assert store.artifacts is None
        assert store.dataset() is not None

    def test_with_config_overrides(self, platform, tmp_path):
        store = AssetStore(platform, _tiny_config(str(tmp_path)))
        derived = store.with_config(n_scenarios=5)
        assert derived.config.n_scenarios == 5
        assert derived.platform is store.platform
        assert store.config.n_scenarios == 2  # original untouched

    def test_cache_dir_not_in_key(self, platform, tmp_path):
        a = AssetStore(platform, _tiny_config(str(tmp_path / "a")))
        b = AssetStore(platform, _tiny_config(str(tmp_path / "b")))
        assert a.dataset_key().digest == b.dataset_key().digest
        assert a.qtable_key(0).digest == b.qtable_key(0).digest

    def test_legacy_cache_files_warn_once(self, platform, tmp_path, caplog):
        import repro.experiments.assets as assets_mod

        (tmp_path / "il-dataset-s2-v2-c2-seed42.npz").write_bytes(b"junk")
        assets_mod._LEGACY_CHECKED.discard(os.path.abspath(str(tmp_path)))
        with caplog.at_level(logging.WARNING, logger="repro.experiments.assets"):
            store = AssetStore(platform, _tiny_config(str(tmp_path)))
            assert store.artifacts is not None
            again = AssetStore(platform, _tiny_config(str(tmp_path)))
            assert again.artifacts is not None
        warnings = [
            r for r in caplog.records if "pre-store cache" in r.getMessage()
        ]
        assert len(warnings) == 1
        # The legacy file is ignored, not loaded: building still works and
        # the junk bytes stay untouched on disk.
        assert (tmp_path / "il-dataset-s2-v2-c2-seed42.npz").read_bytes() == b"junk"
