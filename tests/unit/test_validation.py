"""Argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.1)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    def test_accepts_bounds(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.01)


class TestCheckInRange:
    def test_accepts_inside(self):
        check_in_range("x", 5, 0, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="x"):
            check_in_range("x", 11, 0, 10)

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="alpha"):
            check_in_range("alpha", -1, 0, 1)


class TestCheckFinite:
    def test_accepts_scalar(self):
        check_finite("x", 1.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite("x", float("nan"))

    def test_rejects_inf_in_array(self):
        with pytest.raises(ValueError):
            check_finite("arr", np.array([1.0, np.inf]))

    def test_accepts_array(self):
        check_finite("arr", np.ones(10))
