"""Run-manifest round-trips, config hashing, and grid merging."""

from __future__ import annotations

import dataclasses
import json

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    git_revision,
    host_fingerprint,
    merge_manifests,
)
from repro.sim.kernel import SimConfig


class TestConfigHash:
    def test_stable_across_calls(self):
        config = SimConfig()
        assert config_hash(config) == config_hash(SimConfig())

    def test_dict_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_handles_nested_dataclasses(self):
        payload = {"sim": SimConfig(), "label": "x", "seq": (1, 2)}
        assert len(config_hash(payload)) == 16


class TestProvenance:
    def test_git_revision_in_checkout(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40

    def test_git_revision_outside_checkout(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) == "unknown"

    def test_host_fingerprint_fields(self):
        host = host_fingerprint()
        assert set(host) == {"python", "numpy", "os"}
        assert all(isinstance(v, str) and v for v in host.values())


class TestRoundTrip:
    def test_write_load_equality(self, tmp_path):
        manifest = RunManifest.create(
            experiment="main_mixed",
            label="cell-0",
            seed=11,
            config={"x": 1},
            wall_time_s=1.5,
            sim_time_s=30.0,
            tracer={"capacity": 16, "recorded": 3, "dropped": 0, "stored": 3},
            summary={"run_mean_temp_c": 31.0},
            metrics={"sim_steps_total": 100.0},
            extra={"meta": {"technique": "GTS/ondemand"}},
        )
        path = manifest.write(str(tmp_path / "cell-0.manifest.json"))
        loaded = RunManifest.load(path)
        assert loaded == manifest
        assert loaded.schema_version == MANIFEST_SCHEMA_VERSION

    def test_write_creates_parent_dirs(self, tmp_path):
        manifest = RunManifest.create(experiment="e", label="a/b/c")
        path = manifest.write(str(tmp_path / "deep" / "nested" / "m.json"))
        assert RunManifest.load(path).label == "a/b/c"

    def test_from_dict_ignores_unknown_keys(self):
        payload = RunManifest.create(experiment="e", label="l").to_dict()
        payload["future_field"] = "whatever"
        loaded = RunManifest.from_dict(payload)
        assert loaded.experiment == "e"

    def test_written_file_is_plain_json(self, tmp_path):
        manifest = RunManifest.create(experiment="e", label="l")
        path = manifest.write(str(tmp_path / "m.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["experiment"] == "e"


def _fragment(label, seed, wall_s, sim_s, dropped=0):
    return RunManifest.create(
        experiment="grid",
        label=label,
        seed=seed,
        config={"shared": True},
        wall_time_s=wall_s,
        sim_time_s=sim_s,
        tracer={"recorded": 10, "dropped": dropped},
        summary={"run_mean_temp_c": 30.0 + seed},
    )


class TestMerge:
    def test_merge_sums_times_and_tracer(self):
        merged = merge_manifests(
            [_fragment("b", 1, 1.0, 10.0, dropped=2),
             _fragment("a", 0, 2.0, 20.0)],
            experiment="grid",
        )
        assert merged.wall_time_s == 3.0
        assert merged.sim_time_s == 30.0
        assert merged.tracer == {"recorded": 20, "dropped": 2}
        assert merged.extra["n_cells"] == 2

    def test_merge_is_order_independent(self):
        frags = [_fragment("b", 1, 1.0, 10.0), _fragment("a", 0, 2.0, 20.0)]
        forward = merge_manifests(frags, experiment="grid")
        backward = merge_manifests(list(reversed(frags)), experiment="grid")
        # Identical apart from the creation timestamp.
        fwd = dataclasses.replace(forward, created_unix_s=0.0)
        bwd = dataclasses.replace(backward, created_unix_s=0.0)
        assert fwd == bwd
        labels = [c["label"] for c in forward.extra["cells"]]
        assert labels == sorted(labels)

    def test_uniform_config_hash_propagates(self):
        frags = [_fragment("a", 0, 1.0, 1.0), _fragment("b", 1, 1.0, 1.0)]
        merged = merge_manifests(frags, experiment="grid")
        assert merged.config_hash == frags[0].config_hash

    def test_differing_config_hash_does_not_propagate(self):
        frags = [_fragment("a", 0, 1.0, 1.0), _fragment("b", 1, 1.0, 1.0)]
        frags[1] = dataclasses.replace(frags[1], config_hash="deadbeefdeadbeef")
        merged = merge_manifests(frags, experiment="grid")
        assert merged.config_hash == ""

    def test_empty_merge(self):
        merged = merge_manifests([], experiment="grid")
        assert merged.extra == {"n_cells": 0, "cells": []}
        assert merged.wall_time_s == 0.0
