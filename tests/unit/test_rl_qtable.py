"""Q-table mechanics."""

import numpy as np
import pytest

from repro.rl.qtable import QTable


class TestConstruction:
    def test_paper_size(self):
        table = QTable(288, 8)
        assert table.size == 2304

    def test_constant_initialization(self):
        table = QTable(4, 2, initial_value=1.5)
        assert np.all(table.values == 1.5)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            QTable(0, 8)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            QTable(4, 2, learning_rate=1.5)


class TestUpdateRule:
    def test_single_update_matches_definition(self):
        """Q += alpha (r + gamma max Q' - Q)."""
        table = QTable(3, 2, learning_rate=0.5, discount=0.8)
        table.values[1] = [2.0, 4.0]  # next-state values
        table.update(state=0, action=0, reward=10.0, next_state=1)
        expected = 0.0 + 0.5 * (10.0 + 0.8 * 4.0 - 0.0)
        assert table.q(0, 0) == pytest.approx(expected)

    def test_update_counter(self):
        table = QTable(2, 2)
        table.update(0, 0, 1.0, 1)
        table.update(0, 1, 1.0, 1)
        assert table.updates == 2

    def test_convergence_on_two_state_chain(self):
        """Repeated updates converge to r / (1 - gamma) on a self-loop."""
        table = QTable(1, 1, learning_rate=0.2, discount=0.5)
        for _ in range(500):
            table.update(0, 0, 1.0, 0)
        assert table.q(0, 0) == pytest.approx(1.0 / (1 - 0.5), abs=1e-3)

    def test_best_action(self):
        table = QTable(2, 3)
        table.values[0] = [0.1, 0.9, 0.3]
        assert table.best_action(0) == 1


class TestPersistence:
    def test_copy_is_independent(self):
        a = QTable(2, 2)
        b = a.copy()
        b.values[0, 0] = 99.0
        assert a.values[0, 0] == 0.0

    def test_save_load_roundtrip(self, tmp_path):
        table = QTable(4, 3, learning_rate=0.05, discount=0.8)
        table.values[:] = np.arange(12).reshape(4, 3)
        path = str(tmp_path / "q.npz")
        table.save(path)
        loaded = QTable.load(path)
        assert np.allclose(loaded.values, table.values)
        assert loaded.learning_rate == table.learning_rate
        assert loaded.discount == table.discount
