"""ASCII table rendering."""

import pytest

from repro.utils.tables import ascii_table


class TestAsciiTable:
    def test_headers_and_rows_rendered(self):
        out = ascii_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "1" in lines[2] and "4" in lines[3]

    def test_column_width_adapts(self):
        out = ascii_table(["x"], [["longvalue"]])
        assert "longvalue" in out

    def test_float_formatting(self):
        out = ascii_table(["v"], [[1.23456]])
        assert "1.235" in out

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = ascii_table(["a"], [])
        assert "a" in out
