"""The REPRO_SANITIZE=1 kernel sanitizer layer."""

import dataclasses

import numpy as np
import pytest

from repro.apps import get_app
from repro.sim import SimConfig, Simulator
from repro.thermal import FAN_COOLING
from repro.utils.sanitize import SANITIZE_ENV, SanitizerError, sanitizer_enabled


def _sim(platform):
    config = SimConfig(dt_s=0.01, model_overhead_on_core=None)
    return Simulator(platform, FAN_COOLING, config=config, sensor_noise_std_c=0.0)


def _submit_long(sim):
    app = dataclasses.replace(get_app("adi"), total_instructions=1e15)
    sim.submit(app, 1e8, 0.0)


class TestSwitch:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "2"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitizer_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " 0 "])
    def test_falsey_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert not sanitizer_enabled()

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitizer_enabled()

    def test_read_at_construction_time(self, monkeypatch, platform):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not _sim(platform)._sanitize_enabled
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert _sim(platform)._sanitize_enabled


class TestChecks:
    @pytest.fixture()
    def sanitized_sim(self, monkeypatch, platform):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        sim = _sim(platform)
        _submit_long(sim)
        return sim

    def test_clean_run_passes(self, sanitized_sim):
        sanitized_sim.run_for(1.0)
        assert sanitized_sim.now_s > 0.99

    def test_injected_nan_caught(self, sanitized_sim):
        sanitized_sim.run_for(0.1)
        sanitized_sim.thermal.theta[0] = np.nan
        with pytest.raises(SanitizerError, match="non-finite"):
            sanitized_sim.run_for(0.1)

    def test_thermal_bounds_caught(self, sanitized_sim):
        sanitized_sim.run_for(0.1)
        node = sanitized_sim.thermal.node_names[0]
        sanitized_sim.thermal.set_temperatures({node: 500.0})
        with pytest.raises(SanitizerError, match="plausible bounds"):
            sanitized_sim.step()

    def test_non_monotone_time_caught(self, sanitized_sim):
        sanitized_sim.step()
        # Repeated checks without advancing now_s must trip the monotone guard.
        sanitized_sim._sanitize_step()
        with pytest.raises(SanitizerError, match="did not advance"):
            sanitized_sim._sanitize_step()

    def test_negative_power_caught(self, sanitized_sim):
        sanitized_sim.step()
        sanitized_sim._power_vec[0] = -1.0
        with pytest.raises(SanitizerError, match="negative power"):
            sanitized_sim._sanitize_step()

    def test_disabled_by_default_skips_checks(self, monkeypatch, platform):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        sim = _sim(platform)
        _submit_long(sim)
        sim.run_for(0.1)
        node = sim.thermal.node_names[0]
        sim.thermal.set_temperatures({node: 500.0})
        sim.step()  # no sanitizer: the implausible state goes undetected
        assert sim.thermal.temperatures()[node] > 100.0
