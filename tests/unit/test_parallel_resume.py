"""Supervisor-level crash recovery: a SIGKILL'd grid cell resumes.

The end-to-end retry-with-resume loop in one test file: the env-carried
chaos plan kills every worker right after its first checkpoint lands,
the fork-pool supervisor retries the cell, and the retried attempt
restores from that checkpoint (``resumed_from_s > 0``) instead of
starting over — finishing with results bit-identical to an undisturbed
serial run.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.chaos import (
    CHAOS_DIR_ENV,
    CHAOS_ENV,
    CHAOS_SEED_ENV,
    reset_engine_cache,
)
from repro.experiments.parallel import run_cells_report
from repro.governors.techniques import GTSOndemand
from repro.platform.registry import get_platform
from repro.sim.checkpoint import CHECKPOINT_DIR_ENV, CHECKPOINT_PERIOD_ENV
from repro.workloads.generator import Workload, WorkloadItem
from repro.workloads.runner import run_workload


def _workload():
    return Workload(
        name="pool-resume",
        items=[WorkloadItem("adi", 1e8, 0.0)],
        instruction_scale=0.002,
    )


def _run_cell(seed: int) -> dict:
    """Grid worker (module-level: picklable by reference).

    The checkpoint policy and chaos plan both arrive via the inherited
    environment, exactly as in a real chaos-hardened sweep.
    """
    result = run_workload(
        get_platform("hikey970"), GTSOndemand(), _workload(), seed=seed
    )
    return {
        "seed": seed,
        "resumed_from_s": result.resumed_from_s,
        "mean_temp_c": result.summary.mean_temp_c,
        "duration_s": result.summary.duration_s,
    }


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_sigkilled_cell_resumes_from_checkpoint(tmp_path, monkeypatch):
    seeds = [3, 4]
    platform = get_platform("hikey970")

    # Baseline first, before any chaos/checkpoint env exists.
    for env in (
        CHAOS_ENV, CHAOS_SEED_ENV, CHAOS_DIR_ENV,
        CHECKPOINT_DIR_ENV, CHECKPOINT_PERIOD_ENV,
    ):
        monkeypatch.delenv(env, raising=False)
    reset_engine_cache()
    baseline = [
        run_workload(platform, GTSOndemand(), _workload(), seed=s)
        for s in seeds
    ]

    checkpoint_dir = tmp_path / "checkpoints"
    markers_dir = tmp_path / "markers"
    markers_dir.mkdir()
    monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(checkpoint_dir))
    monkeypatch.setenv(CHECKPOINT_PERIOD_ENV, "0.5")
    monkeypatch.setenv(CHAOS_ENV, "kill_after_checkpoint:1")
    monkeypatch.setenv(CHAOS_SEED_ENV, "0")
    monkeypatch.setenv(CHAOS_DIR_ENV, str(markers_dir))
    reset_engine_cache()
    try:
        report = run_cells_report(
            seeds,
            _run_cell,
            parallel=True,
            n_workers=2,
            cell_timeout_s=120.0,
            max_retries=2,
            retry_backoff_s=0.05,
        )
    finally:
        reset_engine_cache()

    assert report.used_pool
    assert report.ok(), f"cells failed: {report.failed_cells}"
    # Every cell was killed once (marker per cell) and retried once.
    assert report.retries_total == len(seeds)
    assert len(list(markers_dir.iterdir())) == len(seeds)

    for row, plain, seed in zip(report.results, baseline, seeds):
        assert row["seed"] == seed
        # The retried attempt restored the killed attempt's checkpoint
        # rather than recomputing from t=0 ...
        assert row["resumed_from_s"] > 0.0
        # ... and landed on bit-identical results.
        assert row["mean_temp_c"] == plain.summary.mean_temp_c
        assert row["duration_s"] == plain.summary.duration_s

    # Completed cells GC'd their checkpoints.
    leftovers = [
        name
        for _, _, names in os.walk(str(checkpoint_dir))
        for name in names
        if not name.startswith("tmp-")
    ]
    assert leftovers == []
