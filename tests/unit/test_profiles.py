"""Application characterization profiles."""

import pytest

from repro.apps import get_app
from repro.apps.profiles import profile_app
from repro.platform.hikey import BIG, LITTLE


@pytest.fixture(scope="module")
def adi_profile(platform):
    return profile_app(get_app("adi"), platform)


@pytest.fixture(scope="module")
def canneal_profile(platform):
    return profile_app(get_app("canneal"), platform)


class TestProfileStructure:
    def test_covers_every_vf_level(self, platform, adi_profile):
        expected = sum(len(c.vf_table) for c in platform.clusters)
        assert len(adi_profile.points) == expected

    def test_on_cluster_filter(self, platform, adi_profile):
        little = adi_profile.on_cluster(LITTLE)
        assert len(little) == len(platform.cluster(LITTLE).vf_table)
        assert all(p.cluster == LITTLE for p in little)

    def test_report_renders(self, adi_profile):
        text = adi_profile.report()
        assert "MIPS" in text and "mW" in text


class TestPhysicalShape:
    def test_ips_monotone_in_frequency(self, adi_profile):
        for cluster in (LITTLE, BIG):
            points = sorted(
                adi_profile.on_cluster(cluster), key=lambda p: p.frequency_hz
            )
            ips = [p.ips for p in points]
            assert ips == sorted(ips)

    def test_power_monotone_in_frequency(self, adi_profile):
        for cluster in (LITTLE, BIG):
            points = sorted(
                adi_profile.on_cluster(cluster), key=lambda p: p.frequency_hz
            )
            power = [p.core_power_w for p in points]
            assert power == sorted(power)

    def test_compute_app_efficiency_sweet_spot_not_at_top(self, adi_profile):
        """V^2 scaling makes the top VF level energy-inefficient."""
        best = adi_profile.most_efficient_point()
        top_big = max(
            adi_profile.on_cluster(BIG), key=lambda p: p.frequency_hz
        )
        assert best.energy_per_instruction_nj < top_big.energy_per_instruction_nj

    def test_memory_bound_app_wastes_energy_at_high_vf(self, canneal_profile):
        """canneal's IPS saturates, so energy/inst explodes with frequency."""
        little = sorted(
            canneal_profile.on_cluster(LITTLE), key=lambda p: p.frequency_hz
        )
        assert (
            little[-1].energy_per_instruction_nj
            > 2 * little[0].energy_per_instruction_nj
        )


class TestQueries:
    def test_min_point_for_prefers_low_power(self, adi_profile):
        target = 0.3 * adi_profile.max_ips()
        point = adi_profile.min_point_for(target)
        assert point is not None
        assert point.ips >= target
        # Fig. 1's anchor: the cheapest way to run adi at 30% is the big
        # cluster's bottom level, not the LITTLE cluster's top level.
        assert point.cluster == BIG

    def test_min_point_for_unreachable_returns_none(self, adi_profile):
        assert adi_profile.min_point_for(1e13) is None
