"""The application catalog: structure and the paper's calibration anchors."""

import pytest

from repro.apps import (
    HELDOUT_APPS,
    PARSEC_APPS,
    POLYBENCH_APPS,
    TRACE_COLLECTION_APPS,
    TRAINING_APPS,
    app_catalog,
    get_app,
    qos_fraction_of_big_max,
)
from repro.platform import hikey970
from repro.platform.hikey import BIG, LITTLE


@pytest.fixture(scope="module")
def platform():
    return hikey970()


class TestCatalogStructure:
    def test_sixteen_mixed_workload_apps_plus_covariance(self):
        catalog = app_catalog()
        assert len(PARSEC_APPS) == 8
        assert len(POLYBENCH_APPS) == 9  # 8 paper kernels + covariance
        assert len(catalog) == 17

    def test_paper_parsec_set(self):
        assert set(PARSEC_APPS) == {
            "blackscholes", "bodytrack", "canneal", "dedup",
            "facesim", "ferret", "fluidanimate", "swaptions",
        }

    def test_training_split_is_paper_split(self):
        """7 training kernels; jacobi-2d and covariance held out."""
        assert len(TRAINING_APPS) == 7
        assert set(HELDOUT_APPS) == {"jacobi-2d", "covariance"}
        assert "jacobi-2d" not in TRAINING_APPS

    def test_trace_apps_are_phase_free(self):
        """The oracle pipeline requires constant-QoS benchmarks."""
        for name in TRACE_COLLECTION_APPS:
            assert not get_app(name).has_phases(), name

    def test_parsec_apps_mostly_have_phases(self):
        phased = [n for n in PARSEC_APPS if get_app(n).has_phases()]
        assert len(phased) >= 6

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            get_app("doom")

    def test_catalog_copy_is_isolated(self):
        catalog = app_catalog()
        catalog.pop("adi")
        assert get_app("adi") is not None

    def test_every_app_models_both_clusters(self):
        for app in app_catalog().values():
            assert set(app.clusters()) == {LITTLE, BIG}


class TestPaperAnchors:
    def test_adi_needs_top_little_but_bottom_big(self, platform):
        """Fig. 1 scenario 1: QoS=30% of big-max -> ~1.8 GHz LITTLE vs
        ~0.7 GHz big."""
        adi = get_app("adi")
        target = qos_fraction_of_big_max(adi, platform, 0.3)
        little = adi.min_frequency_for(LITTLE, platform.cluster(LITTLE).vf_table, target)
        big = adi.min_frequency_for(BIG, platform.cluster(BIG).vf_table, target)
        assert little is not None and little.frequency_hz > 1.7e9
        assert big is not None and big.frequency_hz < 0.8e9

    def test_seidel_needs_similar_levels_on_both(self, platform):
        """Fig. 1: seidel-2d ~1.2 GHz LITTLE vs ~1.0 GHz big."""
        seidel = get_app("seidel-2d")
        target = qos_fraction_of_big_max(seidel, platform, 0.3)
        little = seidel.min_frequency_for(
            LITTLE, platform.cluster(LITTLE).vf_table, target
        )
        big = seidel.min_frequency_for(BIG, platform.cluster(BIG).vf_table, target)
        assert 0.9e9 < little.frequency_hz < 1.5e9
        assert 0.9e9 < big.frequency_hz < 1.3e9

    def test_canneal_is_vf_insensitive(self, platform):
        """Sec. 7.3: canneal's performance depends little on the VF level."""
        canneal = get_app("canneal")
        table = platform.cluster(LITTLE).vf_table
        gain = canneal.ips(LITTLE, table.max_level.frequency_hz) / canneal.ips(
            LITTLE, table.min_level.frequency_hz
        )
        freq_gain = table.max_level.frequency_hz / table.min_level.frequency_hz
        assert gain < 0.6 * freq_gain

    def test_canneal_meets_halved_target_at_lowest_level(self, platform):
        """Only canneal survives powersave in the single-app experiments."""
        canneal = get_app("canneal")
        little = platform.cluster(LITTLE)
        target = 0.5 * canneal.max_ips(LITTLE, little.vf_table)
        at_min = canneal.ips(LITTLE, little.vf_table.min_level.frequency_hz)
        assert at_min >= target

    def test_compute_apps_fail_halved_target_at_lowest_level(self, platform):
        little = platform.cluster(LITTLE)
        for name in ("swaptions", "syr2k", "gramschmidt"):
            app = get_app(name)
            target = 0.5 * app.max_ips(LITTLE, little.vf_table)
            at_min = app.ips(LITTLE, little.vf_table.min_level.frequency_hz)
            assert at_min < target, name

    def test_swaptions_big_benefit_large(self, platform):
        """Compute-bound apps profit ~3x from the big cluster at equal f."""
        app = get_app("swaptions")
        ratio = app.ips(BIG, 1e9) / app.ips(LITTLE, 1e9)
        assert ratio > 1.7

    def test_big_cluster_never_slower_at_equal_frequency(self, platform):
        for app in app_catalog().values():
            assert app.ips(BIG, 1e9) >= 0.95 * app.ips(LITTLE, 1e9), app.name

    def test_runtimes_are_minutes_scale(self, platform):
        """Apps 'run for several minutes' (Sec. 5.1)."""
        big = platform.cluster(BIG)
        for app in app_catalog().values():
            seconds = app.total_instructions / app.max_ips(BIG, big.vf_table)
            assert 20.0 < seconds < 1200.0, app.name
