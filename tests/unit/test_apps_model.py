"""Application performance model: roofline IPS, phases, coupling."""

import pytest

from repro.apps.model import (
    AppModel,
    ClusterPerfParams,
    Phase,
    PhaseSchedule,
)
from repro.platform.vf import VFLevel, VFTable
from repro.utils.units import GHZ


@pytest.fixture
def table():
    return VFTable(
        [VFLevel(0.5 * GHZ, 0.7), VFLevel(1.0 * GHZ, 0.8), VFLevel(2.0 * GHZ, 1.0)]
    )


def _app(cpi=1.0, mem=1e-10, coupling=0.0, phases=None, **kwargs):
    perf = {
        "LITTLE": ClusterPerfParams(
            cpi, mem, 0.8, mem_freq_coupling=coupling, mem_ref_freq_hz=2.0 * GHZ
        )
    }
    extra = {"phases": phases} if phases else {}
    return AppModel(
        name="toy", suite="polybench", perf=perf, l2d_per_inst=0.01, **extra, **kwargs
    )


class TestClusterPerfParams:
    def test_rejects_bad_cpi(self):
        with pytest.raises(ValueError):
            ClusterPerfParams(0.0, 1e-10)

    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            ClusterPerfParams(1.0, 1e-10, activity=1.2)

    def test_effective_mem_time_uncoupled(self):
        p = ClusterPerfParams(1.0, 2e-10, mem_freq_coupling=0.0)
        assert p.effective_mem_time(0.5e9) == pytest.approx(2e-10)

    def test_effective_mem_time_fully_coupled(self):
        """coupling=1: stall time doubles when frequency halves."""
        p = ClusterPerfParams(1.0, 2e-10, mem_freq_coupling=1.0, mem_ref_freq_hz=2e9)
        assert p.effective_mem_time(1e9) == pytest.approx(4e-10)
        assert p.effective_mem_time(2e9) == pytest.approx(2e-10)


class TestIPSModel:
    def test_compute_bound_scales_linearly(self):
        app = _app(cpi=1.0, mem=0.0)
        assert app.ips("LITTLE", 2e9) == pytest.approx(2 * app.ips("LITTLE", 1e9))

    def test_memory_bound_saturates(self):
        app = _app(cpi=0.5, mem=10e-10)
        gain = app.ips("LITTLE", 2e9) / app.ips("LITTLE", 0.5e9)
        assert gain < 2.0  # 4x frequency buys < 2x performance

    def test_saturation_ceiling(self):
        app = _app(cpi=0.5, mem=10e-10)
        assert app.ips("LITTLE", 100e9) < 1.0 / 10e-10

    def test_fully_coupled_app_scales_linearly(self):
        """coupling=1 makes memory latency constant in cycles -> linear IPS."""
        app = _app(cpi=1.0, mem=5e-10, coupling=1.0)
        assert app.ips("LITTLE", 2e9) == pytest.approx(
            2 * app.ips("LITTLE", 1e9), rel=1e-9
        )

    def test_contention_slowdown_reduces_ips(self):
        app = _app(cpi=1.0, mem=5e-10)
        assert app.ips("LITTLE", 1e9, mem_slowdown=2.0) < app.ips("LITTLE", 1e9)

    def test_contention_does_not_affect_pure_compute(self):
        app = _app(cpi=1.0, mem=0.0)
        assert app.ips("LITTLE", 1e9, mem_slowdown=3.0) == pytest.approx(
            app.ips("LITTLE", 1e9)
        )

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(ValueError):
            _app().ips("LITTLE", 1e9, mem_slowdown=0.5)


class TestMinFrequencyFor:
    def test_finds_lowest_sufficient_level(self, table):
        app = _app(cpi=1.0, mem=0.0)
        # IPS(f) = f, so 0.8 GIPS needs the 1 GHz level.
        level = app.min_frequency_for("LITTLE", table, 0.8e9)
        assert level.frequency_hz == pytest.approx(1.0 * GHZ)

    def test_returns_none_when_unreachable(self, table):
        app = _app(cpi=1.0, mem=0.0)
        assert app.min_frequency_for("LITTLE", table, 3e9) is None

    def test_max_ips_consistency(self, table):
        app = _app(cpi=1.0, mem=1e-10)
        target = app.max_ips("LITTLE", table)
        level = app.min_frequency_for("LITTLE", table, target * 0.999)
        assert level == table.max_level


class TestPhases:
    def test_schedule_normalizes_fractions(self):
        sched = PhaseSchedule([Phase(2.0), Phase(2.0)])
        assert sum(p.instruction_fraction for p in sched.phases) == pytest.approx(1.0)

    def test_phase_at_selects_by_progress(self):
        sched = PhaseSchedule([Phase(0.5, cpi_scale=1.0), Phase(0.5, cpi_scale=2.0)])
        assert sched.phase_at(0.25).cpi_scale == 1.0
        assert sched.phase_at(0.75).cpi_scale == 2.0

    def test_phase_cycles(self):
        sched = PhaseSchedule([Phase(0.5, cpi_scale=1.0), Phase(0.5, cpi_scale=2.0)])
        assert sched.phase_at(1.25).cpi_scale == 1.0

    def test_constant_schedule_flag(self):
        assert PhaseSchedule([Phase(1.0)]).is_constant
        assert not PhaseSchedule([Phase(0.5), Phase(0.5, cpi_scale=2.0)]).is_constant

    def test_app_ips_changes_with_phase(self):
        phases = PhaseSchedule([Phase(0.5, cpi_scale=1.0), Phase(0.5, cpi_scale=2.0)])
        app = _app(cpi=1.0, mem=0.0, phases=phases, phase_cycle_instructions=1e9)
        early = app.ips("LITTLE", 1e9, instructions_done=0.0)
        late = app.ips("LITTLE", 1e9, instructions_done=0.6e9)
        assert early == pytest.approx(2 * late)

    def test_phase_preserves_coupling(self):
        phases = PhaseSchedule([Phase(0.5), Phase(0.5, mem_scale=2.0)])
        app = _app(cpi=1.0, mem=2e-10, coupling=1.0, phases=phases)
        params, _ = app.params_at("LITTLE", 0.0)
        assert params.mem_freq_coupling == 1.0


class TestL2D:
    def test_l2d_rate_proportional_to_ips(self):
        app = _app(cpi=1.0, mem=0.0)
        assert app.l2d_per_second("LITTLE", 2e9) == pytest.approx(
            2 * app.l2d_per_second("LITTLE", 1e9)
        )

    def test_l2d_scaled_by_phase(self):
        phases = PhaseSchedule([Phase(0.5, l2d_scale=1.0), Phase(0.5, l2d_scale=3.0)])
        app = _app(cpi=1.0, mem=0.0, phases=phases, phase_cycle_instructions=1e9)
        early = app.l2d_per_second("LITTLE", 1e9, 0.0)
        late = app.l2d_per_second("LITTLE", 1e9, 0.6e9)
        assert late == pytest.approx(3 * early)


class TestValidation:
    def test_empty_perf_rejected(self):
        with pytest.raises(ValueError):
            AppModel(name="x", suite="s", perf={}, l2d_per_inst=0.01)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            _app().ips("LITTLE", 0.0)
