"""Design-time pipeline: scenario generation and end-to-end flow."""

import pytest

from repro.il.pipeline import PipelineConfig, generate_scenarios
from repro.utils.rng import RandomSource


class TestGenerateScenarios:
    def test_count(self, platform):
        scenarios = generate_scenarios(
            platform, ["adi", "syr2k"], 20, RandomSource(0)
        )
        assert len(scenarios) == 20

    def test_always_a_free_core(self, platform):
        scenarios = generate_scenarios(
            platform, ["adi"], 50, RandomSource(1), max_background_apps=7
        )
        assert all(s.free_cores(platform) for s in scenarios)

    def test_background_cores_distinct(self, platform):
        scenarios = generate_scenarios(platform, ["adi"], 50, RandomSource(2))
        for s in scenarios:
            cores = [c for c, _ in s.background]
            assert len(cores) == len(set(cores))

    def test_aoi_from_requested_apps(self, platform):
        apps = ["adi", "seidel-2d"]
        scenarios = generate_scenarios(platform, apps, 30, RandomSource(3))
        assert {s.aoi_app for s in scenarios}.issubset(set(apps))

    def test_deterministic_given_seed(self, platform):
        a = generate_scenarios(platform, ["adi"], 10, RandomSource(7))
        b = generate_scenarios(platform, ["adi"], 10, RandomSource(7))
        assert a == b

    def test_background_sizes_vary(self, platform):
        scenarios = generate_scenarios(platform, ["adi"], 60, RandomSource(4))
        sizes = {len(s.background) for s in scenarios}
        assert len(sizes) >= 4  # includes empty and crowded systems


class TestPipelineConfig:
    def test_rejects_empty_apps(self):
        with pytest.raises(ValueError):
            PipelineConfig(apps=())

    def test_rejects_zero_scenarios(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_scenarios=0)


class TestSessionAssets:
    """End-to-end checks against the session-scoped smoke assets."""

    def test_dataset_nonempty_and_shaped(self, assets):
        ds = assets.dataset()
        assert len(ds) > 50
        assert ds.features.shape[1] == 21
        assert ds.labels.shape[1] == 8

    def test_models_trained_and_distinct(self, assets):
        models = assets.models()
        assert len(models) == 2
        x = assets.dataset().features[:4]
        out0, out1 = models[0].forward(x), models[1].forward(x)
        assert out0.shape == (4, 8)
        assert not (out0 == out1).all()  # different seeds -> different weights

    def test_model_fits_training_data_reasonably(self, assets):
        from repro.nn.losses import MSELoss

        ds = assets.dataset()
        loss, _ = MSELoss()(assets.models()[0].forward(ds.features), ds.labels)
        assert loss < 0.15

    def test_dataset_cached_on_disk(self, assets):
        import os

        cache_files = os.listdir(assets.config.cache_dir)
        assert any(f.startswith("il-dataset") for f in cache_files)
