"""Workload generation and the experiment run engine.

Reproduces the paper's workload construction: mixed workloads of 20
randomly selected PARSEC + Polybench applications with random QoS targets
and Poisson arrival times at varying rates (Sec. 7.2), plus the
single-application workloads of Sec. 7.3.
"""

from repro.workloads.generator import (
    WorkloadItem,
    Workload,
    mixed_workload,
    single_app_workload,
    save_workload,
    load_workload,
    DEFAULT_MIXED_APPS,
)
from repro.workloads.runner import RunResult, run_workload

__all__ = [
    "WorkloadItem",
    "Workload",
    "mixed_workload",
    "single_app_workload",
    "save_workload",
    "load_workload",
    "DEFAULT_MIXED_APPS",
    "RunResult",
    "run_workload",
]
