"""The experiment run engine: execute one workload under one technique."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.governors.base import Technique
from repro.metrics.summary import RunSummary, summarize_run
from repro.platform import Platform
from repro.sim.kernel import SimConfig, Simulator
from repro.sim.trace import TraceRecorder
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.rng import RandomSource
from repro.workloads.generator import Workload


@dataclass
class RunResult:
    """Summary plus the full trace of one run."""

    summary: RunSummary
    trace: TraceRecorder
    sim: Simulator


def run_workload(
    platform: Platform,
    technique: Technique,
    workload: Workload,
    cooling: CoolingConfig = FAN_COOLING,
    seed: int = 0,
    sim_config: Optional[SimConfig] = None,
    max_duration_s: float = 7200.0,
    settle_s: float = 2.0,
) -> RunResult:
    """Execute ``workload`` under ``technique`` and summarize the run.

    The board cools down for 10 minutes between the paper's experiments;
    each run here starts from ambient, which is what that cool-down
    converges to.  ``settle_s`` runs the empty system briefly before the
    first arrival so the governors reach their idle operating point.
    """
    sim = Simulator(
        platform,
        cooling,
        config=sim_config or SimConfig(),
        rng=RandomSource(seed).child("run"),
    )
    technique.attach(sim)
    for item in workload.items:
        sim.submit(
            workload.resolve_app(item),
            qos_target_ips=item.qos_target_ips,
            arrival_time_s=item.arrival_time_s + settle_s,
        )
    sim.run_until_complete(timeout_s=max_duration_s)
    summary = summarize_run(sim, technique.name, workload.name)
    return RunResult(summary=summary, trace=sim.trace, sim=sim)
