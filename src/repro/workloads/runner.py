"""The experiment run engine: execute one workload under one technique.

When observability is enabled (``REPRO_TRACE=1`` or an explicit
:class:`~repro.obs.config.Observability` argument), :func:`run_workload`
additionally exports the run's trace (JSONL + Chrome trace-event JSON) and
writes a :class:`~repro.obs.manifest.RunManifest` next to those artifacts,
carrying the same headline numbers as the returned
:class:`~repro.metrics.summary.RunSummary`.
"""

from __future__ import annotations

import logging
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.chaos.engine import engine_from_env
from repro.faults import FaultPlan, FaultRuntime
from repro.governors.base import Technique
from repro.metrics.summary import RunSummary, publish_summary, summarize_run
from repro.obs.config import Observability
from repro.obs.manifest import RunManifest
from repro.platform import Platform
from repro.sim.checkpoint import CheckpointError, CheckpointPolicy
from repro.sim.kernel import SimConfig, Simulator
from repro.sim.trace import TraceRecorder
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.rng import RandomSource
from repro.workloads.generator import Workload

_LOG = logging.getLogger("repro.runner")


@dataclass
class RunResult:
    """Summary plus the full trace of one run.

    ``manifest`` and ``artifacts`` are populated only when observability is
    enabled for the run: ``manifest`` is the written
    :class:`~repro.obs.manifest.RunManifest` and ``artifacts`` maps artifact
    kinds (``events_jsonl``, ``chrome_trace``, ``manifest``) to file paths.
    """

    summary: RunSummary
    trace: TraceRecorder
    sim: Simulator
    manifest: Optional[RunManifest] = None
    artifacts: Dict[str, str] = field(default_factory=dict)
    #: Simulated time the run resumed from (0.0 = started fresh).  Set
    #: when periodic checkpointing found a prior checkpoint of this exact
    #: run — the crash-recovery path's observable footprint.
    resumed_from_s: float = 0.0


def run_slug(text: str) -> str:
    """Filesystem-safe label fragment: lowercase, ``[a-z0-9._-]`` only."""
    slug = re.sub(r"[^a-z0-9._-]+", "-", text.lower()).strip("-")
    return slug or "run"


def _export_observability(
    sim: Simulator,
    summary: RunSummary,
    seed: int,
    wall_time_s: float,
    run_label: Optional[str],
) -> tuple:
    """Write trace artifacts + manifest for a traced run."""
    obs = sim.obs
    assert obs is not None
    summary_values = publish_summary(summary, obs.registry)
    obs.finalize(sim, wall_time_s=wall_time_s)
    label_tail = run_label if run_label is not None else run_slug(
        f"{summary.technique}-{summary.workload}-seed{seed}"
    )
    out_dir = sim.observability.out_dir
    artifacts = obs.export(out_dir, label_tail)
    manifest = RunManifest.create(
        experiment=obs.meta.get("experiment", "run"),
        label=label_tail,
        seed=seed,
        config={
            "technique": summary.technique,
            "workload": summary.workload,
            "sim": sim.config,
            "observability": sim.observability,
        },
        wall_time_s=wall_time_s,
        sim_time_s=sim.now_s,
        tracer=obs.tracer.stats().as_dict(),
        summary={k: float(v) for k, v in summary_values.items()},
        metrics=obs.registry.scalar_snapshot(),
        extra={"meta": dict(obs.meta)},
    )
    manifest_path = os.path.join(out_dir, f"{label_tail}.manifest.json")
    manifest.write(manifest_path)
    artifacts["manifest"] = manifest_path
    return manifest, artifacts


class _CheckpointSession:
    """One run's periodic-checkpoint lifecycle against an artifact store.

    Owns the checkpoint's content-addressed key (full run configuration +
    platform + seed + fault/chaos env), the store under the policy's
    directory, and the three moments of the protocol: *restore* (probe at
    run start), *write* (the ``on_checkpoint`` hook, latest-wins under
    one key), and *complete* (GC — a finished cell's checkpoint is dead
    weight).  Write failures disable further checkpointing for the run
    instead of crashing it: the checkpoint layer is an optimization and
    must never change whether a run succeeds.
    """

    def __init__(
        self,
        policy: CheckpointPolicy,
        platform: Platform,
        technique: Technique,
        workload: Workload,
        cooling: CoolingConfig,
        seed: int,
        sim_config: Optional[SimConfig],
        settle_s: float,
        run_label: Optional[str],
    ) -> None:
        # Imported lazily: repro.store reaches back into this module via
        # the RL pretraining pipeline, so a top-level import would cycle.
        from repro.store.handles import CheckpointHandle
        from repro.store.keys import ArtifactKey, fault_env_signature
        from repro.store.store import ArtifactStore

        self.policy = policy
        self.handle = CheckpointHandle()
        self.key = ArtifactKey.create(
            "checkpoint",
            config={
                "technique": technique.name,
                "technique_class": type(technique).__qualname__,
                "workload": workload,
                "cooling": cooling,
                "sim_config": sim_config or SimConfig(),
                # max_duration_s is deliberately NOT part of the key: a
                # checkpoint is a prefix of the trajectory, valid no
                # matter where the attempt's stop budget lies.
                "settle_s": settle_s,
            },
            platform=platform,
            seed=seed,
            extra={"env": fault_env_signature(), "label": run_label},
        )
        self.store = ArtifactStore(policy.directory)
        self.enabled = True
        self.writes = 0

    def try_restore(self) -> Optional[Simulator]:
        """The checkpointed simulator of this exact run, or None.

        A checkpoint that fails verification (version/checksum/unpickle)
        is discarded and the run starts fresh — resume is opportunistic,
        never load-bearing.
        """
        found, checkpoint = self.store.lookup(self.key, self.handle)
        if not found:
            return None
        try:
            sim = Simulator.restore(checkpoint)
        except CheckpointError as exc:
            _LOG.warning(
                "discarding unusable checkpoint %s: %s", self.key.digest[:12], exc
            )
            self.store.discard(self.key, self.handle)
            return None
        if sim.obs is not None:
            sim.obs.registry.counter("checkpoint_restores_total").inc()
        return sim

    def write(self, sim: Simulator) -> None:
        """``on_checkpoint`` hook: snapshot + publish, latest wins."""
        if not self.enabled:
            return
        try:
            checkpoint = sim.snapshot(
                meta={"label": self.key.digest[:12], "sim_time_s": sim.now_s}
            )
        except CheckpointError as exc:
            # Unpicklable simulator state: warn once, run on uncheckpointed.
            _LOG.warning("checkpointing disabled for this run: %s", exc)
            self.enabled = False
            return
        self.store.put(self.key, checkpoint, self.handle)
        self.writes += 1
        if sim.obs is not None:
            sim.obs.registry.counter("checkpoint_writes_total").inc()
        chaos = engine_from_env()
        if chaos is not None:
            chaos.after_checkpoint_write(self.key.digest[:16])

    def complete(self) -> None:
        """GC the checkpoint once the cell finished — it can never be
        resumed from again (the next identical run hits the *result*
        cache, not the checkpoint)."""
        self.store.discard(self.key, self.handle)


def run_workload(
    platform: Platform,
    technique: Technique,
    workload: Workload,
    cooling: CoolingConfig = FAN_COOLING,
    seed: int = 0,
    sim_config: Optional[SimConfig] = None,
    max_duration_s: float = 7200.0,
    settle_s: float = 2.0,
    observability: Optional[Observability] = None,
    run_label: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> RunResult:
    """Execute ``workload`` under ``technique`` and summarize the run.

    The board cools down for 10 minutes between the paper's experiments;
    each run here starts from ambient, which is what that cool-down
    converges to.  ``settle_s`` runs the empty system briefly before the
    first arrival so the governors reach their idle operating point.

    Args:
        platform: Hardware model to simulate on.
        technique: Resource manager to attach (e.g. ``TopIL``, ``GTS``).
        workload: Arrival list; items are admitted ``settle_s`` after start.
        cooling: Cooling configuration (fan or passive).
        seed: Base seed for the run's random streams.
        sim_config: Kernel configuration; defaults to ``SimConfig()``.
        max_duration_s: Abort threshold for ``run_until_complete``.
        settle_s: Idle warm-up before the first arrival.
        observability: Explicit observability config; ``None`` reads the
            ``REPRO_TRACE`` / ``REPRO_TRACE_DIR`` environment (off by
            default).  When enabled, trace artifacts and a run manifest
            are written under its ``out_dir``.
        run_label: Artifact basename (may contain ``/`` subdirectories);
            defaults to a slug of technique, workload, and seed.
        fault_plan: Deterministic fault-injection plan; ``None`` reads the
            ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` environment (off by
            default).  When set, a :class:`~repro.faults.FaultRuntime`
            is attached to the simulator — a **zero-fault plan is
            bit-identical to no plan at all** (the fault layer draws from
            its own seed streams, never the sensor's).
        checkpoint: Periodic-checkpoint policy; ``None`` reads the
            ``REPRO_CHECKPOINT_DIR`` / ``REPRO_CHECKPOINT_PERIOD_S``
            environment (off by default).  When active, the run probes
            the checkpoint store first and **resumes** a previously
            killed attempt of this exact run from its last snapshot
            (``RunResult.resumed_from_s`` > 0), writes a fresh snapshot
            every ``period_s`` simulated seconds while running, and GCs
            the checkpoint on completion.  Checkpointing never changes
            results: snapshots are pure reads, so a checkpointed run is
            bit-identical to a checkpoint-disabled one.

    Returns:
        A :class:`RunResult`; ``manifest``/``artifacts`` are set only for
        traced runs.
    """
    start_wall = time.perf_counter()  # repro-lint: ignore[DET003]
    policy = (
        checkpoint if checkpoint is not None else CheckpointPolicy.from_env()
    )
    session: Optional[_CheckpointSession] = None
    resumed_from_s = 0.0
    sim: Optional[Simulator] = None
    if policy is not None:
        session = _CheckpointSession(
            policy,
            platform,
            technique,
            workload,
            cooling,
            seed,
            sim_config,
            settle_s,
            run_label,
        )
        sim = session.try_restore()
        if sim is not None:
            resumed_from_s = sim.now_s
    if sim is None:
        sim = prepare_run(
            platform,
            technique,
            workload,
            cooling=cooling,
            seed=seed,
            sim_config=sim_config,
            settle_s=settle_s,
            observability=observability,
            fault_plan=fault_plan,
        )
    # A resumed run targets the same *absolute* end of simulated time as
    # the attempt it resumed, so resume cannot extend the budget.
    timeout_s = max(sim.config.dt_s, max_duration_s - resumed_from_s)
    if session is not None:
        sim.run_until_complete(
            timeout_s=timeout_s,
            checkpoint_every_s=session.policy.period_s,
            on_checkpoint=session.write,
        )
        session.complete()
    else:
        sim.run_until_complete(timeout_s=timeout_s)
    result = finalize_run(
        sim,
        technique,
        workload,
        seed=seed,
        start_wall=start_wall,
        run_label=run_label,
    )
    result.resumed_from_s = resumed_from_s
    return result


def prepare_run(
    platform: Platform,
    technique: Technique,
    workload: Workload,
    cooling: CoolingConfig = FAN_COOLING,
    seed: int = 0,
    sim_config: Optional[SimConfig] = None,
    settle_s: float = 2.0,
    observability: Optional[Observability] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Simulator:
    """Build the fully-armed simulator for one run without advancing it.

    Performs everything :func:`run_workload` does up to (but excluding)
    ``run_until_complete``: fault-plan resolution, simulator construction
    with the run's seeded RNG, technique attachment, and arrival
    submission.  The batched backend uses this to construct the exact
    per-cell simulators the scalar path would run, then advances them in
    lockstep; :func:`finalize_run` completes the other half.
    """
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    faults = FaultRuntime.from_plan(plan) if plan is not None else None
    sim = Simulator(
        platform,
        cooling,
        config=sim_config or SimConfig(),
        rng=RandomSource(seed).child("run"),
        observability=observability,
        faults=faults,
    )
    technique.attach(sim)
    for item in workload.items:
        sim.submit(
            workload.resolve_app(item),
            qos_target_ips=item.qos_target_ips,
            arrival_time_s=item.arrival_time_s + settle_s,
        )
    return sim


def finalize_run(
    sim: Simulator,
    technique: Technique,
    workload: Workload,
    seed: int = 0,
    start_wall: Optional[float] = None,
    run_label: Optional[str] = None,
) -> RunResult:
    """Summarize a completed simulator into a :class:`RunResult`.

    The second half of :func:`run_workload`: computes the
    :class:`~repro.metrics.summary.RunSummary` and, for traced runs,
    exports trace artifacts and the run manifest exactly as the scalar
    path does.  ``start_wall`` is the ``time.perf_counter()`` taken before
    the run began (used for the manifest's wall-time; defaults to "now",
    i.e. zero wall time).
    """
    summary = summarize_run(sim, technique.name, workload.name)
    manifest: Optional[RunManifest] = None
    artifacts: Dict[str, str] = {}
    if sim.obs is not None:
        wall_start = (
            start_wall
            if start_wall is not None
            else time.perf_counter()  # repro-lint: ignore[DET003]
        )
        wall_s = time.perf_counter() - wall_start  # repro-lint: ignore[DET003]
        manifest, artifacts = _export_observability(
            sim, summary, seed, wall_s, run_label
        )
    return RunResult(
        summary=summary,
        trace=sim.trace,
        sim=sim,
        manifest=manifest,
        artifacts=artifacts,
    )
