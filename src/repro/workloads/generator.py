"""Workload construction: mixed Poisson-arrival and single-app workloads."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps.adapt import adapt_app_for_platform
from repro.apps.catalog import PARSEC_APPS, get_app
from repro.apps.model import AppModel
from repro.apps.qos import default_qos_target, reference_cluster
from repro.platform import Platform
from repro.utils.floatcmp import is_exactly
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive

#: The paper's mixed-workload application pool (Sec. 7.2): eight PARSEC
#: applications and eight Polybench kernels.
DEFAULT_MIXED_APPS: Tuple[str, ...] = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "swaptions",
    "adi",
    "fdtd-2d",
    "floyd-warshall",
    "gramschmidt",
    "heat-3d",
    "jacobi-2d",
    "seidel-2d",
    "syr2k",
)


@dataclass(frozen=True)
class WorkloadItem:
    """One application instance to execute."""

    app_name: str
    qos_target_ips: float
    arrival_time_s: float

    def __post_init__(self):
        check_positive("qos_target_ips", self.qos_target_ips)
        if self.arrival_time_s < 0:
            raise ValueError("arrival_time_s must be >= 0")


@dataclass
class Workload:
    """A named list of items plus a global instruction-scale knob.

    ``instruction_scale`` < 1 shrinks every application's instruction count
    proportionally — experiments use it to run CI-sized versions of the
    paper's multi-minute workloads without changing their structure.
    """

    name: str
    items: List[WorkloadItem]
    instruction_scale: float = 1.0

    def __post_init__(self):
        check_positive("instruction_scale", self.instruction_scale)
        if not self.items:
            raise ValueError("workload has no items")

    def resolve_app(self, item: WorkloadItem) -> AppModel:
        """The (possibly scaled) application model for one item."""
        app = get_app(item.app_name)
        if is_exactly(self.instruction_scale, 1.0):
            return app
        return dataclasses.replace(
            app, total_instructions=app.total_instructions * self.instruction_scale
        )

    @property
    def n_items(self) -> int:
        return len(self.items)

    def last_arrival_s(self) -> float:
        return max(item.arrival_time_s for item in self.items)


def mixed_workload(
    platform: Platform,
    n_apps: int = 20,
    arrival_rate_per_s: float = 1.0 / 30.0,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_MIXED_APPS,
    qos_fraction_range: Tuple[float, float] = (0.35, 0.85),
    instruction_scale: float = 1.0,
) -> Workload:
    """The paper's mixed workload: random apps, QoS targets, Poisson arrivals.

    QoS targets are drawn as a random fraction of the application's peak
    IPS at the top VF level of the platform's reference (slowest) cluster
    — ``LITTLE`` on the HiKey 970 — which keeps every target feasible on
    any cluster in isolation while leaving contention to create real
    pressure — matching the paper's "random QoS target for each
    application".  The arrival rate controls the system load (the paper
    sweeps it to reach 13-37 % average utilization).
    """
    check_positive("n_apps", n_apps)
    check_positive("arrival_rate_per_s", arrival_rate_per_s)
    lo, hi = qos_fraction_range
    if not 0.0 < lo <= hi <= 1.0:
        raise ValueError("qos_fraction_range must satisfy 0 < lo <= hi <= 1")
    rng = RandomSource(seed).child("mixed-workload")
    reference = reference_cluster(platform)
    items: List[WorkloadItem] = []
    t = 0.0
    for _ in range(n_apps):
        t += float(rng.exponential(1.0 / arrival_rate_per_s))
        name = str(rng.choice(list(apps)))
        app = adapt_app_for_platform(get_app(name), platform)
        fraction = float(rng.uniform(lo, hi))
        target = fraction * app.max_ips(reference.name, reference.vf_table)
        items.append(WorkloadItem(name, target, t))
    return Workload(
        name=f"mixed-n{n_apps}-rate{arrival_rate_per_s:.4f}-seed{seed}",
        items=items,
        instruction_scale=instruction_scale,
    )


def single_app_workload(
    app_name: str,
    platform: Platform,
    qos_fraction_of_little_max: float = 0.75,
    qos_target_ips: Optional[float] = None,
    instruction_scale: float = 1.0,
) -> Workload:
    """One application arriving at t=0 with a LITTLE-feasible QoS target."""
    app = get_app(app_name)
    target = (
        qos_target_ips
        if qos_target_ips is not None
        else default_qos_target(app, platform, qos_fraction_of_little_max)
    )
    return Workload(
        name=f"single-{app_name}",
        items=[WorkloadItem(app_name, target, 0.0)],
        instruction_scale=instruction_scale,
    )


def save_workload(workload: Workload, path: str) -> None:
    """Persist a workload to JSON so experiments can be replayed exactly."""
    import json

    payload = {
        "name": workload.name,
        "instruction_scale": workload.instruction_scale,
        "items": [
            {
                "app": item.app_name,
                "qos_target_ips": item.qos_target_ips,
                "arrival_time_s": item.arrival_time_s,
            }
            for item in workload.items
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_workload(path: str) -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    import json

    with open(path) as handle:
        payload = json.load(handle)
    items = [
        WorkloadItem(
            app_name=entry["app"],
            qos_target_ips=float(entry["qos_target_ips"]),
            arrival_time_s=float(entry["arrival_time_s"]),
        )
        for entry in payload["items"]
    ]
    return Workload(
        name=str(payload["name"]),
        items=items,
        instruction_scale=float(payload.get("instruction_scale", 1.0)),
    )
