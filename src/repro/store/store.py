"""The content-addressed artifact store.

Layout — one directory per kind, two files per entry::

    <root>/
      il-dataset/
        <digest>.npz            payload (handle-defined format)
        <digest>.meta.json      entry metadata, written LAST
      cell/main_mixed/
        <digest>.pkl
        <digest>.meta.json

The meta file records the payload checksum (SHA-256 of the bytes on
disk), the handle schema version, the payload size, and the full key
payload (so ``meta.json`` answers "what produced this?").  Because the
meta is renamed into place *after* the payload, its presence implies a
complete payload: a writer killed mid-``put`` leaves at most a
``tmp-*`` file (reaped by :meth:`ArtifactStore.gc`) and never a
half-entry that a reader could trust.

Reads verify before trusting: a missing/unparsable meta, a schema-version
mismatch, a checksum mismatch, or a handle that fails to deserialize all
**evict** the entry (both files deleted, ``store_evicted_corrupt_total``
incremented by reason) and report a miss — corrupted or stale entries are
recomputed, never returned.

Concurrent writers of the same digest are benign: both compute identical
bytes (keys are content addresses), and ``os.replace`` is atomic, so the
loser simply overwrites the winner with the same content.

Infrastructure-failure posture (see ``docs/resilience.md``): transient
I/O errors are retried a bounded number of times with deterministic
jittered backoff; a cache directory that proves unusable (``ENOSPC``,
read-only, permission denied, or retries exhausted on a write) degrades
the store **once** to a no-cache in-memory mode — the run continues
uncached, a warning is logged, and the ``store_degraded`` gauge flips to
1.  The chaos harness (:mod:`repro.chaos`) injects exactly these faults
through the seams in :meth:`ArtifactStore.put` / :meth:`lookup`.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar, Union

from repro.chaos.engine import ChaosEngine, engine_from_env
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, RingTracer
from repro.store.handles import ArtifactHandle
from repro.store.keys import ArtifactKey

__all__ = ["ArtifactStore", "KindStats", "StoreStats"]

_LOG = logging.getLogger("repro.store")

_META_SUFFIX = ".meta.json"
_TMP_PREFIX = "tmp-"

#: Schema of the ``meta.json`` envelope itself (not the payloads).
META_SCHEMA_VERSION = 1

#: Bounded retry policy for transient I/O errors.  Backoff is
#: exponential with a deterministic jitter derived from the operation
#: token (no wall-clock randomness), capped by the ceiling — the shape
#: the RETRY001 lint rule demands of every retry loop in ``src/``.
_MAX_IO_ATTEMPTS = 3
_BACKOFF_BASE_S = 0.01
_BACKOFF_CEILING_S = 0.1

#: Errnos that bounded retry cannot fix: the directory itself is
#: unusable, so the store degrades instead of retrying.
_NON_TRANSIENT_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EACCES, errno.EROFS, errno.EPERM, errno.EDQUOT}
)

#: Payload-path prefix reported for entries living in degraded-mode
#: memory (never a real filesystem path).
_MEMORY_PATH_PREFIX = "<memory>"

_T = TypeVar("_T")


def _backoff_s(token: str, attempt: int) -> float:
    """Deterministic jittered exponential backoff for one retry.

    The jitter comes from hashing ``token:attempt`` — stable across
    runs (keeps retried grids reproducible) while still decorrelating
    concurrent writers of different artifacts.
    """
    digest = hashlib.sha256(f"{token}:{attempt}".encode("utf-8")).hexdigest()
    frac = int(digest[:8], 16) / float(0xFFFFFFFF)
    return min(_BACKOFF_BASE_S * (2.0**attempt) * (0.5 + frac), _BACKOFF_CEILING_S)


@dataclass
class StoreStats:
    """Per-process lookup statistics (reset with the store instance)."""

    hits: int = 0
    misses: int = 0
    evicted_corrupt: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evicted_corrupt": self.evicted_corrupt,
            "bytes_written": self.bytes_written,
        }


@dataclass(frozen=True)
class KindStats:
    """On-disk footprint of one artifact kind (for ``cache stats``)."""

    kind: str
    entries: int
    bytes: int


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """Content-addressed artifact cache rooted at one directory.

    Thread-unsafe by design (one store per process); *process*-safe for
    concurrent writers because every mutation is a same-directory atomic
    rename and entries are immutable once written.
    """

    def __init__(
        self,
        root: str,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Union[RingTracer, NullTracer]] = None,
        chaos: Optional[ChaosEngine] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.registry = registry
        self.tracer: Union[RingTracer, NullTracer] = (
            tracer if tracer is not None else NULL_TRACER
        )
        self.run_stats = StoreStats()
        # Injection seam: an explicit engine wins; otherwise the
        # env-carried plan (REPRO_CHAOS) applies, exactly as in workers.
        self._chaos = chaos if chaos is not None else engine_from_env(registry)
        # One-shot degradation state: once the cache dir proves unusable
        # the store serves this process from `_memory` and never touches
        # the directory again.
        self._degraded = False
        self._memory: Dict[Tuple[str, str], Any] = {}
        # Relative timestamps for store trace events; elapsed wall time is
        # observability metadata, never a simulation result.
        self._t0_s = time.monotonic()  # repro-lint: ignore[DET003]

    @property
    def degraded(self) -> bool:
        """Whether this store fell back to no-cache in-memory mode."""
        return self._degraded

    # ---------------------------------------------------------------- paths
    def kind_dir(self, kind: str) -> str:
        return os.path.join(self.root, *kind.split("/"))

    def payload_path(self, key: ArtifactKey, handle: ArtifactHandle) -> str:
        return os.path.join(self.kind_dir(key.kind), key.digest + handle.suffix)

    def meta_path(self, key: ArtifactKey) -> str:
        return os.path.join(self.kind_dir(key.kind), key.digest + _META_SUFFIX)

    # -------------------------------------------------------------- metrics
    def _now_s(self) -> float:
        return time.monotonic() - self._t0_s  # repro-lint: ignore[DET003]

    def _count_hit(self, key: ArtifactKey) -> None:
        self.run_stats.hits += 1
        if self.registry is not None:
            self.registry.counter("store_hits_total", kind=key.kind).inc()
        self.tracer.emit(
            "store.hit", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12]},
        )

    def _count_miss(self, key: ArtifactKey) -> None:
        self.run_stats.misses += 1
        if self.registry is not None:
            self.registry.counter("store_misses_total", kind=key.kind).inc()
        self.tracer.emit(
            "store.miss", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12]},
        )

    def _evict(self, key: ArtifactKey, handle: ArtifactHandle, reason: str) -> None:
        """Delete a bad entry and account for it; never raises."""
        self.run_stats.evicted_corrupt += 1
        if self.registry is not None:
            self.registry.counter(
                "store_evicted_corrupt_total", reason=reason
            ).inc()
        self.tracer.emit(
            "store.evict", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12], "reason": reason},
        )
        for path in (self.meta_path(key), self.payload_path(key, handle)):
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------ resilience
    def _degrade(self, reason: str) -> None:
        """One-shot switch to no-cache in-memory mode; warns exactly once."""
        if self._degraded:
            return
        self._degraded = True
        _LOG.warning(
            "artifact store at %s degraded to in-memory mode (%s); "
            "this process continues uncached",
            self.root,
            reason,
        )
        if self.registry is not None:
            self.registry.gauge("store_degraded").set(1.0)
        self.tracer.emit(
            "store.degraded", ts_s=self._now_s(), cat="store",
            args={"reason": reason},
        )

    def _io_retry(self, op: Callable[[], _T], op_name: str, token: str) -> _T:
        """Run ``op`` with bounded retry on *transient* ``OSError``.

        Non-transient errnos (``ENOSPC``, ``EACCES``, ``EROFS``, ...)
        and the final failed attempt propagate to the caller, which
        decides whether to degrade (writes) or miss (reads).  Bounded by
        ``_MAX_IO_ATTEMPTS`` with a backoff ceiling — see RETRY001.
        """
        for attempt in range(_MAX_IO_ATTEMPTS):
            try:
                return op()
            except OSError as exc:
                if (
                    exc.errno in _NON_TRANSIENT_ERRNOS
                    or attempt == _MAX_IO_ATTEMPTS - 1
                ):
                    raise
                if self.registry is not None:
                    self.registry.counter(
                        "store_retries_total", op=op_name
                    ).inc()
                time.sleep(_backoff_s(token, attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _payload_checksum(self, path: str) -> str:
        """Checksum a payload with the chaos read seam + bounded retry."""

        def op() -> str:
            if self._chaos is not None:
                self._chaos.before_payload_read()
            return _sha256_file(path)

        return self._io_retry(op, "read", path)

    def _memory_key(self, key: ArtifactKey) -> Tuple[str, str]:
        return (key.kind, key.digest)

    # ---------------------------------------------------------------- reads
    def lookup(
        self, key: ArtifactKey, handle: ArtifactHandle
    ) -> Tuple[bool, Any]:
        """``(found, value)`` — distinguishes a miss from a stored ``None``.

        Verifies meta parse, schema version, and payload checksum before
        deserializing; any failure evicts the entry and reports a miss.
        Transient read errors are retried a bounded number of times and
        then reported as a miss (the entry is left alone — it may be
        fine once the I/O recovers); a degraded store serves only its
        in-memory entries.
        """
        mem_key = self._memory_key(key)
        if mem_key in self._memory:
            self._count_hit(key)
            return (True, self._memory[mem_key])
        if self._degraded:
            self._count_miss(key)
            return (False, None)
        meta_path = self.meta_path(key)
        payload_path = self.payload_path(key, handle)
        if not os.path.exists(meta_path):
            self._count_miss(key)
            return (False, None)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except ValueError:
            self._evict(key, handle, reason="meta")
            self._count_miss(key)
            return (False, None)
        except OSError:
            self._count_miss(key)
            return (False, None)
        if (
            meta.get("meta_schema_version") != META_SCHEMA_VERSION
            or meta.get("schema_version") != handle.schema_version
        ):
            self._evict(key, handle, reason="schema")
            self._count_miss(key)
            return (False, None)
        try:
            checksum = (
                self._payload_checksum(payload_path)
                if os.path.exists(payload_path)
                else None
            )
        except OSError:
            # Transient reads exhausted: miss without evicting — the
            # bytes on disk may be perfectly good once I/O recovers.
            self._count_miss(key)
            return (False, None)
        if checksum != meta.get("checksum"):
            self._evict(key, handle, reason="checksum")
            self._count_miss(key)
            return (False, None)
        try:
            value = handle.load(payload_path)
        except Exception:
            # A checksum-valid payload the handle cannot parse is stale
            # (e.g. written by newer code) or corrupt-at-birth; recompute.
            self._evict(key, handle, reason="load")
            self._count_miss(key)
            return (False, None)
        self._count_hit(key)
        return (True, value)

    def get(self, key: ArtifactKey, handle: ArtifactHandle) -> Any:
        """The stored value, or raise ``KeyError`` on a miss."""
        found, value = self.lookup(key, handle)
        if not found:
            raise KeyError(f"no {key.kind} entry for digest {key.digest}")
        return value

    def contains(self, key: ArtifactKey, handle: ArtifactHandle) -> bool:
        """Verified membership (counts as a hit or miss like ``lookup``)."""
        found, _ = self.lookup(key, handle)
        return found

    # --------------------------------------------------------------- writes
    def put(self, key: ArtifactKey, value: Any, handle: ArtifactHandle) -> str:
        """Persist ``value`` under ``key``; returns the payload path.

        Transient write errors are retried with bounded backoff; an
        unusable cache directory (non-transient errno or retries
        exhausted) degrades the store to in-memory mode instead of
        crashing the run — the value is still served from ``lookup``
        for the rest of this process, just not cached on disk.
        """
        if self._degraded:
            return self._memory_put(key, value)
        try:
            return self._disk_put(key, value, handle)
        except OSError as exc:
            self._degrade(f"put failed: {exc}")
            return self._memory_put(key, value)

    def _memory_put(self, key: ArtifactKey, value: Any) -> str:
        self._memory[self._memory_key(key)] = value
        self.tracer.emit(
            "store.put", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12], "memory": True},
        )
        return f"{_MEMORY_PATH_PREFIX}/{key.kind}/{key.digest}"

    def _disk_put(
        self, key: ArtifactKey, value: Any, handle: ArtifactHandle
    ) -> str:
        """The on-disk write protocol (all-or-nothing via atomic renames).

        Dump to a temp file in the entry's own directory (same
        filesystem, and suffix-preserving because ``np.savez`` appends
        ``.npz`` to alien extensions), checksum the temp bytes, rename
        payload into place, then rename meta into place.  Meta last: its
        presence certifies a complete payload.
        """
        directory = self.kind_dir(key.kind)
        os.makedirs(directory, exist_ok=True)
        tmp_payload = os.path.join(
            directory, f"{_TMP_PREFIX}{os.getpid()}-{key.digest}{handle.suffix}"
        )
        tmp_meta = os.path.join(
            directory, f"{_TMP_PREFIX}{os.getpid()}-{key.digest}{_META_SUFFIX}"
        )

        def write_payload() -> None:
            if self._chaos is not None:
                self._chaos.before_payload_write()
            handle.dump(value, tmp_payload)

        try:
            self._io_retry(write_payload, "write", tmp_payload)
            checksum = _sha256_file(tmp_payload)
            size = os.path.getsize(tmp_payload)
            if self._chaos is not None:
                # Torn-write / checksum-corruption seam: mangles the temp
                # payload *after* its checksum went into the meta — the
                # on-disk state a real torn write leaves behind.
                self._chaos.mangle_written_payload(tmp_payload)
            meta = {
                "meta_schema_version": META_SCHEMA_VERSION,
                "schema_version": handle.schema_version,
                "checksum": checksum,
                "size_bytes": size,
                "kind": key.kind,
                "digest": key.digest,
                "key_payload": key.payload,
            }
            with open(tmp_meta, "w", encoding="utf-8") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp_payload, self.payload_path(key, handle))
            os.replace(tmp_meta, self.meta_path(key))
        finally:
            for leftover in (tmp_payload, tmp_meta):
                try:
                    os.remove(leftover)
                except OSError:
                    pass
        self.run_stats.bytes_written += size
        if self.registry is not None:
            self.registry.gauge("store_bytes").inc(float(size))
        self.tracer.emit(
            "store.put", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12], "bytes": size},
        )
        return self.payload_path(key, handle)

    def get_or_create(
        self,
        key: ArtifactKey,
        handle: ArtifactHandle,
        build: Callable[[], Any],
    ) -> Any:
        """Verified read, else ``build()`` + publish + return."""
        found, value = self.lookup(key, handle)
        if found:
            return value
        value = build()
        self.put(key, value, handle)
        return value

    def discard(self, key: ArtifactKey, handle: ArtifactHandle) -> None:
        """Remove an entry if present; never raises.

        This is the GC hook for transient artifacts with a natural end
        of life — a cell's checkpoint once the cell has completed, for
        example — as opposed to :meth:`gc`'s policy-driven sweeps.
        """
        self._memory.pop(self._memory_key(key), None)
        for path in (self.meta_path(key), self.payload_path(key, handle)):
            try:
                os.remove(path)
            except OSError:
                pass

    # ----------------------------------------------------------- operations
    def stats(self) -> StoreStats:
        return self.run_stats

    def disk_stats(self) -> List[KindStats]:
        """Entry count and byte footprint per kind, sorted by kind."""
        per_kind: Dict[str, List[int]] = {}
        for directory, _, filenames in os.walk(self.root):
            kind = os.path.relpath(directory, self.root).replace(os.sep, "/")
            for name in filenames:
                if name.startswith(_TMP_PREFIX):
                    continue
                size = os.path.getsize(os.path.join(directory, name))
                bucket = per_kind.setdefault(kind, [0, 0])
                if name.endswith(_META_SUFFIX):
                    bucket[0] += 1
                bucket[1] += size
        return [
            KindStats(kind=kind, entries=counts[0], bytes=counts[1])
            for kind, counts in sorted(per_kind.items())
            if counts[1] > 0
        ]

    def gc(
        self,
        max_age_s: Optional[float] = None,
        orphan_grace_s: float = 60.0,
    ) -> int:
        """Reap temp droppings and orphans (always), old entries (opt-in).

        Three classes of garbage:

        * ``tmp-*`` files — a writer died before any rename landed;
        * **orphaned payloads** — a writer died *between* the two
          ``os.replace`` calls in ``put``: the payload is published but
          its meta never landed, so no reader will ever trust it.
          ``orphan_grace_s`` of mtime age guards the race against a
          healthy concurrent ``put`` whose meta rename is milliseconds
          away (pass 0 in tests for immediate reaping);
        * entries older than ``max_age_s`` (operator policy, opt-in —
          correctness comes from content addressing, not ageing).

        Returns the number of files removed.
        """
        removed = 0
        now_s = time.time()  # repro-lint: ignore[DET003]
        for directory, _, filenames in os.walk(self.root):
            present = set(filenames)
            for name in filenames:
                path = os.path.join(directory, name)
                if name.startswith(_TMP_PREFIX):
                    removed += self._try_remove(path)
                    continue
                if not name.endswith(_META_SUFFIX):
                    # Digests are hex, so the first dot starts the suffix.
                    digest = name.split(".", 1)[0]
                    if digest + _META_SUFFIX not in present:
                        try:
                            age_s = now_s - os.path.getmtime(path)
                        except OSError:
                            continue
                        if age_s >= orphan_grace_s:
                            removed += self._try_remove(path)
                            continue
                if max_age_s is not None:
                    try:
                        age_s = now_s - os.path.getmtime(path)
                    except OSError:
                        continue
                    if age_s > max_age_s:
                        removed += self._try_remove(path)
        return removed

    def clear(self) -> int:
        """Delete every entry (and temp file); returns files removed."""
        removed = 0
        for directory, _, filenames in os.walk(self.root, topdown=False):
            for name in filenames:
                removed += self._try_remove(os.path.join(directory, name))
            if directory != self.root:
                try:
                    os.rmdir(directory)
                except OSError:
                    pass
        return removed

    @staticmethod
    def _try_remove(path: str) -> int:
        try:
            os.remove(path)
        except OSError:
            return 0
        return 1
