"""The content-addressed artifact store.

Layout — one directory per kind, two files per entry::

    <root>/
      il-dataset/
        <digest>.npz            payload (handle-defined format)
        <digest>.meta.json      entry metadata, written LAST
      cell/main_mixed/
        <digest>.pkl
        <digest>.meta.json

The meta file records the payload checksum (SHA-256 of the bytes on
disk), the handle schema version, the payload size, and the full key
payload (so ``meta.json`` answers "what produced this?").  Because the
meta is renamed into place *after* the payload, its presence implies a
complete payload: a writer killed mid-``put`` leaves at most a
``tmp-*`` file (reaped by :meth:`ArtifactStore.gc`) and never a
half-entry that a reader could trust.

Reads verify before trusting: a missing/unparsable meta, a schema-version
mismatch, a checksum mismatch, or a handle that fails to deserialize all
**evict** the entry (both files deleted, ``store_evicted_corrupt_total``
incremented by reason) and report a miss — corrupted or stale entries are
recomputed, never returned.

Concurrent writers of the same digest are benign: both compute identical
bytes (keys are content addresses), and ``os.replace`` is atomic, so the
loser simply overwrites the winner with the same content.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, RingTracer
from repro.store.handles import ArtifactHandle
from repro.store.keys import ArtifactKey

__all__ = ["ArtifactStore", "KindStats", "StoreStats"]

_META_SUFFIX = ".meta.json"
_TMP_PREFIX = "tmp-"

#: Schema of the ``meta.json`` envelope itself (not the payloads).
META_SCHEMA_VERSION = 1


@dataclass
class StoreStats:
    """Per-process lookup statistics (reset with the store instance)."""

    hits: int = 0
    misses: int = 0
    evicted_corrupt: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evicted_corrupt": self.evicted_corrupt,
            "bytes_written": self.bytes_written,
        }


@dataclass(frozen=True)
class KindStats:
    """On-disk footprint of one artifact kind (for ``cache stats``)."""

    kind: str
    entries: int
    bytes: int


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """Content-addressed artifact cache rooted at one directory.

    Thread-unsafe by design (one store per process); *process*-safe for
    concurrent writers because every mutation is a same-directory atomic
    rename and entries are immutable once written.
    """

    def __init__(
        self,
        root: str,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Union[RingTracer, NullTracer]] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.registry = registry
        self.tracer: Union[RingTracer, NullTracer] = (
            tracer if tracer is not None else NULL_TRACER
        )
        self.run_stats = StoreStats()
        # Relative timestamps for store trace events; elapsed wall time is
        # observability metadata, never a simulation result.
        self._t0_s = time.monotonic()  # repro-lint: ignore[DET003]

    # ---------------------------------------------------------------- paths
    def kind_dir(self, kind: str) -> str:
        return os.path.join(self.root, *kind.split("/"))

    def payload_path(self, key: ArtifactKey, handle: ArtifactHandle) -> str:
        return os.path.join(self.kind_dir(key.kind), key.digest + handle.suffix)

    def meta_path(self, key: ArtifactKey) -> str:
        return os.path.join(self.kind_dir(key.kind), key.digest + _META_SUFFIX)

    # -------------------------------------------------------------- metrics
    def _now_s(self) -> float:
        return time.monotonic() - self._t0_s  # repro-lint: ignore[DET003]

    def _count_hit(self, key: ArtifactKey) -> None:
        self.run_stats.hits += 1
        if self.registry is not None:
            self.registry.counter("store_hits_total", kind=key.kind).inc()
        self.tracer.emit(
            "store.hit", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12]},
        )

    def _count_miss(self, key: ArtifactKey) -> None:
        self.run_stats.misses += 1
        if self.registry is not None:
            self.registry.counter("store_misses_total", kind=key.kind).inc()
        self.tracer.emit(
            "store.miss", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12]},
        )

    def _evict(self, key: ArtifactKey, handle: ArtifactHandle, reason: str) -> None:
        """Delete a bad entry and account for it; never raises."""
        self.run_stats.evicted_corrupt += 1
        if self.registry is not None:
            self.registry.counter(
                "store_evicted_corrupt_total", reason=reason
            ).inc()
        self.tracer.emit(
            "store.evict", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12], "reason": reason},
        )
        for path in (self.meta_path(key), self.payload_path(key, handle)):
            try:
                os.remove(path)
            except OSError:
                pass

    # ---------------------------------------------------------------- reads
    def lookup(
        self, key: ArtifactKey, handle: ArtifactHandle
    ) -> Tuple[bool, Any]:
        """``(found, value)`` — distinguishes a miss from a stored ``None``.

        Verifies meta parse, schema version, and payload checksum before
        deserializing; any failure evicts the entry and reports a miss.
        """
        meta_path = self.meta_path(key)
        payload_path = self.payload_path(key, handle)
        if not os.path.exists(meta_path):
            self._count_miss(key)
            return (False, None)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            self._evict(key, handle, reason="meta")
            self._count_miss(key)
            return (False, None)
        if (
            meta.get("meta_schema_version") != META_SCHEMA_VERSION
            or meta.get("schema_version") != handle.schema_version
        ):
            self._evict(key, handle, reason="schema")
            self._count_miss(key)
            return (False, None)
        if (
            not os.path.exists(payload_path)
            or _sha256_file(payload_path) != meta.get("checksum")
        ):
            self._evict(key, handle, reason="checksum")
            self._count_miss(key)
            return (False, None)
        try:
            value = handle.load(payload_path)
        except Exception:
            # A checksum-valid payload the handle cannot parse is stale
            # (e.g. written by newer code) or corrupt-at-birth; recompute.
            self._evict(key, handle, reason="load")
            self._count_miss(key)
            return (False, None)
        self._count_hit(key)
        return (True, value)

    def get(self, key: ArtifactKey, handle: ArtifactHandle) -> Any:
        """The stored value, or raise ``KeyError`` on a miss."""
        found, value = self.lookup(key, handle)
        if not found:
            raise KeyError(f"no {key.kind} entry for digest {key.digest}")
        return value

    def contains(self, key: ArtifactKey, handle: ArtifactHandle) -> bool:
        """Verified membership (counts as a hit or miss like ``lookup``)."""
        found, _ = self.lookup(key, handle)
        return found

    # --------------------------------------------------------------- writes
    def put(self, key: ArtifactKey, value: Any, handle: ArtifactHandle) -> str:
        """Persist ``value`` under ``key``; returns the payload path.

        Write protocol: dump to a temp file in the entry's own directory
        (same filesystem, and suffix-preserving because ``np.savez``
        appends ``.npz`` to alien extensions), checksum the temp bytes,
        rename payload into place, then rename meta into place.  Meta
        last: its presence certifies a complete payload.
        """
        directory = self.kind_dir(key.kind)
        os.makedirs(directory, exist_ok=True)
        tmp_payload = os.path.join(
            directory, f"{_TMP_PREFIX}{os.getpid()}-{key.digest}{handle.suffix}"
        )
        tmp_meta = os.path.join(
            directory, f"{_TMP_PREFIX}{os.getpid()}-{key.digest}{_META_SUFFIX}"
        )
        try:
            handle.dump(value, tmp_payload)
            checksum = _sha256_file(tmp_payload)
            size = os.path.getsize(tmp_payload)
            meta = {
                "meta_schema_version": META_SCHEMA_VERSION,
                "schema_version": handle.schema_version,
                "checksum": checksum,
                "size_bytes": size,
                "kind": key.kind,
                "digest": key.digest,
                "key_payload": key.payload,
            }
            with open(tmp_meta, "w", encoding="utf-8") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp_payload, self.payload_path(key, handle))
            os.replace(tmp_meta, self.meta_path(key))
        finally:
            for leftover in (tmp_payload, tmp_meta):
                try:
                    os.remove(leftover)
                except OSError:
                    pass
        self.run_stats.bytes_written += size
        if self.registry is not None:
            self.registry.gauge("store_bytes").inc(float(size))
        self.tracer.emit(
            "store.put", ts_s=self._now_s(), cat="store",
            args={"kind": key.kind, "digest": key.digest[:12], "bytes": size},
        )
        return self.payload_path(key, handle)

    def get_or_create(
        self,
        key: ArtifactKey,
        handle: ArtifactHandle,
        build: Callable[[], Any],
    ) -> Any:
        """Verified read, else ``build()`` + publish + return."""
        found, value = self.lookup(key, handle)
        if found:
            return value
        value = build()
        self.put(key, value, handle)
        return value

    # ----------------------------------------------------------- operations
    def stats(self) -> StoreStats:
        return self.run_stats

    def disk_stats(self) -> List[KindStats]:
        """Entry count and byte footprint per kind, sorted by kind."""
        per_kind: Dict[str, List[int]] = {}
        for directory, _, filenames in os.walk(self.root):
            kind = os.path.relpath(directory, self.root).replace(os.sep, "/")
            for name in filenames:
                if name.startswith(_TMP_PREFIX):
                    continue
                size = os.path.getsize(os.path.join(directory, name))
                bucket = per_kind.setdefault(kind, [0, 0])
                if name.endswith(_META_SUFFIX):
                    bucket[0] += 1
                bucket[1] += size
        return [
            KindStats(kind=kind, entries=counts[0], bytes=counts[1])
            for kind, counts in sorted(per_kind.items())
            if counts[1] > 0
        ]

    def gc(self, max_age_s: Optional[float] = None) -> int:
        """Reap temp droppings (always) and old entries (opt-in).

        ``max_age_s`` measures wall-clock file age; ageing out cache
        entries is an operator policy, not a correctness mechanism —
        correctness comes from content addressing.  Returns the number of
        files removed.
        """
        removed = 0
        now_s = time.time()  # repro-lint: ignore[DET003]
        for directory, _, filenames in os.walk(self.root):
            for name in filenames:
                path = os.path.join(directory, name)
                if name.startswith(_TMP_PREFIX):
                    removed += self._try_remove(path)
                elif max_age_s is not None:
                    try:
                        age_s = now_s - os.path.getmtime(path)
                    except OSError:
                        continue
                    if age_s > max_age_s:
                        removed += self._try_remove(path)
        return removed

    def clear(self) -> int:
        """Delete every entry (and temp file); returns files removed."""
        removed = 0
        for directory, _, filenames in os.walk(self.root, topdown=False):
            for name in filenames:
                removed += self._try_remove(os.path.join(directory, name))
            if directory != self.root:
                try:
                    os.rmdir(directory)
                except OSError:
                    pass
        return removed

    @staticmethod
    def _try_remove(path: str) -> int:
        try:
            os.remove(path)
        except OSError:
            return 0
        return 1
