"""Content-addressed artifact store (design-time caching substrate).

The expensive design-time pipeline — oracle trace collection, the QoS
sweep, IL training — produces artifacts every evaluation section reuses.
This package caches them *by what produced them*: keys
(:mod:`repro.store.keys`) hash the producing config + platform + seed +
code version through the manifest's canonical-JSON machinery, handles
(:mod:`repro.store.handles`) define per-kind formats, and the store
(:mod:`repro.store.store`) persists entries atomically and verifies them
on read.  There is no in-place invalidation: a changed ingredient changes
the key, and stale entries simply stop being addressed.

Operator surface: ``python -m repro.cli cache stats|gc|clear`` and the
``--cache-dir`` / ``--no-cache`` flags; see ``docs/caching.md``.
"""

from repro.store.handles import (
    ArtifactHandle,
    CellResultHandle,
    CheckpointHandle,
    ILDatasetHandle,
    ModelHandle,
    QTableHandle,
    TraceGridHandle,
    handle_for_kind,
)
from repro.store.keys import (
    STORE_CODE_VERSION,
    ArtifactKey,
    cell_artifact_key,
    fault_env_signature,
    platform_fingerprint,
)
from repro.store.store import ArtifactStore, KindStats, StoreStats

__all__ = [
    "ArtifactHandle",
    "ArtifactKey",
    "ArtifactStore",
    "CellResultHandle",
    "CheckpointHandle",
    "ILDatasetHandle",
    "KindStats",
    "ModelHandle",
    "QTableHandle",
    "STORE_CODE_VERSION",
    "StoreStats",
    "TraceGridHandle",
    "cell_artifact_key",
    "fault_env_signature",
    "handle_for_kind",
    "platform_fingerprint",
]
