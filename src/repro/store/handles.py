"""Typed artifact handles: how each artifact class is (de)serialized.

A handle pairs a *kind* with a file format and a schema version.  The
store itself (:mod:`repro.store.store`) only moves opaque bytes around;
handles are the typed boundary on top: :class:`TraceGridHandle` for oracle
trace grids, :class:`ILDatasetHandle` for IL training datasets,
:class:`ModelHandle` for trained MLPs, :class:`QTableHandle` for RL
Q-tables, and :class:`CellResultHandle` for per-cell experiment results.

Bumping a handle's ``schema_version`` invalidates every stored entry of
that kind (the version is checked against the entry's ``meta.json`` on
read), which is the upgrade path when a format changes: old entries are
evicted and recomputed, never mis-parsed.

Trace grids are stored as canonical JSON rather than pickle: Python's
``float`` repr round-trips exactly through JSON, so the handle is
bit-exact, and the file stays greppable for operators inspecting a cache.
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Dict

from repro.il.dataset import ILDataset
from repro.il.traces import TraceGrid, TracePoint, TraceScenario
from repro.nn.layers import Sequential
from repro.nn.serialize import load_model, save_model
from repro.rl.qtable import QTable

__all__ = [
    "ArtifactHandle",
    "CellResultHandle",
    "CheckpointHandle",
    "ILDatasetHandle",
    "ModelHandle",
    "QTableHandle",
    "TraceGridHandle",
    "handle_for_kind",
]


class ArtifactHandle:
    """Serialization contract for one artifact kind.

    Subclasses set ``kind`` (default directory / key namespace),
    ``schema_version`` (bump on format change), and ``suffix`` (payload
    file extension — the store's temp files preserve it, which matters
    because ``np.savez`` appends ``.npz`` to alien extensions), and
    implement :meth:`dump` / :meth:`load`.
    """

    kind: str = "artifact"
    schema_version: int = 1
    suffix: str = ".bin"

    def dump(self, obj: Any, path: str) -> None:
        raise NotImplementedError

    def load(self, path: str) -> Any:
        raise NotImplementedError


class TraceGridHandle(ArtifactHandle):
    """Oracle trace grid as canonical JSON (exact float round-trip)."""

    kind = "trace-grid"
    schema_version = 1
    suffix = ".json"

    def dump(self, obj: Any, path: str) -> None:
        grid: TraceGrid = obj
        payload: Dict[str, Any] = {
            "scenario": {
                "aoi_app": grid.scenario.aoi_app,
                "background": [
                    [core, app] for core, app in grid.scenario.background
                ],
            },
            "vf_grid": {
                name: list(freqs) for name, freqs in sorted(grid.vf_grid.items())
            },
            "points": [
                {
                    "aoi_core": p.aoi_core,
                    "f_hz": [[name, f] for name, f in p.f_hz],
                    "aoi_ips": p.aoi_ips,
                    "aoi_l2d_rate": p.aoi_l2d_rate,
                    "peak_temp_c": p.peak_temp_c,
                }
                for _, p in sorted(grid.points.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)

    def load(self, path: str) -> TraceGrid:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        scenario = TraceScenario(
            aoi_app=str(payload["scenario"]["aoi_app"]),
            background=tuple(
                (int(core), str(app))
                for core, app in payload["scenario"]["background"]
            ),
        )
        grid = TraceGrid(
            scenario=scenario,
            vf_grid={
                str(name): [float(f) for f in freqs]
                for name, freqs in payload["vf_grid"].items()
            },
        )
        for raw in payload["points"]:
            grid.add(
                TracePoint(
                    aoi_core=int(raw["aoi_core"]),
                    f_hz=tuple(
                        (str(name), float(f)) for name, f in raw["f_hz"]
                    ),
                    aoi_ips=float(raw["aoi_ips"]),
                    aoi_l2d_rate=float(raw["aoi_l2d_rate"]),
                    peak_temp_c=float(raw["peak_temp_c"]),
                )
            )
        return grid


class ILDatasetHandle(ArtifactHandle):
    """IL training dataset via :meth:`ILDataset.save` / ``load``."""

    kind = "il-dataset"
    schema_version = 1
    suffix = ".npz"

    def dump(self, obj: Any, path: str) -> None:
        dataset: ILDataset = obj
        dataset.save(path)

    def load(self, path: str) -> ILDataset:
        return ILDataset.load(path)


class ModelHandle(ArtifactHandle):
    """Trained MLP via :mod:`repro.nn.serialize`."""

    kind = "model"
    schema_version = 1
    suffix = ".npz"

    def dump(self, obj: Any, path: str) -> None:
        model: Sequential = obj
        save_model(model, path)

    def load(self, path: str) -> Sequential:
        return load_model(path)


class QTableHandle(ArtifactHandle):
    """RL Q-table via :meth:`QTable.save` / ``load``."""

    kind = "qtable"
    schema_version = 1
    suffix = ".npz"

    def dump(self, obj: Any, path: str) -> None:
        table: QTable = obj
        table.save(path)

    def load(self, path: str) -> QTable:
        return QTable.load(path)


class CellResultHandle(ArtifactHandle):
    """Per-cell experiment result (any picklable value).

    Cell results are arbitrary driver-defined dataclasses
    (:class:`~repro.metrics.summary.RunSummary`,
    :class:`~repro.experiments.resilience.ResilienceRow`, ...), so the
    payload is a pickle.  The store's checksum guards the bytes; the
    producing code version in the key guards the schema.
    """

    kind = "cell"
    schema_version = 1
    suffix = ".pkl"

    def dump(self, obj: Any, path: str) -> None:
        with open(path, "wb") as handle:
            pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def load(self, path: str) -> Any:
        with open(path, "rb") as handle:
            return pickle.load(handle)


class CheckpointHandle(ArtifactHandle):
    """Mid-run simulator checkpoint envelope.

    The payload is a pickled :class:`repro.sim.checkpoint.SimCheckpoint`
    — itself a checksummed wrapper around the pickled simulator.  Two
    integrity layers stack deliberately: the store's checksum guards the
    artifact bytes on disk (verify-on-read evicts torn files), and the
    envelope's inner checksum is re-verified by
    :func:`~repro.sim.checkpoint.restore_simulator` so even a checkpoint
    that bypassed the store (direct file hand-off) cannot resume from
    corrupted state.
    """

    kind = "checkpoint"
    schema_version = 1
    suffix = ".ckpt.pkl"

    def dump(self, obj: Any, path: str) -> None:
        with open(path, "wb") as handle:
            pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def load(self, path: str) -> Any:
        with open(path, "rb") as handle:
            return pickle.load(handle)


def handle_for_kind(kind: str) -> ArtifactHandle:
    """The default handle for a kind string (``cell/*`` maps to cells)."""
    if kind.startswith("cell"):
        return CellResultHandle()
    for cls in (
        TraceGridHandle,
        ILDatasetHandle,
        ModelHandle,
        QTableHandle,
        CheckpointHandle,
    ):
        if cls.kind == kind:
            return cls()
    raise KeyError(f"no artifact handle registered for kind {kind!r}")
