"""Content-addressed artifact keys.

An :class:`ArtifactKey` names one artifact by **what produced it**, not by
where it lives: the key digest is SHA-256 over a canonical serialization
(:func:`repro.obs.manifest.canonical_json` — the same machinery the run
manifests hash configs with) of

* the artifact *kind* (``il-dataset``, ``trace-grid``, ``cell/main_mixed``,
  ...),
* the producing configuration (any dataclass / dict / scalar tree),
* the platform fingerprint (the full static hardware description),
* the producing seed,
* a *code version* string, bumped when the producing code changes
  semantics without changing its config shape.

Two runs that would compute the same artifact therefore derive the same
digest, and any change to any ingredient — one more scenario, a different
QoS fraction, a new platform, a code bump — derives a different one, which
is the entire invalidation story of :mod:`repro.store`: nothing is ever
updated in place, stale entries are simply never looked up again.

Grid-cell keys additionally fold in the fault-injection environment
(``REPRO_FAULTS`` / ``REPRO_FAULT_SEED``): a cell simulated under a fault
plan is a *different* artifact from the fault-free one, so warm caches can
never leak results across plans (:func:`cell_artifact_key`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.manifest import canonical_json

__all__ = [
    "STORE_CODE_VERSION",
    "ArtifactKey",
    "cell_artifact_key",
    "fault_env_signature",
    "platform_fingerprint",
]

#: Global code-version stamp folded into every key.  Bump when artifact
#: *semantics* change without a config-shape change (e.g. a bugfix in the
#: trace collector): every existing entry becomes unreachable, never stale.
STORE_CODE_VERSION = "1"


def platform_fingerprint(platform: object) -> str:
    """Short stable hash of the full static platform description."""
    digest = hashlib.sha256(
        canonical_json(platform).encode("utf-8")
    ).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class ArtifactKey:
    """One content-addressed artifact name: ``kind`` plus a SHA-256 digest.

    ``payload`` is the exact dict the digest was computed over — persisted
    into the entry's ``meta.json`` so an operator can always answer "what
    produced this file?" without reverse-engineering the hash.
    """

    kind: str
    digest: str
    payload: Dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.kind or self.kind.startswith("/") or ".." in self.kind:
            raise ValueError(f"bad artifact kind {self.kind!r}")

    @classmethod
    def create(
        cls,
        kind: str,
        *,
        config: object,
        platform: object = None,
        seed: Optional[int] = None,
        code_version: str = STORE_CODE_VERSION,
        extra: Optional[Dict[str, object]] = None,
    ) -> "ArtifactKey":
        """Derive the key for ``kind`` from its producing ingredients.

        Args:
            kind: Artifact class name; may contain ``/`` to namespace
                (``cell/main_mixed``).
            config: The producing configuration; anything
                :func:`~repro.obs.manifest.canonical_json` can serialize.
            platform: The platform description the artifact was computed
                on; folded in as :func:`platform_fingerprint`.
            seed: The producing seed (``None`` when the artifact is
                seed-free).
            code_version: Override of :data:`STORE_CODE_VERSION`.
            extra: Additional key ingredients (e.g. the fault environment).
        """
        payload: Dict[str, object] = {
            "kind": kind,
            "code_version": code_version,
            "config": config,
            "platform": (
                platform_fingerprint(platform) if platform is not None else None
            ),
            "seed": seed,
        }
        if extra:
            payload["extra"] = dict(extra)
        canonical = canonical_json(payload)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        # Keep the pure-JSON view (dataclasses flattened) so meta.json
        # records exactly the bytes the digest was computed over.
        view: Dict[str, object] = json.loads(canonical)
        return cls(kind=kind, digest=digest, payload=view)


def fault_env_signature() -> Dict[str, str]:
    """The fault- and chaos-injection environment as a key ingredient.

    Reads the same ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` carrier the run
    engine resolves plans from, so a cached cell result can never be served
    into a run with a different fault plan.  The chaos plan
    (``REPRO_CHAOS`` / ``REPRO_CHAOS_SEED``) folds in for the same reason:
    chaos must not change *results*, but a chaos grid and a chaos-free
    grid are separate experiments and must never share cache entries —
    the bit-identity assertion between them is only meaningful if each
    computed its own.
    """
    # Imported lazily: keys must stay importable without the faults/chaos
    # packages having been initialized (and vice versa).
    from repro.chaos import CHAOS_ENV, CHAOS_SEED_ENV
    from repro.faults import FAULT_SEED_ENV, FAULTS_ENV

    return {
        "faults": os.environ.get(FAULTS_ENV, ""),
        "fault_seed": os.environ.get(FAULT_SEED_ENV, ""),
        "chaos": os.environ.get(CHAOS_ENV, ""),
        "chaos_seed": os.environ.get(CHAOS_SEED_ENV, ""),
    }


def cell_artifact_key(
    experiment: str,
    cell: object,
    *,
    config: object = None,
    assets_config: object = None,
    platform: object = None,
    seed: Optional[int] = None,
) -> ArtifactKey:
    """Key for one grid cell's result (kind ``cell/<experiment>``).

    Folds the cell coordinates, the experiment config, the asset (training)
    config the cell's technique was built from, the platform, the seed, and
    the fault-injection environment — every ingredient a cell result can
    depend on.  Drivers call this once per cell; the fork-pool supervisor
    calls it again worker-side when publishing, deriving the identical
    digest.
    """
    return ArtifactKey.create(
        f"cell/{experiment}",
        config={"cell": cell, "experiment": config},
        platform=platform,
        seed=seed,
        extra={
            "assets": assets_config,
            "env": fault_env_signature(),
        },
    )
