"""Batched lockstep execution of whole experiment grids.

The paper's evaluation is grid-shaped: sweeps over techniques, coolings,
arrival rates, and repetitions, where every cell runs the *same* simulator
pipeline on the *same* platform with different workloads and seeds.  The
scalar kernel advances one cell per process; this module advances N cells
per tick with shared NumPy operators:

* **Thermal**: the RC states of all cells live in one ``(N, nodes)`` array
  advanced by :meth:`~repro.thermal.rc.RCThermalNetwork.step_batch` with
  one shared fused matrix-exponential operator per ``(operator, dt)`` pair.
* **Power**: :meth:`~repro.power.model.PowerModel.compute_batch` evaluates
  every cell's per-block power in one broadcast expression sequence.
* **Processes**: the running processes of all cells are flattened into
  structure-of-arrays slot vectors (sorted by ``(cell, pid)``, the scalar
  accumulation order) so execution, perf-counter EMA, and QoS accounting
  are a handful of elementwise ops per tick.

Bit-identity contract
---------------------
``BatchSimulator`` is not an approximation: for every eligible cell the
results (trace series, process accounting, DTM/VF history, sensor noise
stream) are **bitwise identical** to running the scalar
:meth:`~repro.sim.kernel.Simulator.run_until_complete`.  This holds
because every floating-point expression is evaluated with the same
operand values, operation order, and element-wise kernels as the scalar
path (see the PR 1 golden-trace harness and
``tests/property/test_batch_equivalence.py``).

Structural events — arrivals, finishes, GTS migrations — drop out of the
lockstep back onto the real per-cell objects: admissions call the cell's
own ``_admit_arrivals``, balance passes call the cell's own bound
callback, and the slot arrays are rebuilt from the authoritative process
objects on the next tick.  Cells whose configuration the batch cannot
replicate exactly (fault plans, observability hooks, custom controllers)
are rejected by :func:`batch_ineligibility` and must run on the scalar
kernel — the experiment layer routes them there automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.apps.model import AppModel
from repro.governors.gts import GTSScheduler
from repro.governors.linux import (
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.platform import Platform, VFLevel
from repro.platform.hikey import BIG, LITTLE
from repro.sim.kernel import SimulationTimeout, Simulator, default_placement
from repro.sim.process import Process
from repro.thermal.sensor import TemperatureSensor
from repro.utils.floatcmp import is_exactly, is_zero
from repro.utils.hotpath import hot_path

#: Controller kind codes (per (slot, cell) in ``_ctl_kinds``).
_KIND_GTS = 0
_KIND_ONDEMAND = 1
_KIND_POWERSAVE = 2
_KIND_PERFORMANCE = 3

_NEG_INF = float("-inf")


class BatchCompatibilityError(ValueError):
    """The given cells cannot share one lockstep batch."""


def _classify_controller(callback: Callable[[Simulator], None]) -> Optional[int]:
    """Kind code for a recognized controller callback, else ``None``."""
    if isinstance(callback, OndemandGovernor):
        return _KIND_ONDEMAND
    if isinstance(callback, PowersaveGovernor):
        return _KIND_POWERSAVE
    if isinstance(callback, PerformanceGovernor):
        return _KIND_PERFORMANCE
    func = getattr(callback, "__func__", None)
    if func is GTSScheduler.balance:
        return _KIND_GTS
    return None


def batch_ineligibility(sim: Simulator) -> Optional[str]:
    """Why ``sim`` cannot run on the batched backend (``None`` = eligible).

    The batched kernel replicates the scalar pipeline exactly for the
    standard configuration: no fault runtime, no observability hooks, the
    plain :class:`~repro.thermal.sensor.TemperatureSensor`, and only the
    recognized placement policies and controllers (default placement or
    GTS placement; ondemand / powersave / performance governors and the
    GTS balance pass).  Anything else must run on the scalar kernel.
    """
    if sim.faults is not None:
        return "fault plan attached"
    if sim.obs is not None:
        return "observability enabled"
    if sim._sanitize_enabled:
        return "sanitizer enabled"
    if type(sim.sensor) is not TemperatureSensor:
        return "non-standard temperature sensor"
    if not is_zero(sim.now_s) or sim._running or sim.trace.times:
        return "simulation already started"
    if not is_zero(sim._pending_overhead_s):
        return "pending management overhead"
    placement = sim.placement_policy
    placement_func = getattr(placement, "__func__", None)
    if placement is not default_placement and placement_func is not GTSScheduler.place:
        return "custom placement policy"
    has_gts = placement_func is GTSScheduler.place
    for controller in sim._controllers:
        kind = _classify_controller(controller.callback)
        if kind is None:
            return f"unrecognized controller {controller.name!r}"
        has_gts = has_gts or kind == _KIND_GTS
    if has_gts:
        try:
            sim.platform.cluster(BIG)
            sim.platform.cluster(LITTLE)
        except KeyError:
            return "GTS controller on a platform without big.LITTLE clusters"
    return None


def batch_compatibility(ref: Simulator, sim: Simulator) -> Optional[str]:
    """Why ``sim`` cannot share a lockstep batch with ``ref`` (``None`` = can).

    Both cells must already be individually eligible per
    :func:`batch_ineligibility`; this checks the *pairwise* requirements —
    shared platform object, identical kernel config, thermal layout,
    power-model coefficients, sensor parameters, and controller / DTM
    schedules.  Controller *kinds* may differ, so cells running different
    governors still batch together.  Grid schedulers use this to group a
    heterogeneous cell list into maximal compatible batches.
    """
    if sim.platform is not ref.platform:
        # Identity, not equality: the batch kernel indexes one shared set
        # of per-platform tables, and registry builds are fresh objects
        # (share one AssetStore.platform per cell group to batch).
        if sim.platform.name != ref.platform.name:
            return (
                f"different platform ({sim.platform.name!r} vs "
                f"{ref.platform.name!r})"
            )
        return f"different platform object (both named {ref.platform.name!r})"
    if sim.config != ref.config:
        return "different SimConfig"
    if sim.thermal.node_names != ref.thermal.node_names:
        return "different thermal node layout"
    if not is_exactly(sim.thermal.ambient_temp_c, ref.thermal.ambient_temp_c):
        return "different ambient temperature"
    if not _power_models_equal(sim, ref):
        return "different power model"
    if not _sensors_equal(sim, ref):
        return "different sensor parameters"
    if len(sim._controllers) != len(ref._controllers):
        return "different controller count"
    for ctl, ref_ctl in zip(sim._controllers, ref._controllers):
        if not is_exactly(ctl.period_s, ref_ctl.period_s) or not is_exactly(
            ctl.next_due_s, ref_ctl.next_due_s
        ):
            return "different controller schedule"
    if not is_exactly(sim._dtm_next_check_s, ref._dtm_next_check_s):
        return "different DTM schedule"
    return None


def _power_models_equal(sim: Simulator, ref: Simulator) -> bool:
    a, b = sim.power_model, ref.power_model
    return (
        a.platform is b.platform
        and is_exactly(a.leakage_temp_coeff, b.leakage_temp_coeff)
        and is_exactly(a.leakage_ref_c, b.leakage_ref_c)
        and is_exactly(a.uncore_base_w, b.uncore_base_w)
        and is_exactly(a.uncore_activity_w, b.uncore_activity_w)
        and is_exactly(a.soc_rest_w, b.soc_rest_w)
    )


def _sensors_equal(sim: Simulator, ref: Simulator) -> bool:
    a, b = sim.sensor, ref.sensor
    return (
        a.nodes == b.nodes
        and is_exactly(a.sample_period_s, b.sample_period_s)
        and is_exactly(a.quantization_c, b.quantization_c)
        and is_exactly(a.noise_std_c, b.noise_std_c)
    )


@dataclass
class _AppTable:
    """Per-application phase/parameter tables (platform-cluster order).

    Row ``l`` of each 2-D array holds the per-phase effective parameters on
    cluster ``l``, computed with the exact expressions
    :meth:`~repro.apps.model.AppModel.params_at` uses, so gathered values
    match the scalar lookups bit-for-bit.
    """

    app: AppModel
    n_phases: int
    cycle_instructions: float
    total_instructions: float
    thresholds: np.ndarray  # (n_phases - 1,) cumulative fractions - 1e-12
    cpi: np.ndarray  # (clusters, n_phases)
    mem: np.ndarray
    act: np.ndarray
    l2d: np.ndarray
    coupling: np.ndarray
    ref_hz: np.ndarray
    zero_mem: np.ndarray  # bool: effective_mem_time short-circuits


def _build_app_table(app: AppModel, platform: Platform) -> _AppTable:
    phases = app.phases.phases
    n_ph = len(phases)
    n_cl = len(platform.clusters)
    thresholds = np.empty(max(0, n_ph - 1))
    acc = 0.0
    for i in range(n_ph - 1):
        acc += phases[i].instruction_fraction
        thresholds[i] = acc - 1e-12
    cpi = np.empty((n_cl, n_ph))
    mem = np.empty((n_cl, n_ph))
    act = np.empty((n_cl, n_ph))
    l2d = np.empty((n_cl, n_ph))
    coupling = np.empty((n_cl, n_ph))
    ref_hz = np.empty((n_cl, n_ph))
    zero_mem = np.empty((n_cl, n_ph), dtype=bool)
    for l, cluster in enumerate(platform.clusters):
        base = app.perf[cluster.name]
        for i, phase in enumerate(phases):
            # The exact construction params_at caches per (cluster, index).
            cpi[l, i] = base.cpi * phase.cpi_scale
            mem[l, i] = base.mem_time_per_inst * phase.mem_scale
            act[l, i] = min(1.0, base.activity * phase.activity_scale)
            l2d[l, i] = app.l2d_per_inst * phase.l2d_scale
            coupling[l, i] = base.mem_freq_coupling
            ref_hz[l, i] = base.mem_ref_freq_hz
            zero_mem[l, i] = is_zero(base.mem_freq_coupling) or is_zero(
                float(mem[l, i])
            )
    return _AppTable(
        app=app,
        n_phases=n_ph,
        cycle_instructions=app.phase_cycle_instructions,
        total_instructions=app.total_instructions,
        thresholds=thresholds,
        cpi=cpi,
        mem=mem,
        act=act,
        l2d=l2d,
        coupling=coupling,
        ref_hz=ref_hz,
        zero_mem=zero_mem,
    )


@dataclass
class _TraceSample:
    """One buffered trace tick, replayed per cell at finalization."""

    now_s: float
    sensor_c: np.ndarray  # (N,)
    max_core_c: np.ndarray  # (N,)
    total_w: np.ndarray  # (N,)
    vf_idx: np.ndarray  # (N, clusters)
    theta: np.ndarray  # (N, nodes)
    slot_cell: np.ndarray  # (alive slots,)
    slot_pid: np.ndarray
    slot_core: np.ndarray
    slot_ips: np.ndarray
    active: np.ndarray  # (N,) bool


@dataclass
class _ThermalGroup:
    """Cells sharing one fused thermal operator (same digest).

    ``selector`` is ``None`` only while the group spans every cell of the
    batch (the no-copy fast path); once any member finishes it becomes the
    index array of the remaining active members.
    """

    cells: List[int]
    rep: int
    selector: Optional[np.ndarray]


class BatchSimulator:
    """Advance N compatible simulator cells in lockstep NumPy.

    Cells must be freshly prepared (not yet stepped), individually
    eligible per :func:`batch_ineligibility`, and mutually compatible:
    same platform object, same :class:`~repro.sim.kernel.SimConfig`, same
    thermal node layout, same power-model coefficients, same sensor
    parameters, and the same controller period schedule (controller
    *kinds* may differ per cell, so e.g. GTS/ondemand and GTS/powersave
    cells batch together).  Construction raises
    :class:`BatchCompatibilityError` otherwise.

    :meth:`run` advances all cells until each completes or the shared
    timeout expires, then syncs every cell's full state (thermal, VF, DTM,
    sensor, processes, trace) back onto its ``Simulator`` so downstream
    summarization cannot tell the cell was not run by the scalar kernel.
    """

    def __init__(self, sims: Sequence[Simulator]) -> None:
        if not sims:
            raise BatchCompatibilityError("batch needs at least one cell")
        self._sims: List[Simulator] = list(sims)
        for index, sim in enumerate(self._sims):
            reason = batch_ineligibility(sim)
            if reason is not None:
                raise BatchCompatibilityError(f"cell {index}: {reason}")
        self._check_compatibility()
        self._setup_static()
        self._setup_cells()
        self._dirty = True
        self._rebuild()
        # Lockstep occupancy accounting for the backend metrics.
        self.ticks = 0
        self.active_cell_ticks = 0

    # ------------------------------------------------------------------ setup
    def _check_compatibility(self) -> None:
        first = self._sims[0]
        for index, sim in enumerate(self._sims[1:], start=1):
            reason = batch_compatibility(first, sim)
            if reason is not None:
                raise BatchCompatibilityError(f"cell {index}: {reason}")

    def _setup_static(self) -> None:
        first = self._sims[0]
        platform = first.platform
        config = first.config
        self._platform = platform
        self._power_model = first.power_model
        self._n = len(self._sims)
        self._dt_s = config.dt_s
        self._smoothing = min(1.0, config.dt_s / config.perf_smoothing_tau_s)
        self._contention_coeff = config.contention_coeff
        self._cold_penalty = config.cold_cache_penalty
        self._cold_duration_s = config.cold_cache_duration_s
        self._qos_grace_s = 2 * config.perf_smoothing_tau_s
        self._qos_factor = 1.0 - config.qos_tolerance
        self._trace_period_s = config.trace_sample_period_s

        n_cores = platform.n_cores
        clusters = platform.clusters
        self._n_cores = n_cores
        self._n_clusters = len(clusters)
        self._cluster_names: List[str] = [c.name for c in clusters]
        cluster_index = {c.name: l for l, c in enumerate(clusters)}
        self._cluster_of_core = np.array(
            [cluster_index[platform.cluster_of_core(c).name] for c in range(n_cores)],
            dtype=np.intp,
        )
        self._cluster_cols: List[np.ndarray] = [
            np.array(c.core_ids, dtype=np.intp) for c in clusters
        ]

        # Padded VF lookup tables: (clusters, max levels).
        self._levels: List[List[VFLevel]] = [list(c.vf_table) for c in clusters]
        max_levels = max(len(lv) for lv in self._levels)
        self._freq_pad = np.zeros((self._n_clusters, max_levels))
        self._volt_pad = np.zeros((self._n_clusters, max_levels))
        self._dtm_top = np.zeros(self._n_clusters, dtype=np.int64)
        key_off: List[int] = []
        self._vf_keys: List[Tuple[str, float]] = []
        for l, levels in enumerate(self._levels):
            key_off.append(len(self._vf_keys))
            for j, level in enumerate(levels):
                self._freq_pad[l, j] = level.frequency_hz
                self._volt_pad[l, j] = level.voltage_v
                self._vf_keys.append((clusters[l].name, level.frequency_hz))
            self._freq_pad[l, len(levels):] = levels[-1].frequency_hz
            self._volt_pad[l, len(levels):] = levels[-1].voltage_v
            self._dtm_top[l] = len(levels) - 1
        self._key_off = np.array(key_off, dtype=np.intp)
        self._n_vf_keys = len(self._vf_keys)

        # Precomputed power tables: per-(cluster, level) coefficients built
        # with the same expressions :meth:`PowerModel.compute_batch` would
        # evaluate per tick (``full = dyn * v**2 * f``, ``idle = frac *
        # full``, ``static * v**2``, ``(v / v_max)**2``), so the per-tick
        # power path reduces to flat-table gathers plus the leakage /
        # uncore elementwise tail — entry-wise bit-identical to calling
        # ``compute_batch`` with the gathered voltage/frequency arrays.
        pm = first.power_model
        dyn = np.array([c.dyn_power_coeff for c in clusters])
        idle_frac = np.array([c.idle_power_fraction for c in clusters])
        static = np.array([c.static_power_coeff for c in clusters])
        vmax = np.array([c.vf_table.max_level.voltage_v for c in clusters])
        v2_pad = self._volt_pad**2
        full_pad = dyn[:, None] * v2_pad * self._freq_pad
        self._pw_full = full_pad.ravel()
        self._pw_idle = (idle_frac[:, None] * full_pad).ravel()
        self._pw_stat = (static[:, None] * v2_pad).ravel()
        self._pw_vscale = ((self._volt_pad / vmax[:, None]) ** 2).ravel()
        self._pw_levels = max_levels
        self._core_flat_base = self._cluster_of_core * max_levels
        self._pw_ltc = pm.leakage_temp_coeff
        self._pw_lref = pm.leakage_ref_c
        self._pw_ubase = pm.uncore_base_w
        self._pw_uact = pm.uncore_activity_w
        self._pw_soc = pm.soc_rest_w

        # Thermal layout (identical across cells by the compat check).
        net = first.thermal
        self._n_nodes = net.n_nodes
        self._node_names: List[str] = list(net.node_names)
        self._ambient_c = net.ambient_temp_c
        self._core_node_idx = first._core_node_idx
        self._uncore_node_idx = first._uncore_node_idx
        self._soc_idx = first._soc_rest_idx
        # Column indexers for broadcast fancy indexing (avoids per-tick
        # ``np.ix_`` mesh construction on the hot path).
        self._core_cols = np.asarray(self._core_node_idx, dtype=np.intp)
        self._uncore_cols = np.asarray(self._uncore_node_idx, dtype=np.intp)
        self._zone_idx = net.indices_of(first._zone_nodes)

        # DTM configuration.
        dtm = platform.dtm
        self._dtm_trigger_c = dtm.trigger_temp_c
        self._dtm_release_c = dtm.release_temp_c
        self._dtm_period_s = dtm.check_period_s
        self._dtm_next_s = first._dtm_next_check_s

        # Sensor configuration (shared cadence, per-cell noise streams).
        sensor = first.sensor
        self._sensor_period_s = sensor.sample_period_s
        self._sensor_quant_c = sensor.quantization_c
        self._sensor_noise_c = sensor.noise_std_c
        self._sensor_last_s: Optional[float] = None
        self._trace_last_s: Optional[float] = None

        # GTS balance no-op detection needs the big/LITTLE core columns.
        self._big_cols: Optional[np.ndarray] = None
        self._little_cols: Optional[np.ndarray] = None
        try:
            self._big_cols = np.array(
                platform.cores_in_cluster(BIG), dtype=np.intp
            )
            self._little_cols = np.array(
                platform.cores_in_cluster(LITTLE), dtype=np.intp
            )
        except KeyError:
            pass

        # Controller schedule: shared periods/next-dues, per-cell kinds.
        n_slots = len(first._controllers)
        self._ctl_periods_s: List[float] = [
            c.period_s for c in first._controllers
        ]
        self._ctl_next_s: List[float] = [
            c.next_due_s for c in first._controllers
        ]
        self._ctl_kinds = np.zeros((n_slots, self._n), dtype=np.int8)
        self._ctl_callbacks: List[List[Callable[[Simulator], None]]] = []
        self._ctl_has_gts: List[bool] = []
        for k in range(n_slots):
            callbacks: List[Callable[[Simulator], None]] = []
            has_gts = False
            for i, sim in enumerate(self._sims):
                callback = sim._controllers[k].callback
                kind = _classify_controller(callback)
                assert kind is not None  # guaranteed by eligibility
                self._ctl_kinds[k, i] = kind
                has_gts = has_gts or kind == _KIND_GTS
                callbacks.append(callback)
            self._ctl_callbacks.append(callbacks)
            self._ctl_has_gts.append(has_gts)

    def _setup_cells(self) -> None:
        n, n_nodes = self._n, self._n_nodes
        self._theta = np.zeros((n, n_nodes))
        self._vf_idx = np.zeros((n, self._n_clusters), dtype=np.int64)
        self._dtm_cap = np.zeros((n, self._n_clusters), dtype=np.int64)
        self._throttle_events = np.zeros(n, dtype=np.int64)
        self._last_ptot = np.zeros(n)
        self._sensor_vals = np.zeros(n)
        self._sensor_rngs = [sim.sensor._rng for sim in self._sims]
        self._active = np.ones(n, dtype=bool)
        self._active_idx: List[int] = list(range(n))
        self._active_rows = np.arange(n, dtype=np.intp)
        self._active_rows_col = self._active_rows[:, None]
        self._next_arrival_s = np.full(n, np.inf)
        for i, sim in enumerate(self._sims):
            self._theta[i] = sim.thermal.theta
            for l, name in enumerate(self._cluster_names):
                table = self._platform.clusters[l].vf_table
                self._vf_idx[i, l] = table.index_of(sim._vf[name].frequency_hz)
                self._dtm_cap[i, l] = sim._dtm_cap[name]
            self._throttle_events[i] = sim.dtm_throttle_events
            self._last_ptot[i] = sim._last_power_total_w
            if sim._pending:
                self._next_arrival_s[i] = sim._pending[0][0]

        # Preallocated per-tick buffers.
        self._power_buf = np.zeros((n, n_nodes))
        self._act_buf = np.zeros((n, self._n_cores))
        self._act_clip = np.zeros((n, self._n_cores))
        self._pressure_buf = np.zeros((n, self._n_clusters))
        self._core_count = np.zeros((n, self._n_cores), dtype=np.int64)

        # Thermal groups: cells sharing one fused operator (same digest).
        groups: Dict[str, List[int]] = {}
        for i, sim in enumerate(self._sims):
            groups.setdefault(sim.thermal.operator_digest, []).append(i)
        self._thermal_groups: List[_ThermalGroup] = []
        for digest in groups:
            rows = groups[digest]
            selector = None if len(rows) == n else np.array(rows, dtype=np.intp)
            self._thermal_groups.append(
                _ThermalGroup(cells=rows, rep=rows[0], selector=selector)
            )

        # Trace buffer and per-tick event bookkeeping.
        self._trace_samples: List[_TraceSample] = []
        self._finish_candidates: Set[int] = set()
        self._migrated_cells: Set[int] = set()

        # App tables, filled lazily as applications appear.
        self._app_tables: Dict[int, _AppTable] = {}

    # ------------------------------------------------------------------ slots
    def _app_table(self, app: AppModel) -> _AppTable:
        table = self._app_tables.get(id(app))
        if table is None:
            table = _build_app_table(app, self._platform)
            self._app_tables[id(app)] = table
        return table

    def _rebuild(self) -> None:
        """Rebuild the flattened slot arrays from the per-cell objects.

        Called at tick start after any structural event (arrival, finish,
        migration).  Numeric per-slot state carries over from the previous
        arrays by index mapping — the process objects are only written at
        slot retirement — while topology (core, cluster, parameter tables)
        is re-derived from the authoritative objects.
        """
        self._dirty = False
        slots: List[Tuple[int, Process]] = []
        for i, sim in enumerate(self._sims):
            for process in sim._running:
                slots.append((i, process))
        n_slots = len(slots)
        old_index = getattr(self, "_slot_index", {})
        old_j = np.full(n_slots, -1, dtype=np.intp)
        s_cell = np.empty(n_slots, dtype=np.intp)
        s_pid = np.empty(n_slots, dtype=np.int64)
        s_core = np.empty(n_slots, dtype=np.intp)
        s_lm = np.empty(n_slots)
        s_arrival = np.empty(n_slots)
        s_total = np.empty(n_slots)
        s_qtarget = np.empty(n_slots)
        s_cycle = np.empty(n_slots)
        procs: List[Process] = []
        tables: List[_AppTable] = []
        max_ph = 1
        for t, (i, process) in enumerate(slots):
            old_j[t] = old_index.get((i, process.pid), -1)
            s_cell[t] = i
            s_pid[t] = process.pid
            core_id = process.core_id
            assert core_id is not None
            s_core[t] = core_id
            lm = process.last_migration_time_s
            s_lm[t] = _NEG_INF if lm is None else lm
            s_arrival[t] = process.arrival_time_s
            table = self._app_table(process.app)
            s_total[t] = table.total_instructions
            s_qtarget[t] = process.qos_target_ips
            s_cycle[t] = table.cycle_instructions
            procs.append(process)
            tables.append(table)
            max_ph = max(max_ph, table.n_phases)
        s_cluster = self._cluster_of_core[s_core]
        has_old = old_j >= 0
        carry = old_j[has_old]

        def _carry(old: Optional[np.ndarray], shape: Tuple[int, ...]) -> np.ndarray:
            new = np.zeros(shape)
            if old is not None and carry.size:
                new[has_old] = old[carry]
            return new

        old_done = getattr(self, "_s_done", None)
        self._s_done = _carry(old_done, (n_slots,))
        self._s_win_i = _carry(getattr(self, "_s_win_i", None), (n_slots,))
        self._s_win_l2d = _carry(getattr(self, "_s_win_l2d", None), (n_slots,))
        self._s_win_cpu = _carry(getattr(self, "_s_win_cpu", None), (n_slots,))
        self._s_tot_cpu = _carry(getattr(self, "_s_tot_cpu", None), (n_slots,))
        self._s_sm_ips = _carry(getattr(self, "_s_sm_ips", None), (n_slots,))
        self._s_sm_l2d = _carry(getattr(self, "_s_sm_l2d", None), (n_slots,))
        self._s_qos_met = _carry(getattr(self, "_s_qos_met", None), (n_slots,))
        self._s_qos_obs = _carry(getattr(self, "_s_qos_obs", None), (n_slots,))
        old_cpuvf = getattr(self, "_s_cpuvf", None)
        self._s_cpuvf = np.zeros((n_slots, self._n_vf_keys))
        if old_cpuvf is not None and carry.size:
            self._s_cpuvf[has_old] = old_cpuvf[carry]

        # Per-slot parameter tables, padded to the widest phase schedule.
        self._s_cpi = np.empty((n_slots, max_ph))
        self._s_mem = np.empty((n_slots, max_ph))
        self._s_act = np.empty((n_slots, max_ph))
        self._s_l2d = np.empty((n_slots, max_ph))
        self._s_coupling = np.zeros((n_slots, max_ph))
        self._s_ref = np.ones((n_slots, max_ph))
        self._s_zero_mem = np.ones((n_slots, max_ph), dtype=bool)
        self._s_thr = np.full((n_slots, max(0, max_ph - 1)), np.inf)
        for t in range(n_slots):
            table = tables[t]
            l = s_cluster[t]
            n_ph = table.n_phases
            self._s_cpi[t, :n_ph] = table.cpi[l]
            self._s_mem[t, :n_ph] = table.mem[l]
            self._s_act[t, :n_ph] = table.act[l]
            self._s_l2d[t, :n_ph] = table.l2d[l]
            self._s_coupling[t, :n_ph] = table.coupling[l]
            self._s_ref[t, :n_ph] = table.ref_hz[l]
            self._s_zero_mem[t, :n_ph] = table.zero_mem[l]
            self._s_thr[t, : n_ph - 1] = table.thresholds

        self._n_slots = n_slots
        self._s_cell = s_cell
        self._s_pid = s_pid
        self._s_core = s_core
        self._s_cluster = s_cluster
        self._s_lm = s_lm
        self._s_arrival = s_arrival
        self._s_total = s_total
        self._s_qthresh = s_qtarget * self._qos_factor
        self._s_cycle = s_cycle
        self._s_procs = procs
        self._s_rows = np.arange(n_slots)
        self._s_alive = np.ones(n_slots, dtype=bool)
        self._slot_index = {
            (int(s_cell[t]), int(s_pid[t])): t for t in range(n_slots)
        }
        self._core_count[:] = 0
        np.add.at(self._core_count, (s_cell, s_core), 1)

    def _sync_slot(self, t: int) -> None:
        """Write one slot's numeric state back onto its process object."""
        process = self._s_procs[t]
        process.instructions_done = float(self._s_done[t])
        process._window_instructions = float(self._s_win_i[t])
        process._window_l2d = float(self._s_win_l2d[t])
        process._window_cpu_time = float(self._s_win_cpu[t])
        process.total_cpu_time_s = float(self._s_tot_cpu[t])
        process.smoothed_ips = float(self._s_sm_ips[t])
        process.smoothed_l2d_rate = float(self._s_sm_l2d[t])
        process.qos_met_time_s = float(self._s_qos_met[t])
        process.qos_observed_time_s = float(self._s_qos_obs[t])
        row = self._s_cpuvf[t]
        for k in np.nonzero(row)[0]:
            process.cpu_time_by_vf[self._vf_keys[k]] = float(row[k])

    # ------------------------------------------------------------------ tick
    def _tick(self, now_s: float) -> None:
        self.ticks += 1
        self.active_cell_ticks += len(self._active_idx)
        self._migrated_cells.clear()
        arrivals = self._active & (self._next_arrival_s <= now_s + 1e-12)
        if arrivals.any():
            for i in np.nonzero(arrivals)[0]:
                sim = self._sims[i]
                sim.now_s = now_s
                sim._admit_arrivals()
                self._next_arrival_s[i] = (
                    sim._pending[0][0] if sim._pending else np.inf
                )
                self._dirty = True
        if self._dirty:
            self._rebuild()
        activity, finished_idx = self._execute(now_s)
        if finished_idx.size:
            self._handle_finishes(finished_idx, now_s)
        self._post_execute(now_s)
        self._advance_thermal(activity)
        self._check_dtm(now_s)
        self._run_controllers(now_s)
        self._record_trace(now_s)

    @hot_path
    def _execute(self, now_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """One lockstep execution pass; returns (activity, finished slots).

        Replicates ``Simulator._resolve_step_params`` +
        ``_execute_processes`` (minus EMA/QoS, which run after finish
        handling in :meth:`_post_execute`) with the same expression
        sequence per slot and the same accumulation order (slots are
        sorted by ``(cell, pid)``, matching the scalar pid-order scans).
        """
        act_buf = self._act_buf
        act_buf[:] = 0.0
        if self._n_slots == 0:
            np.minimum(1.0, act_buf, out=self._act_clip)
            return self._act_clip, np.empty(0, dtype=np.intp)
        dt_s = self._dt_s
        rows = self._s_rows
        s_cell = self._s_cell
        s_cluster = self._s_cluster
        vf_i = self._vf_idx[s_cell, s_cluster]
        freq = self._freq_pad[s_cluster, vf_i]
        if self._s_thr.shape[1]:
            progress = np.mod(self._s_done / self._s_cycle, 1.0)
            phase_i = (progress[:, None] >= self._s_thr).sum(axis=1)
        else:
            phase_i = np.zeros(self._n_slots, dtype=np.int64)
        cpi = self._s_cpi[rows, phase_i]
        mem = self._s_mem[rows, phase_i]
        act = self._s_act[rows, phase_i]
        l2d = self._s_l2d[rows, phase_i]
        coupling = self._s_coupling[rows, phase_i]
        ref_hz = self._s_ref[rows, phase_i]
        zero_mem = self._s_zero_mem[rows, phase_i]
        mem_eff = np.where(
            zero_mem, mem, mem * (ref_hz / freq) ** coupling
        )
        t_inst = cpi / freq + mem_eff
        mem_frac = mem_eff / t_inst
        pressure = self._pressure_buf
        pressure[:] = 0.0
        np.add.at(pressure, (s_cell, s_cluster), mem_frac)
        others = np.maximum(0.0, pressure[s_cell, s_cluster] - mem_frac)
        slowdown = 1.0 + self._contention_coeff * others
        cold = (now_s - self._s_lm) < self._cold_duration_s
        slowdown = np.where(cold, slowdown * self._cold_penalty, slowdown)
        ips = 1.0 / (cpi / freq + mem_eff * slowdown)
        share = dt_s / self._core_count[s_cell, self._s_core]
        remaining = np.maximum(0.0, self._s_total - self._s_done)
        instructions = np.minimum(ips * share, remaining)
        actual_time = instructions / ips
        self._s_done += instructions
        self._s_win_i += instructions
        self._s_win_l2d += l2d * instructions
        self._s_win_cpu += actual_time
        self._s_tot_cpu += actual_time
        vf_key = self._key_off[s_cluster] + vf_i
        self._s_cpuvf[rows, vf_key] += actual_time
        np.add.at(act_buf, (s_cell, self._s_core), act * (actual_time / dt_s))
        np.minimum(1.0, act_buf, out=self._act_clip)
        finished = np.maximum(0.0, self._s_total - self._s_done) <= 0.0
        return self._act_clip, np.nonzero(finished)[0]

    def _handle_finishes(self, finished_idx: np.ndarray, now_s: float) -> None:
        for t in finished_idx:
            self._sync_slot(int(t))
            process = self._s_procs[t]
            i = int(self._s_cell[t])
            sim = self._sims[i]
            core_id = process.core_id
            assert core_id is not None
            sim._by_core[core_id].remove(process)
            sim._running.remove(process)
            process.finish(now_s + self._dt_s)
            self._core_count[i, core_id] -= 1
            self._s_alive[t] = False
            self._dirty = True
            self._finish_candidates.add(i)

    @hot_path
    def _post_execute(self, now_s: float) -> None:
        """Perf-counter EMA + QoS accounting for still-running slots."""
        if self._n_slots == 0:
            return
        alive = self._s_alive
        dt_s = self._dt_s
        ips_now = self._s_win_i / dt_s
        l2d_now = self._s_win_l2d / dt_s
        smoothing = self._smoothing
        self._s_sm_ips = np.where(
            alive, self._s_sm_ips + smoothing * (ips_now - self._s_sm_ips),
            self._s_sm_ips,
        )
        self._s_sm_l2d = np.where(
            alive, self._s_sm_l2d + smoothing * (l2d_now - self._s_sm_l2d),
            self._s_sm_l2d,
        )
        self._s_win_i[alive] = 0.0
        self._s_win_l2d[alive] = 0.0
        self._s_win_cpu[alive] = 0.0
        graced = alive & ((now_s - self._s_arrival) > self._qos_grace_s)
        self._s_qos_obs[graced] += dt_s
        met = graced & (self._s_sm_ips >= self._s_qthresh)
        self._s_qos_met[met] += dt_s

    @hot_path
    def _advance_thermal(self, activity: np.ndarray) -> None:
        """Power + RC step for every active cell.

        Entry-wise bit-identical to ``PowerModel.compute_batch``: the
        flattened per-(cluster, level) tables in ``_setup_static`` were
        built with the very expressions ``compute_batch`` evaluates per
        tick, and gathering a precomputed double returns it unchanged.
        The cluster loop accumulates ``total`` in the same order, and the
        slice-then-sum reductions depend only on slice length.
        """
        rows = self._active_rows
        rows_col = self._active_rows_col
        vf_act = self._vf_idx[rows]
        flat = vf_act[:, self._cluster_of_core] + self._core_flat_base
        full = self._pw_full[flat]
        idle = self._pw_idle[flat]
        static_v2 = self._pw_stat[flat]
        act = activity[rows]
        core_temps = self._theta[rows_col, self._core_cols]
        core_temps += self._ambient_c
        temp_factor = 1.0 + self._pw_ltc * np.maximum(
            0.0, core_temps - self._pw_lref
        )
        core_p = idle + (full - idle) * act + static_v2 * temp_factor
        uncore = np.empty((rows.size, self._n_clusters))
        total = np.zeros(rows.size)
        for k, cols in enumerate(self._cluster_cols):
            mean_act = act[:, cols].sum(axis=1) / cols.size
            v_scale = self._pw_vscale[vf_act[:, k] + k * self._pw_levels]
            uncore[:, k] = v_scale * (self._pw_ubase + self._pw_uact * mean_act)
            total += core_p[:, cols].sum(axis=1)
        total += uncore.sum(axis=1) + self._pw_soc
        power = self._power_buf
        power[rows_col, self._core_cols] = core_p
        power[rows_col, self._uncore_cols] = uncore
        power[rows, self._soc_idx] = self._pw_soc
        self._last_ptot[rows] = total
        for group in self._thermal_groups:
            net = self._sims[group.rep].thermal
            if group.selector is None:
                net.step_batch(self._theta, power, self._dt_s, out=self._theta)
            else:
                sel = group.selector
                self._theta[sel] = net.step_batch(
                    self._theta[sel], power[sel], self._dt_s
                )

    def _read_sensor(self, now_s: float) -> np.ndarray:
        """Shared-cadence sensor read: fresh draws only for active cells."""
        if (
            self._sensor_last_s is not None
            and now_s - self._sensor_last_s < self._sensor_period_s - 1e-12
        ):
            return self._sensor_vals
        zone = self._theta[:, self._zone_idx].max(axis=1) + self._ambient_c
        noise_c = self._sensor_noise_c
        quant_c = self._sensor_quant_c
        for i in self._active_idx:
            value = float(zone[i])
            if noise_c > 0.0:
                value += float(self._sensor_rngs[i].normal(0.0, noise_c))
            if quant_c > 0.0:
                value = round(value / quant_c) * quant_c
            self._sensor_vals[i] = value
        self._sensor_last_s = now_s
        return self._sensor_vals

    def _check_dtm(self, now_s: float) -> None:
        if now_s + 1e-12 < self._dtm_next_s:
            return
        self._dtm_next_s = now_s + self._dtm_period_s
        vals = self._read_sensor(now_s)
        active = self._active
        trig = active & (vals >= self._dtm_trigger_c)
        if trig.any():
            caps = self._dtm_cap[trig]
            throttled = (caps > 0).any(axis=1)
            self._dtm_cap[trig] = np.maximum(caps - 1, 0)
            self._throttle_events[trig] += throttled
            # Re-applying the current request is a no-op for cells whose
            # caps were already exhausted, so the unconditional min is
            # exactly the scalar "if throttled: re-apply" branch.
            self._vf_idx[trig] = np.minimum(
                self._vf_idx[trig], self._dtm_cap[trig]
            )
        release = active & ~trig & (vals <= self._dtm_release_c)
        if release.any():
            self._dtm_cap[release] = np.minimum(
                self._dtm_cap[release] + 1, self._dtm_top
            )

    def _gts_need(self) -> np.ndarray:
        """Cells whose GTS balance pass could possibly migrate something."""
        counts = self._core_count
        assert self._big_cols is not None and self._little_cols is not None
        free_big = (counts[:, self._big_cols] == 0).any(axis=1)
        little_busy = (counts[:, self._little_cols] > 0).any(axis=1)
        crowded = (counts > 1).any(axis=1)
        free_any = (counts == 0).any(axis=1)
        return (free_big & little_busy) | (crowded & free_any)

    def _refresh_core_count(self, i: int) -> None:
        sim = self._sims[i]
        for core_id in range(self._n_cores):
            self._core_count[i, core_id] = len(sim._by_core[core_id])

    def _run_controllers(self, now_s: float) -> None:
        active = self._active
        for k, period_s in enumerate(self._ctl_periods_s):
            if now_s + 1e-12 < self._ctl_next_s[k]:
                continue
            kinds = self._ctl_kinds[k]
            if self._ctl_has_gts[k]:
                need = self._gts_need()
                callbacks = self._ctl_callbacks[k]
                for i in self._active_idx:
                    if kinds[i] == _KIND_GTS and need[i]:
                        sim = self._sims[i]
                        sim.now_s = now_s
                        before = len(sim.trace.migrations)
                        callbacks[i](sim)
                        if len(sim.trace.migrations) != before:
                            self._dirty = True
                            self._migrated_cells.add(i)
                            self._refresh_core_count(i)
            mask = active & (kinds == _KIND_ONDEMAND)
            if mask.any():
                self._apply_ondemand(mask)
            mask = active & (kinds == _KIND_POWERSAVE)
            if mask.any():
                # min-level index is 0 and caps are >= 0: applied index 0.
                self._vf_idx[mask] = 0
            mask = active & (kinds == _KIND_PERFORMANCE)
            if mask.any():
                self._vf_idx[mask] = np.minimum(
                    self._dtm_top, self._dtm_cap[mask]
                )
            next_s = self._ctl_next_s[k] + period_s
            if next_s <= now_s + 1e-12:
                next_s = now_s + period_s
            self._ctl_next_s[k] = next_s

    def _apply_ondemand(self, mask: np.ndarray) -> None:
        """Vectorized ondemand: core utilization is binary (0 or 1), so
        any busy core drives the cluster to the top level and an idle
        cluster steps down one level — for every valid threshold pair."""
        for l in range(self._n_clusters):
            cols = self._cluster_cols[l]
            busy = (self._core_count[:, cols] > 0).any(axis=1)
            current = self._vf_idx[:, l]
            requested = np.where(
                busy, self._dtm_top[l], np.maximum(current - 1, 0)
            )
            applied = np.minimum(requested, self._dtm_cap[:, l])
            self._vf_idx[mask, l] = applied[mask]

    def _record_trace(self, now_s: float) -> None:
        if (
            self._trace_last_s is not None
            and now_s - self._trace_last_s < self._trace_period_s - 1e-12
        ):
            return
        self._trace_last_s = now_s
        vals = self._read_sensor(now_s)
        max_core = self._theta[:, self._core_node_idx].max(axis=1) + self._ambient_c
        alive_sel = np.nonzero(self._s_alive)[0] if self._n_slots else np.empty(
            0, dtype=np.intp
        )
        cells = self._s_cell[alive_sel].copy()
        cores = self._s_core[alive_sel].copy()
        if self._migrated_cells:
            # GTS migrations this tick changed cores after the rebuild;
            # the objects are authoritative until the next rebuild.
            for pos, t in enumerate(alive_sel):
                if int(cells[pos]) in self._migrated_cells:
                    core_id = self._s_procs[t].core_id
                    assert core_id is not None
                    cores[pos] = core_id
        self._trace_samples.append(
            _TraceSample(
                now_s=now_s,
                sensor_c=vals.copy(),
                max_core_c=max_core,
                total_w=self._last_ptot.copy(),
                vf_idx=self._vf_idx.copy(),
                theta=self._theta.copy(),
                slot_cell=cells,
                slot_pid=self._s_pid[alive_sel].copy(),
                slot_core=cores,
                slot_ips=self._s_sm_ips[alive_sel].copy(),
                active=self._active.copy(),
            )
        )

    # ------------------------------------------------------------------ lifecycle
    def _finish_cell(self, i: int, now_s: float) -> None:
        """Sync the full batch state of cell ``i`` back onto its simulator."""
        sim = self._sims[i]
        for t in range(self._n_slots):
            if self._s_alive[t] and int(self._s_cell[t]) == i:
                self._sync_slot(t)
        sim.now_s = now_s
        sim.thermal._theta[:] = self._theta[i]
        for l, name in enumerate(self._cluster_names):
            sim._vf[name] = self._levels[l][int(self._vf_idx[i, l])]
            sim._dtm_cap[name] = int(self._dtm_cap[i, l])
        sim.dtm_throttle_events = int(self._throttle_events[i])
        sim._dtm_next_check_s = self._dtm_next_s
        sim._last_power_total_w = float(self._last_ptot[i])
        if self._sensor_last_s is not None:
            sim.sensor._last_sample_time = self._sensor_last_s
            sim.sensor._last_value = float(self._sensor_vals[i])
        for k, controller in enumerate(sim._controllers):
            controller.next_due_s = self._ctl_next_s[k]
        self._replay_trace(i)
        self._active[i] = False
        self._active_idx.remove(i)
        self._active_rows = np.array(self._active_idx, dtype=np.intp)
        self._active_rows_col = self._active_rows[:, None]
        for group in self._thermal_groups:
            if i in group.cells:
                group.cells.remove(i)
                group.selector = np.array(group.cells, dtype=np.intp)
                break
        self._thermal_groups = [g for g in self._thermal_groups if g.cells]

    def _replay_trace(self, i: int) -> None:
        """Replay the buffered lockstep samples into the cell's recorder.

        Appends exactly the values :meth:`TraceRecorder.record` would
        have, but builds each parallel list in bulk: scalar series via
        comprehensions, node temperatures via one stacked vectorized add
        (elementwise identical to the scalar ``theta[j] + ambient``), and
        per-slot process rows via ``searchsorted`` on the cell-sorted
        slot arrays instead of per-sample boolean masks.  The incremental
        known-pid loop mirrors ``record`` statement for statement so dict
        insertion order matches the scalar recorder's.
        """
        sim = self._sims[i]
        samples = [s for s in self._trace_samples if s.active[i]]
        if not samples:
            return
        trace = sim.trace
        trace.times.extend(s.now_s for s in samples)
        trace.sensor_temp_c.extend(float(s.sensor_c[i]) for s in samples)
        trace.max_core_temp_c.extend(float(s.max_core_c[i]) for s in samples)
        trace.total_power_w.extend(float(s.total_w[i]) for s in samples)
        for l, name in enumerate(self._cluster_names):
            freqs = [level.frequency_hz for level in self._levels[l]]
            trace.vf_levels.setdefault(name, []).extend(
                freqs[int(s.vf_idx[i, l])] for s in samples
            )
        theta = np.stack([s.theta[i] for s in samples]) + self._ambient_c
        for j, name in enumerate(self._node_names):
            trace.core_temps.setdefault(name, []).extend(theta[:, j].tolist())
        proc_cores = trace.process_cores
        proc_ips = trace.process_ips
        length = len(trace.times) - len(samples)
        for sample in samples:
            lo = int(np.searchsorted(sample.slot_cell, i, side="left"))
            hi = int(np.searchsorted(sample.slot_cell, i, side="right"))
            pids = sample.slot_pid[lo:hi].tolist()
            current_core = dict(zip(pids, sample.slot_core[lo:hi].tolist()))
            current_ips = dict(zip(pids, sample.slot_ips[lo:hi].tolist()))
            for pid in set(proc_cores) | set(current_core):
                series = proc_cores.setdefault(pid, [-1] * length)
                while len(series) < length:
                    series.append(-1)
                series.append(current_core.get(pid, -1))
            for pid in set(proc_ips) | set(current_ips):
                series = proc_ips.setdefault(pid, [0.0] * length)
                while len(series) < length:
                    series.append(0.0)
                series.append(current_ips.get(pid, 0.0))
            length += 1
        trace._last_sample_time = samples[-1].now_s

    @property
    def n_cells(self) -> int:
        return self._n

    @property
    def lockstep_fill_ratio(self) -> float:
        """Mean fraction of cells still active per executed tick."""
        if self.ticks == 0:
            return 1.0
        return self.active_cell_ticks / (self.ticks * self._n)

    def run(self, timeout_s: float = 36000.0) -> List[Optional[SimulationTimeout]]:
        """Advance all cells to completion (or the shared timeout).

        Returns one entry per cell: ``None`` on completion, or the
        :class:`~repro.sim.kernel.SimulationTimeout` the scalar
        ``run_until_complete`` would have raised.  Either way every cell's
        simulator is fully synced and summarizable afterwards.
        """
        outcomes: List[Optional[SimulationTimeout]] = [None] * self._n
        for i in list(self._active_idx):
            sim = self._sims[i]
            if not sim._pending and not sim._running:
                self._finish_cell(i, 0.0)
        end_s = timeout_s
        now_s = 0.0
        while now_s < end_s and self._active_idx:
            self._finish_candidates.clear()
            self._tick(now_s)
            now_s += self._dt_s
            if now_s < end_s:
                for i in sorted(self._finish_candidates):
                    sim = self._sims[i]
                    if not sim._pending and not sim._running:
                        self._finish_cell(i, now_s)
        for i in list(self._active_idx):
            sim = self._sims[i]
            self._finish_cell(i, now_s)
            stuck = sorted(
                [p.pid for p in sim._running]
                + [pid for _, pid, _ in sim._pending]
            )
            outcomes[i] = SimulationTimeout(timeout_s, now_s, stuck)
        return outcomes
