"""Process objects: one running instance of an application model.

A :class:`Process` carries the dynamic state the OS would keep for a task:
core affinity, retired-instruction counts, windowed performance counters
(the view the Linux ``perf`` API offers), migration bookkeeping (for the
cold-cache penalty), and per-(cluster, frequency) CPU-time accounting that
feeds the paper's Fig. 10 analysis.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.apps.model import AppModel
from repro.utils.validation import check_non_negative, check_positive


class ProcessState(enum.Enum):
    """Lifecycle of a process in the simulator."""

    PENDING = "pending"  # in the workload, not yet arrived
    RUNNING = "running"  # placed on a core and executing
    FINISHED = "finished"  # all instructions retired


class Process:
    """One application instance with OS-visible dynamic state."""

    def __init__(
        self,
        pid: int,
        app: AppModel,
        qos_target_ips: float,
        arrival_time_s: float,
    ):
        check_non_negative("pid", pid)
        check_positive("qos_target_ips", qos_target_ips)
        check_non_negative("arrival_time_s", arrival_time_s)
        self.pid = pid
        self.app = app
        self.qos_target_ips = float(qos_target_ips)
        self.arrival_time_s = float(arrival_time_s)

        self.state = ProcessState.PENDING
        self.core_id: Optional[int] = None
        self.instructions_done = 0.0
        self.finish_time_s: Optional[float] = None
        self.last_migration_time_s: Optional[float] = None

        # Windowed counters, reset by the perf reader after each read.
        self._window_instructions = 0.0
        self._window_l2d = 0.0
        self._window_cpu_time = 0.0

        # Smoothed perf-counter readings maintained by the kernel; this is
        # the view policies get (the board's perf API reads are similarly
        # aggregated over the control period).
        self.smoothed_ips = 0.0
        self.smoothed_l2d_rate = 0.0

        # Lifetime accounting.
        self.total_cpu_time_s = 0.0
        self.migration_count = 0
        # CPU time per (cluster name, frequency Hz) — Fig. 10's raw data.
        self.cpu_time_by_vf: Dict[Tuple[str, float], float] = {}
        # Integral of instantaneous QoS-satisfaction for violation stats.
        self.qos_met_time_s = 0.0
        self.qos_observed_time_s = 0.0

    # --- lifecycle ------------------------------------------------------------
    def start(self, core_id: int, now_s: float) -> None:
        """Place the arriving process on its first core."""
        if self.state is not ProcessState.PENDING:
            raise RuntimeError(f"pid {self.pid} started twice")
        self.state = ProcessState.RUNNING
        self.core_id = core_id
        # The first placement is not a migration: no cold-cache penalty.
        self.last_migration_time_s = None

    def migrate(self, core_id: int, now_s: float) -> None:
        """Move the process to another core (Linux affinity)."""
        if self.state is not ProcessState.RUNNING:
            raise RuntimeError(f"cannot migrate pid {self.pid} in {self.state}")
        if core_id == self.core_id:
            return
        self.core_id = core_id
        self.last_migration_time_s = now_s
        self.migration_count += 1

    def finish(self, now_s: float) -> None:
        self.state = ProcessState.FINISHED
        self.finish_time_s = now_s
        self.core_id = None

    @property
    def remaining_instructions(self) -> float:
        return max(0.0, self.app.total_instructions - self.instructions_done)

    def is_running(self) -> bool:
        return self.state is ProcessState.RUNNING

    # --- execution accounting ----------------------------------------------------
    def account_execution(
        self,
        cpu_time_s: float,
        instructions: float,
        l2d_accesses: float,
        cluster_name: str,
        frequency_hz: float,
    ) -> None:
        """Record one step of execution on the current core."""
        check_non_negative("cpu_time_s", cpu_time_s)
        self.instructions_done += instructions
        self._window_instructions += instructions
        self._window_l2d += l2d_accesses
        self._window_cpu_time += cpu_time_s
        self.total_cpu_time_s += cpu_time_s
        key = (cluster_name, frequency_hz)
        self.cpu_time_by_vf[key] = self.cpu_time_by_vf.get(key, 0.0) + cpu_time_s

    def account_qos_observation(self, dt_s: float, qos_met: bool) -> None:
        """Fold one observation interval into the QoS satisfaction stats."""
        self.qos_observed_time_s += dt_s
        if qos_met:
            self.qos_met_time_s += dt_s

    # --- perf-counter window --------------------------------------------------------
    def read_window(self, window_s: float) -> Tuple[float, float, float]:
        """Read and reset the counter window.

        Returns ``(ips, l2d_per_s, cpu_share)`` over the elapsed window of
        length ``window_s`` wall-clock seconds.  IPS is wall-clock based
        (instructions retired divided by elapsed time), matching what the
        paper's QoS targets are expressed against.
        """
        check_positive("window_s", window_s)
        ips = self._window_instructions / window_s
        l2d = self._window_l2d / window_s
        share = self._window_cpu_time / window_s
        self._window_instructions = 0.0
        self._window_l2d = 0.0
        self._window_cpu_time = 0.0
        return ips, l2d, share

    # --- summary metrics ---------------------------------------------------------------
    def mean_ips(self, now_s: float) -> float:
        """Average IPS since arrival (or over the whole execution)."""
        end = self.finish_time_s if self.finish_time_s is not None else now_s
        elapsed = max(1e-9, end - self.arrival_time_s)
        return self.instructions_done / elapsed

    def violated_qos(self, now_s: float, tolerance: float = 0.02) -> bool:
        """Whether the whole-execution average IPS missed the target.

        A small tolerance absorbs measurement-grain effects, as on the
        board where counter windows and sensor sampling quantize QoS.
        """
        return self.mean_ips(now_s) < self.qos_target_ips * (1.0 - tolerance)

    def qos_met_fraction(self) -> float:
        """Fraction of observed time the instantaneous QoS was satisfied."""
        if self.qos_observed_time_s <= 0.0:
            return 1.0
        return self.qos_met_time_s / self.qos_observed_time_s

    def __repr__(self) -> str:
        return (
            f"Process(pid={self.pid}, app={self.app.name!r}, "
            f"state={self.state.value}, core={self.core_id})"
        )
