"""The discrete-time full-system simulator.

One :class:`Simulator` instance couples:

* the **platform description** (clusters, VF tables, floorplan, DTM),
* the **power model** (per-block W from activity, VF, temperature),
* the **thermal network** (RC dynamics per floorplan tile + board),
* the **temperature sensor** (20 Hz, quantized — the only temperature
  observable, as on the board),
* the **process layer** (application models executing on cores, with
  timeslicing, memory contention, and cold caches after migration), and
* pluggable **controllers** (DVFS governors, schedulers, migration
  policies) invoked on their own periods.

Policies interact with the simulator exclusively through board-realistic
observables: per-process smoothed IPS and L2D rates (perf API), per-core
utilization, current VF levels, and the thermal sensor.  Ground-truth node
temperatures and power are available on the simulator for *metrics and
oracle generation only* — the same privileged design-time access the paper
gets from instrumented trace collection.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.adapt import adapt_app_for_platform
from repro.apps.model import AppModel
from repro.faults.injectors import FaultTolerantSensor
from repro.faults.runtime import FaultRuntime
from repro.obs.config import Observability
from repro.obs.instrument import SimObserver
from repro.platform import Platform, VFLevel
from repro.power import PowerModel
from repro.sim.process import Process, ProcessState
from repro.sim.trace import MigrationEvent, TraceRecorder
from repro.thermal import (
    CoolingConfig,
    FAN_COOLING,
    RCThermalNetwork,
    TemperatureSensor,
    build_thermal_network,
)
from repro.utils.hotpath import hot_path
from repro.utils.rng import RandomSource
from repro.utils.sanitize import (
    MAX_PLAUSIBLE_TEMP_C,
    MIN_PLAUSIBLE_TEMP_C,
    SanitizerError,
    sanitizer_enabled,
)
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class SimConfig:
    """Tunable simulator parameters.

    ``contention_coeff`` scales cluster-level memory-contention slowdown;
    ``cold_cache_penalty``/``cold_cache_duration_s`` model the transient
    after a migration (the reason the paper's DVFS loop skips iterations);
    ``perf_smoothing_tau_s`` is the time constant of the perf-counter EMA;
    ``qos_tolerance`` is the relative slack applied when judging QoS.
    """

    dt_s: float = 0.01
    contention_coeff: float = 0.15
    cold_cache_penalty: float = 1.35
    cold_cache_duration_s: float = 0.1
    perf_smoothing_tau_s: float = 0.1
    qos_tolerance: float = 0.02
    model_overhead_on_core: Optional[int] = 0
    trace_sample_period_s: float = 0.1

    def __post_init__(self):
        check_positive("dt_s", self.dt_s)
        check_non_negative("contention_coeff", self.contention_coeff)
        if self.cold_cache_penalty < 1.0:
            raise ValueError("cold_cache_penalty must be >= 1")
        check_non_negative("cold_cache_duration_s", self.cold_cache_duration_s)
        check_positive("perf_smoothing_tau_s", self.perf_smoothing_tau_s)
        check_non_negative("qos_tolerance", self.qos_tolerance)


@dataclass
class Controller:
    """A periodic callback into the simulator (governor, policy, DTM...)."""

    name: str
    period_s: float
    callback: Callable[["Simulator"], None]
    next_due_s: float = 0.0

    def __post_init__(self):
        check_positive("period_s", self.period_s)


class SimulationTimeout(TimeoutError):
    """``run_until_complete`` hit its simulated-time budget with work left.

    Carries enough context for the experiment drivers to salvage or
    report the run: the budget, the simulated time reached, and the pids
    that were still pending or running when the budget expired.
    """

    def __init__(self, timeout_s: float, now_s: float, stuck_pids: List[int]):
        self.timeout_s = timeout_s
        self.now_s = now_s
        self.stuck_pids = stuck_pids
        super().__init__(
            f"workload not complete after {timeout_s} s of simulated time "
            f"(now={now_s:.1f} s, {len(stuck_pids)} unfinished pids: "
            f"{stuck_pids[:8]}{'...' if len(stuck_pids) > 8 else ''})"
        )


PlacementPolicy = Callable[["Simulator", Process], int]


def default_placement(sim: "Simulator", process: Process) -> int:
    """Place an arrival on the emptiest core (lowest core id on ties)."""
    loads = [(len(sim.processes_on_core(c)), c) for c in range(sim.platform.n_cores)]
    loads.sort()
    return loads[0][1]


def _insert_by_pid(procs: List[Process], process: Process) -> None:
    """Insert keeping ascending-pid order (the legacy scan order)."""
    lo, hi = 0, len(procs)
    while lo < hi:
        mid = (lo + hi) // 2
        if procs[mid].pid < process.pid:
            lo = mid + 1
        else:
            hi = mid
    procs.insert(lo, process)


class Simulator:
    """Couple platform, power, thermal, processes, and controllers."""

    def __init__(
        self,
        platform: Platform,
        cooling: CoolingConfig = FAN_COOLING,
        power_model: Optional[PowerModel] = None,
        config: Optional[SimConfig] = None,
        rng: Optional[RandomSource] = None,
        thermal: Optional[RCThermalNetwork] = None,
        sensor_noise_std_c: float = 0.05,
        observability: Optional[Observability] = None,
        faults: Optional[FaultRuntime] = None,
    ):
        self.platform = platform
        self.cooling = cooling
        self.config = config or SimConfig()
        self.rng = rng or RandomSource(0)
        self.power_model = power_model or PowerModel(platform)
        self.thermal = thermal or build_thermal_network(platform, cooling)
        core_nodes = [f"core{c}" for c in range(platform.n_cores)]
        # The HiKey 970 exposes cluster-level thermal zones (cls0/cls1/gpu),
        # not per-core sensors; the observable temperature is the max over
        # those zones.  Fall back to all silicon nodes for floorplans
        # without zone blocks.
        zone_nodes = [
            n
            for n in self.thermal.node_names
            if n.startswith("uncore") or n == "soc_rest"
        ]
        if not zone_nodes:
            zone_nodes = [n for n in self.thermal.node_names if n != "board"]
        self._zone_nodes = zone_nodes
        # Fault layer (off by default): when a FaultRuntime is attached,
        # the sensor is the fault-tolerant subclass driven by the plan's
        # own RNG streams.  The sensor noise stream is identical either
        # way, so a zero-fault runtime is bit-identical to faults=None.
        self.faults = faults
        if faults is not None:
            ft_sensor = FaultTolerantSensor(
                self.thermal,
                injector=faults.injector,
                nodes=zone_nodes,
                sample_period_s=0.05,
                quantization_c=0.1,
                noise_std_c=sensor_noise_std_c,
                rng=self.rng.child("sensor"),
            )
            faults.attach_sensor(ft_sensor)
            sensor: TemperatureSensor = ft_sensor
        else:
            sensor = TemperatureSensor(
                self.thermal,
                nodes=zone_nodes,
                sample_period_s=0.05,
                quantization_c=0.1,
                noise_std_c=sensor_noise_std_c,
                rng=self.rng.child("sensor"),
            )
        self.sensor = sensor
        self._core_nodes = core_nodes

        self.now_s = 0.0
        self._processes: Dict[int, Process] = {}
        self._next_pid = 0
        # Min-heap of (arrival_time_s, pid, process): O(log n) per submit.
        self._pending: List[Tuple[float, int, Process]] = []
        self._vf: Dict[str, VFLevel] = platform.default_vf_levels()
        self._controllers: List[Controller] = []
        self.placement_policy: PlacementPolicy = default_placement
        self.trace = TraceRecorder(sample_period_s=self.config.trace_sample_period_s)

        # Incrementally maintained process indices (updated on start /
        # migrate / finish), both kept in ascending-pid order to preserve
        # the scan order of the original O(cores x processes) queries.
        self._running: List[Process] = []
        self._by_core: List[List[Process]] = [[] for _ in range(platform.n_cores)]
        # Static lookup caches for the hot path.
        self._cluster_by_core = [
            platform.cluster_of_core(c) for c in range(platform.n_cores)
        ]
        self._core_node_idx = self.thermal.indices_of(core_nodes)
        self._uncore_node_idx = self.thermal.indices_of(
            [f"uncore_{c.name}" for c in platform.clusters]
        )
        self._soc_rest_idx = self.thermal.node_index("soc_rest")
        self._power_vec = np.zeros(self.thermal.n_nodes)
        # Reused per step by _resolve_step_params (hot path: no rebuilds).
        self._pressure: Dict[str, float] = {
            c.name: 0.0 for c in platform.clusters
        }

        # Sanitizer layer (REPRO_SANITIZE=1): per-step invariant checks.
        self._sanitize_enabled = sanitizer_enabled()
        self._sanitize_prev_now_s = float("-inf")

        # Observability layer (REPRO_TRACE=1 or an explicit Observability):
        # off by default — the hot path then pays one `is None` test per
        # hook site.  The observer only reads state, so enabling it never
        # changes simulation results.
        self.observability = (
            observability if observability is not None
            else Observability.from_env()
        )
        self.obs: Optional[SimObserver] = (
            SimObserver(self.observability) if self.observability.enabled
            else None
        )
        self._obs = self.obs

        # DTM throttling state: max allowed VF index per cluster.
        self._dtm_cap: Dict[str, int] = {
            c.name: len(c.vf_table) - 1 for c in platform.clusters
        }
        self._dtm_next_check_s = 0.0
        self.dtm_throttle_events = 0
        # Fail-safe throttle: engaged while the (fault-injected) sensor
        # self-reports a stuck-at fault — the only thermal observable is
        # frozen, so the DTM assumes the worst and caps every cluster.
        self._dtm_failsafe_active = False
        self.dtm_failsafe_events = 0

        # Run-time overhead ledger (management CPU time, by component).
        self.overhead_cpu_s: Dict[str, float] = {}
        self._pending_overhead_s = 0.0
        self._last_power_total_w = 0.0

    # ------------------------------------------------------------------ workload
    def submit(
        self, app: AppModel, qos_target_ips: float, arrival_time_s: float = 0.0
    ) -> int:
        """Add an application instance to the workload; returns its pid.

        Applications missing per-cluster parameters for this platform are
        adapted on entry (see :mod:`repro.apps.adapt`); on platforms the
        app fully covers — every catalog app on the HiKey 970 — the model
        passes through unchanged.  ``submit`` is the single entry point
        for work, so every execution path sees the adapted model.
        """
        if arrival_time_s < self.now_s:
            raise ValueError("cannot submit in the past")
        app = adapt_app_for_platform(app, self.platform)
        pid = self._next_pid
        self._next_pid += 1
        process = Process(pid, app, qos_target_ips, arrival_time_s)
        self._processes[pid] = process
        heapq.heappush(self._pending, (process.arrival_time_s, pid, process))
        return pid

    # ------------------------------------------------------------------ controllers
    def add_controller(
        self, name: str, period_s: float, callback: Callable[["Simulator"], None]
    ) -> Controller:
        """Register a periodic controller; first invocation at ``period_s``."""
        controller = Controller(
            name, period_s, callback, next_due_s=self.now_s + period_s
        )
        self._controllers.append(controller)
        return controller

    def remove_controller(self, name: str) -> None:
        self._controllers = [c for c in self._controllers if c.name != name]

    # ------------------------------------------------------------------ observables
    def process(self, pid: int) -> Process:
        return self._processes[pid]

    def all_processes(self) -> List[Process]:
        return list(self._processes.values())

    def running_processes(self) -> List[Process]:
        return list(self._running)

    def processes_on_core(self, core_id: int) -> List[Process]:
        return list(self._by_core[core_id])

    def core_utilization(self, core_id: int) -> float:
        """1.0 when the core has runnable work, else 0.0 (busy benchmarks)."""
        return 1.0 if self._by_core[core_id] else 0.0

    def free_cores(self) -> List[int]:
        return [
            c for c in range(self.platform.n_cores) if not self._by_core[c]
        ]

    def vf_level(self, cluster_name: str) -> VFLevel:
        return self._vf[cluster_name]

    def vf_levels(self) -> Dict[str, VFLevel]:
        return dict(self._vf)

    def sensor_temp_c(self) -> float:
        """The (only) run-time temperature observable."""
        return self.sensor.read(self.now_s)

    def ground_truth_temps(self) -> Dict[str, float]:
        """Privileged access for metrics/oracles — not for policies."""
        return self.thermal.temperatures()

    def max_core_temp_c(self) -> float:
        """Ground-truth hottest core (not observable on the board)."""
        return self.thermal.max_temperature(self._core_nodes)

    def zone_temp_c(self) -> float:
        """Ground-truth thermal-zone temperature (what the sensor samples,
        without the sensor's sampling/quantization/noise)."""
        return self.thermal.max_temperature(self._zone_nodes)

    def total_power_w(self) -> float:
        return self._last_power_total_w

    def qos_satisfied(self, process: Process) -> bool:
        """Instantaneous QoS check against the smoothed IPS reading."""
        threshold = process.qos_target_ips * (1.0 - self.config.qos_tolerance)
        return process.smoothed_ips >= threshold

    # ------------------------------------------------------------------ actuation
    def set_vf_level(self, cluster_name: str, level: VFLevel) -> VFLevel:
        """Request a VF level; DTM may cap it.  Returns the applied level."""
        table = self.platform.cluster(cluster_name).vf_table
        idx = table.index_of(level.frequency_hz)
        capped = min(idx, self._dtm_cap[cluster_name])
        applied = table[capped]
        self._vf[cluster_name] = applied
        return applied

    def migrate(self, pid: int, core_id: int) -> None:
        """Move a process to ``core_id`` (records the event in the trace)."""
        if not 0 <= core_id < self.platform.n_cores:
            raise ValueError(f"core {core_id} out of range")
        process = self._processes[pid]
        if not process.is_running():
            raise RuntimeError(f"pid {pid} is not running")
        if process.core_id == core_id:
            return
        from_core = process.core_id
        process.migrate(core_id, self.now_s)
        self._by_core[from_core].remove(process)
        _insert_by_pid(self._by_core[core_id], process)
        event = MigrationEvent(
            self.now_s, pid, process.app.name, from_core, core_id
        )
        self.trace.record_migration(event)
        if self._obs is not None:
            self._obs.on_migration(self, event)

    def account_overhead(self, component: str, cpu_seconds: float) -> None:
        """Charge management CPU time; it steals cycles on the manager core."""
        check_non_negative("cpu_seconds", cpu_seconds)
        self.overhead_cpu_s[component] = (
            self.overhead_cpu_s.get(component, 0.0) + cpu_seconds
        )
        if self._obs is not None:
            self._obs.on_overhead(component, cpu_seconds)
        if self.config.model_overhead_on_core is not None:
            self._pending_overhead_s += cpu_seconds

    # ------------------------------------------------------------------ stepping
    @hot_path
    def step(self) -> None:
        """Advance the simulation by one ``dt``.

        Observability note: this is a ``@hot_path`` function, so the only
        instrumentation allowed here is the guarded ``on_step`` call at the
        step boundary (a single ``is None`` test when tracing is off); the
        repro-lint HOT rules keep anything heavier out.
        """
        dt = self.config.dt_s
        self._admit_arrivals()
        activity = self._execute_processes(dt)
        self._advance_thermal(activity, dt)
        if self._sanitize_enabled:
            self._sanitize_step()
        self._check_dtm()
        self._run_controllers()
        self._record_trace()
        self.now_s += dt
        if self._obs is not None:
            self._obs.on_step(self, dt)

    def run_for(self, duration_s: float) -> None:
        """Run for a fixed amount of simulated time.

        Args:
            duration_s: Simulated seconds to advance (must be > 0; the
                ``_s`` suffix marks seconds throughout this codebase).  The
                run executes ``ceil(duration_s / config.dt_s)`` steps, so
                the clock lands on the first step boundary at or past
                ``now_s + duration_s``.

        Returns:
            None.  Progress is observable through ``now_s``, the trace
            recorder, and (when enabled) ``obs``.
        """
        check_positive("duration_s", duration_s)
        end = self.now_s + duration_s
        while self.now_s < end - 1e-9:
            self.step()

    def run_until_complete(
        self,
        timeout_s: float = 36000.0,
        checkpoint_every_s: Optional[float] = None,
        on_checkpoint: Optional[Callable[["Simulator"], None]] = None,
    ) -> None:
        """Run until every submitted process has finished.

        Args:
            timeout_s: Upper bound in *simulated* seconds (not wall time).
                The default (36000 s = 10 simulated hours) is far beyond
                any workload in the paper's evaluation.
            checkpoint_every_s: When set (with ``on_checkpoint``), invoke
                the checkpoint hook every this many *simulated* seconds,
                at step boundaries.  The cadence is anchored at the
                current ``now_s`` so a restored run continues the same
                schedule.  The hook is a pure observer: it must not
                mutate simulator state, which keeps checkpointed runs
                bit-identical to unchecked ones.
            on_checkpoint: Called with the simulator at each cadence
                mark (typically ``repro.workloads.runner`` writing a
                :class:`~repro.sim.checkpoint.SimCheckpoint` artifact).

        Returns:
            None — returns as soon as no process is pending or running.

        Raises:
            SimulationTimeout: (a ``TimeoutError`` subclass) if work
                remains after ``timeout_s`` simulated seconds, carrying
                the stuck pids and the simulated time reached; partial
                state (trace, metrics) is preserved for inspection.
        """
        end = self.now_s + timeout_s
        next_checkpoint_s = (
            self.now_s + checkpoint_every_s
            if checkpoint_every_s is not None and on_checkpoint is not None
            else None
        )
        while self.now_s < end:
            if not self._pending and not self._running:
                return
            self.step()
            if (
                next_checkpoint_s is not None
                and self.now_s >= next_checkpoint_s - 1e-9
            ):
                on_checkpoint(self)  # type: ignore[misc]
                while self.now_s >= next_checkpoint_s - 1e-9:
                    next_checkpoint_s += checkpoint_every_s  # type: ignore[operator]
        stuck = sorted(
            [p.pid for p in self._running]
            + [pid for _, pid, _ in self._pending]
        )
        raise SimulationTimeout(timeout_s, self.now_s, stuck)

    # ------------------------------------------------------------------ checkpointing
    def snapshot(self, meta: Optional[Dict[str, object]] = None):
        """Capture the complete kernel state as a checksummed envelope.

        Pure read — no RNG draw, no attribute mutation — so runs that
        snapshot are bit-identical to runs that do not.  See
        :mod:`repro.sim.checkpoint` for the envelope format and the
        bit-identity contract.
        """
        from repro.sim.checkpoint import snapshot_simulator

        return snapshot_simulator(self, meta=meta)

    @staticmethod
    def restore(checkpoint) -> "Simulator":
        """Rebuild a simulator from a :meth:`snapshot` envelope.

        Verifies schema version and payload checksum first; raises
        :class:`repro.sim.checkpoint.CheckpointError` on any mismatch.
        """
        from repro.sim.checkpoint import restore_simulator

        return restore_simulator(checkpoint)

    # ------------------------------------------------------------------ internals
    def _admit_arrivals(self) -> None:
        while self._pending and self._pending[0][0] <= self.now_s + 1e-12:
            _, _, process = heapq.heappop(self._pending)
            core = self.placement_policy(self, process)
            process.start(core, self.now_s)
            _insert_by_pid(self._running, process)
            _insert_by_pid(self._by_core[core], process)
            event = MigrationEvent(
                self.now_s, process.pid, process.app.name, None, core
            )
            self.trace.record_migration(event)
            if self._obs is not None:
                self._obs.on_migration(self, event)

    @hot_path
    def _resolve_step_params(
        self,
    ) -> Tuple[Dict[str, float], Dict[int, Tuple]]:
        """Per-cluster mem pressure and per-process effective parameters.

        One pass in pid order (the legacy accumulation order): resolves
        ``params_at`` once per process per step and derives from it both the
        cluster contention pressure and the quantities ``_execute_processes``
        needs, so nothing is recomputed downstream.  The pressure dict is
        reused across steps; callers must not hold it.
        """
        pressure = self._pressure
        for name in pressure:
            pressure[name] = 0.0
        per_process: Dict[int, Tuple] = {}
        for p in self._running:
            cluster = self._cluster_by_core[p.core_id]
            f = self._vf[cluster.name].frequency_hz
            params, l2d_rate = p.app.params_at(cluster.name, p.instructions_done)
            mem_time = params.effective_mem_time(f)
            t_inst = params.cpi / f + mem_time
            mem_frac = mem_time / t_inst if t_inst > 0 else 0.0
            pressure[cluster.name] += mem_frac
            per_process[p.pid] = (params, l2d_rate, mem_time, mem_frac)
        return pressure, per_process

    def _cluster_mem_pressure(self) -> Dict[str, float]:
        """Sum of co-runner memory-boundedness per cluster (contention)."""
        pressure, _ = self._resolve_step_params()
        return dict(pressure)  # copy: _resolve_step_params reuses its dict

    @hot_path
    def _execute_processes(self, dt: float) -> np.ndarray:
        """Run every core for ``dt``; returns per-core activity for power."""
        activity = np.zeros(self.platform.n_cores)
        pressure, per_process = self._resolve_step_params()
        smoothing = min(1.0, dt / self.config.perf_smoothing_tau_s)
        overhead_core = self.config.model_overhead_on_core
        contention_coeff = self.config.contention_coeff
        finished: List[Process] = []

        for core_id in range(self.platform.n_cores):
            procs = self._by_core[core_id]
            core_activity = 0.0
            usable_dt = dt
            if overhead_core is not None and core_id == overhead_core:
                stolen = min(dt, self._pending_overhead_s)
                self._pending_overhead_s -= stolen
                usable_dt = dt - stolen
                core_activity += (stolen / dt) * 0.8  # manager is CPU-busy
            if procs:
                cluster = self._cluster_by_core[core_id]
                cluster_name = cluster.name
                f = self._vf[cluster_name].frequency_hz
                cluster_pressure = pressure[cluster_name]
                share = usable_dt / len(procs)
                for p in procs:
                    params, l2d_rate, mem_time, own_mem_frac = per_process[p.pid]
                    others = max(0.0, cluster_pressure - own_mem_frac)
                    slowdown = 1.0 + contention_coeff * others
                    if (
                        p.last_migration_time_s is not None
                        and self.now_s - p.last_migration_time_s
                        < self.config.cold_cache_duration_s
                    ):
                        slowdown *= self.config.cold_cache_penalty
                    # Same expression AppModel.ips evaluates, minus the
                    # (already-cached) params lookup.
                    ips = 1.0 / (params.cpi / f + mem_time * slowdown)
                    instructions = min(ips * share, p.remaining_instructions)
                    actual_time = instructions / ips if ips > 0 else 0.0
                    p.account_execution(
                        actual_time,
                        instructions,
                        l2d_rate * instructions,
                        cluster_name,
                        f,
                    )
                    core_activity += params.activity * (actual_time / dt)
                    if p.remaining_instructions <= 0.0:
                        finished.append(p)
            activity[core_id] = min(1.0, core_activity)

        for p in finished:
            self._by_core[p.core_id].remove(p)
            self._running.remove(p)
            p.finish(self.now_s + dt)
            if self._obs is not None:
                self._obs.on_completion(self, p)

        # Update smoothed counters and QoS accounting for running processes.
        for p in self._running:
            ips_now, l2d_now, _ = p.read_window(dt)
            p.smoothed_ips += smoothing * (ips_now - p.smoothed_ips)
            p.smoothed_l2d_rate += smoothing * (l2d_now - p.smoothed_l2d_rate)
            # Grace period after arrival: counters need a window to settle.
            if self.now_s - p.arrival_time_s > 2 * self.config.perf_smoothing_tau_s:
                p.account_qos_observation(dt, self.qos_satisfied(p))
        return activity

    @hot_path
    def _advance_thermal(self, activity: np.ndarray, dt: float) -> None:
        thermal = self.thermal
        core_temps = thermal.theta[self._core_node_idx] + thermal.ambient_temp_c
        core_p, uncore_p, soc_p, total = self.power_model.compute_vector(
            self._vf, activity, core_temps
        )
        p = self._power_vec
        p[self._core_node_idx] = core_p
        p[self._uncore_node_idx] = uncore_p
        p[self._soc_rest_idx] = soc_p
        self._last_power_total_w = total
        thermal.step_vector(p, dt)

    def _check_dtm(self) -> None:
        dtm = self.platform.dtm
        if self.now_s + 1e-12 < self._dtm_next_check_s:
            return
        self._dtm_next_check_s = self.now_s + dtm.check_period_s
        temp = self.sensor_temp_c()
        faults = self.faults
        if faults is not None and faults.sensor_stuck_active(self.now_s):
            # Fail-safe throttle: the only temperature observable is a
            # frozen register, so hysteresis on it is meaningless — cap
            # every cluster to its lowest VF level until the sensor
            # self-reports healthy again.
            if not self._dtm_failsafe_active:
                self._dtm_failsafe_active = True
                self.dtm_failsafe_events += 1
                faults.count("dtm.failsafe")
                for cluster in self.platform.clusters:
                    self._dtm_cap[cluster.name] = 0
                    self.set_vf_level(cluster.name, self._vf[cluster.name])
                if self._obs is not None:
                    self._obs.on_dtm(self, throttled=True)
            return
        if self._dtm_failsafe_active:
            # Sensor healthy again: leave fail-safe; the caps recover
            # step-by-step through the normal release hysteresis below.
            self._dtm_failsafe_active = False
            if faults is not None:
                faults.count("dtm.failsafe_release")
        if temp >= dtm.trigger_temp_c:
            throttled = False
            for cluster in self.platform.clusters:
                if self._dtm_cap[cluster.name] > 0:
                    self._dtm_cap[cluster.name] -= 1
                    throttled = True
            if throttled:
                self.dtm_throttle_events += 1
                for cluster in self.platform.clusters:
                    # Re-apply the current request so the cap takes effect.
                    self.set_vf_level(cluster.name, self._vf[cluster.name])
                if self._obs is not None:
                    self._obs.on_dtm(self, throttled=True)
        elif temp <= dtm.release_temp_c:
            released = False
            for cluster in self.platform.clusters:
                top = len(cluster.vf_table) - 1
                if self._dtm_cap[cluster.name] < top:
                    self._dtm_cap[cluster.name] += 1
                    released = True
            if released and self._obs is not None:
                self._obs.on_dtm(self, throttled=False)

    def _run_controllers(self) -> None:
        obs = self._obs
        for controller in self._controllers:
            if self.now_s + 1e-12 >= controller.next_due_s:
                if obs is not None:
                    # Wall-clock latency of the callback is observability
                    # metadata (where does wall time go), not a result.
                    start_wall = time.perf_counter()  # repro-lint: ignore[DET003]
                    controller.callback(self)
                    obs.on_controller(
                        self,
                        controller.name,
                        time.perf_counter() - start_wall,  # repro-lint: ignore[DET003]
                    )
                else:
                    controller.callback(self)
                # Schedule from the previous due time, not from now_s:
                # anchoring to now_s accumulates one-dt drift per firing
                # whenever period_s is not a dt multiple.  If we fell more
                # than a full period behind, rebase instead of bursting.
                controller.next_due_s += controller.period_s
                if controller.next_due_s <= self.now_s + 1e-12:
                    controller.next_due_s = self.now_s + controller.period_s

    def _sanitize_step(self) -> None:
        """Per-step invariant checks (only when ``REPRO_SANITIZE=1``).

        Runs right after the thermal advance — before the DTM, controllers,
        or trace consume the state — and raises
        :class:`~repro.utils.sanitize.SanitizerError` on the first violated
        invariant: NaN/inf in the thermal state, implausible node
        temperatures, negative power injection, or non-advancing simulated
        time.  Cheap (a handful of reductions over ~a dozen nodes), but
        still gated so the default fast path pays nothing.
        """
        theta = self.thermal.theta
        if not np.all(np.isfinite(theta)):
            raise SanitizerError(
                f"non-finite thermal state at t={self.now_s:.4f} s: "
                f"theta={theta!r}"
            )
        ambient = self.thermal.ambient_temp_c
        temp_min = float(theta.min()) + ambient
        temp_max = float(theta.max()) + ambient
        if temp_min < MIN_PLAUSIBLE_TEMP_C or temp_max > MAX_PLAUSIBLE_TEMP_C:
            raise SanitizerError(
                f"thermal node out of plausible bounds "
                f"[{MIN_PLAUSIBLE_TEMP_C}, {MAX_PLAUSIBLE_TEMP_C}] degC at "
                f"t={self.now_s:.4f} s: min={temp_min:.2f}, max={temp_max:.2f}"
            )
        if float(self._power_vec.min()) < 0.0:
            raise SanitizerError(
                f"negative power injection at t={self.now_s:.4f} s: "
                f"min={float(self._power_vec.min()):.6f} W"
            )
        if not self.now_s > self._sanitize_prev_now_s:
            raise SanitizerError(
                f"simulated time did not advance: {self._sanitize_prev_now_s}"
                f" -> {self.now_s}"
            )
        self._sanitize_prev_now_s = self.now_s

    def _record_trace(self) -> None:
        if not self.trace.due(self.now_s):
            return
        temps = self.thermal.temperatures()
        running = self.running_processes()
        self.trace.record(
            now_s=self.now_s,
            sensor_temp_c=self.sensor_temp_c(),
            max_core_temp_c=self.max_core_temp_c(),
            total_power_w=self._last_power_total_w,
            vf_hz={name: lv.frequency_hz for name, lv in self._vf.items()},
            node_temps_c=temps,
            process_core={p.pid: p.core_id for p in running},
            process_ips={p.pid: p.smoothed_ips for p in running},
        )
