"""Discrete-time full-system simulator.

This package is the substrate that replaces the physical HiKey 970 board:
it executes application models on cores, advances the power and thermal
models, exposes exactly the observables the board exposes (perf counters,
core utilizations, one temperature sensor), and hosts the pluggable
resource-management techniques (TOP-IL, TOP-RL, GTS + Linux governors).

The kernel advances in fixed steps (default 10 ms).  Controllers —
scheduler, DVFS governor, migration policy, DTM — register with a period
and are invoked on their own grid, mirroring the paper's 50 ms DVFS loop
and 500 ms migration epoch.
"""

from repro.sim.process import Process, ProcessState
from repro.sim.kernel import Simulator, SimConfig, Controller
from repro.sim.trace import TraceRecorder, MigrationEvent

__all__ = [
    "Process",
    "ProcessState",
    "Simulator",
    "SimConfig",
    "Controller",
    "TraceRecorder",
    "MigrationEvent",
]
