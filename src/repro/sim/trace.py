"""Trace recording: time series of everything an experiment may report.

The recorder samples the simulator on a fixed grid (default every 100 ms of
simulated time) and keeps compact parallel lists.  Experiments post-process
these into the figures' series: temperature traces (Figs. 1/7), CPU time
per VF level (Fig. 10), and QoS statistics (Figs. 8/11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.tracer import TraceEvent
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MigrationEvent:
    """One executed migration: which process moved where, and when."""

    time_s: float
    pid: int
    app_name: str
    from_core: Optional[int]
    to_core: int


@dataclass
class TraceRecorder:
    """Fixed-rate sampler of simulator state.

    Attributes are parallel lists indexed by sample; ``vf_levels[cluster]``
    holds the frequency series of one cluster, ``core_temps[name]`` the
    ground-truth temperature series of one thermal node, and
    ``process_cores[pid]`` the core id (or -1) per sample.
    """

    sample_period_s: float = 0.1
    times: List[float] = field(default_factory=list)
    sensor_temp_c: List[float] = field(default_factory=list)
    max_core_temp_c: List[float] = field(default_factory=list)
    total_power_w: List[float] = field(default_factory=list)
    vf_levels: Dict[str, List[float]] = field(default_factory=dict)
    core_temps: Dict[str, List[float]] = field(default_factory=dict)
    process_cores: Dict[int, List[int]] = field(default_factory=dict)
    process_ips: Dict[int, List[float]] = field(default_factory=dict)
    migrations: List[MigrationEvent] = field(default_factory=list)
    _last_sample_time: Optional[float] = field(default=None, repr=False)

    def __post_init__(self):
        check_positive("sample_period_s", self.sample_period_s)

    def due(self, now_s: float) -> bool:
        """Whether a new sample should be taken at ``now_s``."""
        return (
            self._last_sample_time is None
            or now_s - self._last_sample_time >= self.sample_period_s - 1e-12
        )

    def record(
        self,
        now_s: float,
        sensor_temp_c: float,
        max_core_temp_c: float,
        total_power_w: float,
        vf_hz: Dict[str, float],
        node_temps_c: Dict[str, float],
        process_core: Dict[int, int],
        process_ips: Dict[int, float],
    ) -> None:
        """Append one sample (call only when :meth:`due`)."""
        self._last_sample_time = now_s
        self.times.append(now_s)
        self.sensor_temp_c.append(sensor_temp_c)
        self.max_core_temp_c.append(max_core_temp_c)
        self.total_power_w.append(total_power_w)
        for cluster, freq in vf_hz.items():
            self.vf_levels.setdefault(cluster, []).append(freq)
        for node, temp in node_temps_c.items():
            self.core_temps.setdefault(node, []).append(temp)
        known = set(self.process_cores) | set(process_core)
        for pid in known:
            series = self.process_cores.setdefault(pid, [-1] * (len(self.times) - 1))
            # Backfill pids that appear mid-run so all series stay aligned.
            while len(series) < len(self.times) - 1:
                series.append(-1)
            series.append(process_core.get(pid, -1))
        known_ips = set(self.process_ips) | set(process_ips)
        for pid in known_ips:
            series = self.process_ips.setdefault(pid, [0.0] * (len(self.times) - 1))
            while len(series) < len(self.times) - 1:
                series.append(0.0)
            series.append(process_ips.get(pid, 0.0))

    def record_migration(self, event: MigrationEvent) -> None:
        self.migrations.append(event)

    def migration_trace_events(self) -> List[TraceEvent]:
        """The recorded migrations as observability trace events.

        Bridges the always-on figure recorder into the opt-in tracing
        layer: converts every :class:`MigrationEvent` (true migrations and
        arrivals alike) into the same instant-event shape
        :class:`~repro.obs.instrument.SimObserver` emits, so a run traced
        after the fact (or a loaded pickle) can still be exported with
        :func:`repro.obs.export.write_chrome_trace`.
        """
        events: List[TraceEvent] = []
        for m in self.migrations:
            name = "sched.arrival" if m.from_core is None else "sched.migration"
            events.append(
                TraceEvent(
                    name=name,
                    cat="migration",
                    ph="i",
                    ts_s=m.time_s,
                    args={
                        "pid": m.pid,
                        "app": m.app_name,
                        "from_core": m.from_core,
                        "to_core": m.to_core,
                    },
                )
            )
        return events

    # --- post-processing ---------------------------------------------------------
    def mean_sensor_temp(self) -> float:
        """Time-average of the sensor temperature over the run."""
        if not self.sensor_temp_c:
            raise ValueError("trace is empty")
        return float(np.mean(self.sensor_temp_c))

    def peak_sensor_temp(self) -> float:
        if not self.sensor_temp_c:
            raise ValueError("trace is empty")
        return float(np.max(self.sensor_temp_c))

    def cluster_of_samples(self, pid: int, core_to_cluster: Dict[int, str]) -> List[str]:
        """Map a pid's core series to cluster names ('' when not running)."""
        return [
            core_to_cluster.get(core, "") for core in self.process_cores.get(pid, [])
        ]
