"""Deterministic simulator checkpoint/restore.

A checkpoint is a pickled deep snapshot of the *complete* kernel state —
RC thermal state vector, pending-event heap, per-process progress/QoS/EMA
accounting, every RNG stream state (sensor, faults), controller and
degradation state machines, obs counters — wrapped in a versioned,
checksummed envelope.  The contract is bit-identity::

    run-to-T  ==  run-to-T/2  +  snapshot  +  restore  +  run-to-T

which holds because taking a snapshot is a pure read (no RNG draw, no
state mutation) and restoring unpickles the exact object graph.  The
property tests in ``tests/property/test_checkpoint_equivalence.py``
enforce this on all three zoo platforms, with and without the sanitizer.

This module is deliberately stdlib-only and does not import the kernel at
runtime — the kernel imports *us* for :meth:`Simulator.snapshot`, and the
store's :class:`repro.store.handles.CheckpointHandle` wraps the envelope
as a cacheable artifact.

Env carriers (read by ``workloads/runner.py``, inherited by forked grid
workers exactly like ``REPRO_FAULTS``):

``REPRO_CHECKPOINT_DIR``
    Cache directory for periodic checkpoints; unset disables
    checkpointing entirely (the default — checkpoint-disabled runs are
    bit-identical to pre-checkpoint behavior).
``REPRO_CHECKPOINT_PERIOD_S``
    Simulated seconds between checkpoints (default 30.0).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator

CHECKPOINT_SCHEMA_VERSION = 1

CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
CHECKPOINT_PERIOD_ENV = "REPRO_CHECKPOINT_PERIOD_S"
DEFAULT_CHECKPOINT_PERIOD_S = 30.0


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken or restored.

    Raised on unpicklable simulator state (snapshot) and on version or
    checksum mismatches (restore).  Callers that resume opportunistically
    — the runner, the fork pool — catch this and fall back to a fresh
    run; the checkpoint is an optimization, never a correctness input.
    """


@dataclass(frozen=True)
class SimCheckpoint:
    """Versioned, checksummed envelope around one pickled simulator.

    ``payload`` is the raw pickle of the simulator object graph;
    ``checksum`` is its SHA-256 hex digest, verified before unpickling so
    a torn or corrupted artifact fails loudly instead of resuming from
    garbage.  ``meta`` carries identification only (platform, label,
    sim-time) — nothing in it feeds the restore.
    """

    version: int
    sim_time_s: float
    payload: bytes
    checksum: str
    meta: Dict[str, Any] = field(default_factory=dict)


def _digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def snapshot_simulator(
    sim: "Simulator", meta: Optional[Dict[str, Any]] = None
) -> SimCheckpoint:
    """Capture the complete kernel state as a checksummed envelope.

    Pure read: no RNG stream is advanced and no simulator attribute is
    touched, so a run that takes snapshots is bit-identical to one that
    does not.

    Raises:
        CheckpointError: if the simulator graph is not picklable (e.g. a
            controller callback that is a lambda or nested closure —
            use a module-level callable class instead, see
            ``repro.governors.qos_dvfs.ChargedDVFSCallback``).
    """
    try:
        payload = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"simulator state is not picklable: {exc!r}; controller "
            "callbacks and placement policies must be module-level "
            "callables, not closures or lambdas"
        ) from exc
    return SimCheckpoint(
        version=CHECKPOINT_SCHEMA_VERSION,
        sim_time_s=sim.now_s,
        payload=payload,
        checksum=_digest(payload),
        meta=dict(meta or {}),
    )


def restore_simulator(checkpoint: SimCheckpoint) -> "Simulator":
    """Rebuild the simulator from an envelope, verifying it first.

    Raises:
        CheckpointError: on schema-version mismatch, checksum mismatch
            (torn/corrupted payload), or an unpicklable payload.
    """
    if checkpoint.version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema version {checkpoint.version} != "
            f"{CHECKPOINT_SCHEMA_VERSION}"
        )
    if _digest(checkpoint.payload) != checkpoint.checksum:
        raise CheckpointError(
            "checkpoint payload checksum mismatch (torn or corrupted)"
        )
    try:
        sim = pickle.loads(checkpoint.payload)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint payload failed to unpickle: {exc!r}"
        ) from exc
    return sim  # type: ignore[no-any-return]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where periodic checkpoints are written.

    ``directory`` hosts an :class:`~repro.store.store.ArtifactStore`
    keyed by the run's full configuration; ``period_s`` is the simulated
    (not wall) time between snapshots, so the cadence is deterministic
    and scheduling-independent.
    """

    directory: str
    period_s: float = DEFAULT_CHECKPOINT_PERIOD_S

    def __post_init__(self) -> None:
        if not self.directory:
            raise ValueError("CheckpointPolicy.directory must be non-empty")
        if self.period_s <= 0.0:
            raise ValueError("CheckpointPolicy.period_s must be > 0")

    @classmethod
    def from_env(cls) -> Optional["CheckpointPolicy"]:
        """Policy from ``REPRO_CHECKPOINT_DIR``/``_PERIOD_S``, or None.

        Unset (or empty) directory means checkpointing is off — the
        common case, and the one whose behavior must stay bit-identical
        to the pre-checkpoint kernel.
        """
        # Checkpoint config is result-neutral by the bit-identity
        # contract (snapshots are pure reads; a checkpointed run equals
        # a checkpoint-disabled one), so it must NOT fold into keys.
        directory = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()  # repro-lint: ignore[KEY001]
        if not directory:
            return None
        period_text = os.environ.get(CHECKPOINT_PERIOD_ENV, "").strip()  # repro-lint: ignore[KEY001]
        period_s = float(period_text) if period_text else (
            DEFAULT_CHECKPOINT_PERIOD_S
        )
        return cls(directory=directory, period_s=period_s)
