"""Feature extraction for IL-based migration (Table 2 of the paper).

The 21 features describe, for one application of interest (AoI):

===========================  =====  ==========================================
feature                      count  aspect
===========================  =====  ==========================================
AoI current QoS (IPS)            1  (a) AoI characteristics
AoI L2D accesses / s             1  (a)
AoI current mapping, one-hot     8  (a)
AoI QoS target (IPS)             1  (b)
f_tilde_{x \\ AoI} / f_x          2  (c) background VF needs per cluster
core utilizations                8  (c)
===========================  =====  ==========================================

The same extractor serves design time (values sourced from traces and the
sweep) and run time (values sourced from the simulator's perf-counter view),
which is what makes the oracle demonstrations match the run-time input
distribution.  IPS values are normalized to GIPS and L2D rates to 1e8/s so
all features are O(1).
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.governors.qos_dvfs import estimate_min_level
from repro.platform import Platform
from repro.sim.kernel import Simulator
from repro.sim.process import Process

IPS_SCALE = 1e9
L2D_SCALE = 1e8

#: Total feature-vector length for an 8-core, 2-cluster platform.
FEATURE_COUNT = 21


def feature_names(platform: Platform) -> List[str]:
    """Human-readable feature names in vector order."""
    names = ["aoi_qos_gips", "aoi_l2d_1e8_per_s", "aoi_qos_target_gips"]
    names += [f"aoi_on_core{c}" for c in range(platform.n_cores)]
    names += [f"f_wo_aoi_over_f_{cl.name}" for cl in platform.clusters]
    names += [f"util_core{c}" for c in range(platform.n_cores)]
    return names


class FeatureExtractor:
    """Builds the Table-2 feature vector for one AoI."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self.n_features = 3 + platform.n_cores + len(platform.clusters) + platform.n_cores

    # ------------------------------------------------------------- generic form
    def build(
        self,
        aoi_ips: float,
        aoi_l2d_rate: float,
        aoi_qos_target: float,
        aoi_core: int,
        f_wo_aoi_hz: Mapping[str, float],
        f_current_hz: Mapping[str, float],
        core_utilization: Mapping[int, float],
    ) -> np.ndarray:
        """Assemble a feature vector from raw values.

        ``f_wo_aoi_hz`` is the estimated required VF level per cluster if
        the AoI were absent; ``f_current_hz`` the current per-cluster VF.
        """
        if not 0 <= aoi_core < self.platform.n_cores:
            raise ValueError(f"aoi_core {aoi_core} out of range")
        vec = np.zeros(self.n_features)
        vec[0] = aoi_ips / IPS_SCALE
        vec[1] = aoi_l2d_rate / L2D_SCALE
        vec[2] = aoi_qos_target / IPS_SCALE
        vec[3 + aoi_core] = 1.0
        offset = 3 + self.platform.n_cores
        for i, cluster in enumerate(self.platform.clusters):
            current = f_current_hz[cluster.name]
            if current <= 0:
                raise ValueError(f"current frequency of {cluster.name} must be > 0")
            vec[offset + i] = f_wo_aoi_hz[cluster.name] / current
        offset += len(self.platform.clusters)
        for c in range(self.platform.n_cores):
            vec[offset + c] = float(core_utilization.get(c, 0.0))
        return vec

    # ------------------------------------------------------------ run-time form
    def required_level_without(
        self, sim: Simulator, aoi: Process
    ) -> Dict[str, float]:
        """Estimate f_tilde_{x \\ AoI} per cluster from run-time counters.

        For each cluster the requirement is the max of Eq. 1 over the
        *other* running applications mapped to it; an otherwise-empty
        cluster needs only its lowest level.
        """
        result: Dict[str, float] = {}
        for cluster in self.platform.clusters:
            needed = cluster.vf_table.min_level.frequency_hz
            for p in sim.running_processes():
                if p.pid == aoi.pid:
                    continue
                if self.platform.cluster_of_core(p.core_id).name != cluster.name:
                    continue
                level = estimate_min_level(
                    p.smoothed_ips,
                    sim.vf_level(cluster.name).frequency_hz,
                    p.qos_target_ips,
                    cluster.vf_table,
                )
                needed = max(needed, level.frequency_hz)
            result[cluster.name] = needed
        return result

    def from_simulator(self, sim: Simulator, aoi: Process) -> np.ndarray:
        """Extract the run-time feature vector for ``aoi``."""
        if not aoi.is_running():
            raise ValueError(f"AoI pid {aoi.pid} is not running")
        f_wo_aoi = self.required_level_without(sim, aoi)
        f_current = {
            cl.name: sim.vf_level(cl.name).frequency_hz
            for cl in self.platform.clusters
        }
        utils = {
            c: sim.core_utilization(c) for c in range(self.platform.n_cores)
        }
        return self.build(
            aoi_ips=aoi.smoothed_ips,
            aoi_l2d_rate=aoi.smoothed_l2d_rate,
            aoi_qos_target=aoi.qos_target_ips,
            aoi_core=aoi.core_id,
            f_wo_aoi_hz=f_wo_aoi,
            f_current_hz=f_current,
            core_utilization=utils,
        )
