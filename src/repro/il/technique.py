"""TOP-IL as an installable technique: IL migration + QoS DVFS loop."""

from __future__ import annotations

from typing import Optional

from repro.governors.base import Technique
from repro.governors.qos_dvfs import ChargedDVFSCallback, QoSDVFSControlLoop
from repro.il.policy import TopILMigrationPolicy
from repro.nn.layers import Sequential
from repro.npu.overhead import ManagementOverheadModel
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def _least_loaded_placement(sim: Simulator, process: Process) -> int:
    """Arrivals start on the emptiest core; IL migration refines within
    one epoch (500 ms), so the initial placement only needs to be sane."""
    loads = [
        (len(sim.processes_on_core(c)), c) for c in range(sim.platform.n_cores)
    ]
    loads.sort()
    return loads[0][1]


class TopIL(Technique):
    """The paper's contribution, ready to attach to a simulator.

    The DVFS control loop (50 ms) and migration policy (500 ms) share state
    so the loop can skip its two post-migration iterations.  The overhead
    model charges the manager's CPU time on core 0, so the reported results
    inherently contain the technique's own overhead — as on the board.
    """

    name = "TOP-IL"

    def __init__(
        self,
        model: Sequential,
        migration_period_s: float = 0.5,
        dvfs_period_s: float = 0.05,
        overhead_model: Optional[ManagementOverheadModel] = None,
    ):
        self.dvfs_loop = QoSDVFSControlLoop(period_s=dvfs_period_s)
        self.migration = TopILMigrationPolicy(
            model=model,
            period_s=migration_period_s,
            dvfs_loop=self.dvfs_loop,
            overhead_model=overhead_model,
        )
        self._overhead = self.migration.overhead_model

    def attach(self, sim: Simulator) -> None:
        """Install the migration policy + DVFS loop on ``sim``.

        Registers two periodic controllers — ``top-il-migration`` (500 ms)
        and ``qos-dvfs`` (50 ms) — whose names label the observability
        layer's controller spans and latency histograms when tracing is
        enabled (``REPRO_TRACE=1``), and replaces the arrival placement
        policy with least-loaded-core.
        """
        sim.placement_policy = _least_loaded_placement
        if sim.obs is not None:
            sim.obs.meta["technique"] = self.name
        self.dvfs_loop.attach(sim)
        self.migration.attach(sim)
        # Replace the registered controller callback with the charged one
        # (a picklable module-level class, so checkpointing can snapshot
        # a simulator that carries this technique).
        sim.remove_controller("qos-dvfs")
        sim.add_controller(
            "qos-dvfs",
            self.dvfs_loop.period_s,
            ChargedDVFSCallback(self.dvfs_loop, self._overhead),
        )
