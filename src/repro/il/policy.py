"""Run-time TOP-IL migration policy (Sec. 5.1).

Every migration epoch (500 ms) the policy:

1. extracts one feature vector per running application (each in turn as
   the AoI),
2. performs a single **batched** NN inference — on the board this is one
   non-blocking HiAI DDK call to the NPU; here numpy computes the values
   while :class:`~repro.npu.latency.NPUInferenceLatency` accounts the time
   the call would take,
3. reads the predicted rating ``l~_{k,c}`` of mapping application ``k`` to
   core ``c``, and
4. executes the single migration with the largest improvement over the
   current mapping (Eq. 5), if any improvement exceeds a small hysteresis
   threshold.

Only one application migrates per epoch: simultaneous migrations would
interact unpredictably and blow up the action space (Sec. 5.1).  The DVFS
control loop is notified so it skips its two post-migration iterations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.governors.qos_dvfs import QoSDVFSControlLoop
from repro.il.features import FeatureExtractor
from repro.nn.layers import Sequential
from repro.npu.overhead import ManagementOverheadModel
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.utils.validation import check_non_negative, check_positive


class TopILMigrationPolicy:
    """NN-based migration with batched (NPU) inference."""

    def __init__(
        self,
        model: Sequential,
        period_s: float = 0.5,
        improvement_threshold: float = 0.02,
        dvfs_loop: Optional[QoSDVFSControlLoop] = None,
        overhead_model: Optional[ManagementOverheadModel] = None,
    ):
        check_positive("period_s", period_s)
        check_non_negative("improvement_threshold", improvement_threshold)
        self.model = model
        self.period_s = period_s
        self.improvement_threshold = improvement_threshold
        self.dvfs_loop = dvfs_loop
        self.overhead_model = overhead_model or ManagementOverheadModel()
        self._extractor: Optional[FeatureExtractor] = None
        self.invocations = 0
        self.migrations_executed = 0
        # Controller deadline: the migration epoch must complete within
        # one DVFS period, or it delays the next actuation.  Repeated
        # misses drive the safe-mode degradation path (faults layer).
        self.deadline_s = 0.05
        self.safe_mode_skips = 0

    # ------------------------------------------------------------------ inference
    def rate_mappings(
        self, sim: Simulator, processes: List[Process]
    ) -> np.ndarray:
        """Predicted ratings, one row per process (as AoI), one col per core."""
        if self._extractor is None:
            self._extractor = FeatureExtractor(sim.platform)
        batch = np.vstack(
            [self._extractor.from_simulator(sim, p) for p in processes]
        )
        return self.model.forward(batch)

    def best_migration(
        self, sim: Simulator, processes: List[Process], ratings: np.ndarray
    ) -> Optional[Tuple[int, int, float]]:
        """Eq. 5: ``(pid, core, improvement)`` of the best migration.

        Candidate targets are the process's own core and currently free
        cores; cores occupied by other applications are excluded (their
        trained rating is ~0 and sharing a core would hurt QoS).
        """
        free = set(sim.free_cores())
        best: Optional[Tuple[int, int, float]] = None
        for row, process in enumerate(processes):
            current_core = process.core_id
            current_rating = float(ratings[row, current_core])
            for core in free:
                improvement = float(ratings[row, core]) - current_rating
                if best is None or improvement > best[2]:
                    best = (process.pid, core, improvement)
        return best

    # ------------------------------------------------------------------ faults
    def _degraded_invocation_s(self, sim: Simulator, n_apps: int) -> float:
        """Invocation cost under the fault layer (NPU may be down).

        Rolls the NPU fault dice when the NPU is in use (or due a
        re-probe), charges the CPU-fallback inference cost while
        degraded, adds any injected deadline stall, and feeds the
        deadline-miss state machine.  Called only when ``sim.faults``
        is attached.
        """
        faults = sim.faults
        assert faults is not None
        deg = faults.degradation
        now_s = sim.now_s
        if n_apps == 0:
            # No inference call happens, so no NPU fault opportunity.
            cost_s = self.overhead_model.migration_invocation_s(0, self.model)
        elif deg.npu_mode(now_s) == "npu":
            fault = faults.injector.npu_fault(now_s)
            if fault is None:
                deg.record_npu_success(now_s)
                cost_s = self.overhead_model.migration_invocation_s(
                    n_apps, self.model
                )
            else:
                # The failed/hung call's time is wasted, then the epoch
                # completes on the CPU fallback path.
                deg.record_npu_failure(now_s, fault.kind)
                npu = self.overhead_model.inference
                wasted_s = (
                    npu.timed_out_call_s()
                    if fault.kind == "npu_timeout"
                    else npu.failed_call_s()
                )
                deg.cpu_fallback_invocations += 1
                faults.count("npu.cpu_fallback")
                cost_s = wasted_s + self.overhead_model.migration_invocation_cpu_s(
                    n_apps, self.model
                )
        else:
            deg.cpu_fallback_invocations += 1
            faults.count("npu.cpu_fallback")
            cost_s = self.overhead_model.migration_invocation_cpu_s(
                n_apps, self.model
            )
        if faults.injector.deadline_overrun(now_s):
            cost_s += self.deadline_s
        if cost_s > self.deadline_s:
            deg.record_deadline_miss(now_s)
        else:
            deg.record_deadline_ok(now_s)
        return cost_s

    # ------------------------------------------------------------------ epoch
    def __call__(self, sim: Simulator) -> None:
        self.invocations += 1
        processes = sim.running_processes()
        if sim.faults is None:
            sim.account_overhead(
                "migration",
                self.overhead_model.migration_invocation_s(
                    len(processes), self.model
                ),
            )
        else:
            sim.account_overhead(
                "migration", self._degraded_invocation_s(sim, len(processes))
            )
            if sim.faults.degradation.in_safe_mode(sim.now_s):
                # DVFS-only safe mode: no inference, no migration, until
                # the exponential hold expires (self-healing).
                self.safe_mode_skips += 1
                return
        if not processes:
            return
        ratings = self.rate_mappings(sim, processes)
        best = self.best_migration(sim, processes, ratings)
        if best is None:
            return
        pid, core, improvement = best
        if improvement <= self.improvement_threshold:
            return
        sim.migrate(pid, core)
        self.migrations_executed += 1
        if self.dvfs_loop is not None:
            self.dvfs_loop.notify_migration()

    def attach(self, sim: Simulator, name: str = "top-il-migration") -> None:
        sim.add_controller(name, self.period_s, self)
