"""Run-time TOP-IL migration policy (Sec. 5.1).

Every migration epoch (500 ms) the policy:

1. extracts one feature vector per running application (each in turn as
   the AoI),
2. performs a single **batched** NN inference — on the board this is one
   non-blocking HiAI DDK call to the NPU; here numpy computes the values
   while :class:`~repro.npu.latency.NPUInferenceLatency` accounts the time
   the call would take,
3. reads the predicted rating ``l~_{k,c}`` of mapping application ``k`` to
   core ``c``, and
4. executes the single migration with the largest improvement over the
   current mapping (Eq. 5), if any improvement exceeds a small hysteresis
   threshold.

Only one application migrates per epoch: simultaneous migrations would
interact unpredictably and blow up the action space (Sec. 5.1).  The DVFS
control loop is notified so it skips its two post-migration iterations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.governors.qos_dvfs import QoSDVFSControlLoop
from repro.il.features import FeatureExtractor
from repro.nn.layers import Sequential
from repro.npu.overhead import ManagementOverheadModel
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.utils.validation import check_non_negative, check_positive


class TopILMigrationPolicy:
    """NN-based migration with batched (NPU) inference."""

    def __init__(
        self,
        model: Sequential,
        period_s: float = 0.5,
        improvement_threshold: float = 0.02,
        dvfs_loop: Optional[QoSDVFSControlLoop] = None,
        overhead_model: Optional[ManagementOverheadModel] = None,
    ):
        check_positive("period_s", period_s)
        check_non_negative("improvement_threshold", improvement_threshold)
        self.model = model
        self.period_s = period_s
        self.improvement_threshold = improvement_threshold
        self.dvfs_loop = dvfs_loop
        self.overhead_model = overhead_model or ManagementOverheadModel()
        self._extractor: Optional[FeatureExtractor] = None
        self.invocations = 0
        self.migrations_executed = 0

    # ------------------------------------------------------------------ inference
    def rate_mappings(
        self, sim: Simulator, processes: List[Process]
    ) -> np.ndarray:
        """Predicted ratings, one row per process (as AoI), one col per core."""
        if self._extractor is None:
            self._extractor = FeatureExtractor(sim.platform)
        batch = np.vstack(
            [self._extractor.from_simulator(sim, p) for p in processes]
        )
        return self.model.forward(batch)

    def best_migration(
        self, sim: Simulator, processes: List[Process], ratings: np.ndarray
    ) -> Optional[Tuple[int, int, float]]:
        """Eq. 5: ``(pid, core, improvement)`` of the best migration.

        Candidate targets are the process's own core and currently free
        cores; cores occupied by other applications are excluded (their
        trained rating is ~0 and sharing a core would hurt QoS).
        """
        free = set(sim.free_cores())
        best: Optional[Tuple[int, int, float]] = None
        for row, process in enumerate(processes):
            current_core = process.core_id
            current_rating = float(ratings[row, current_core])
            for core in free:
                improvement = float(ratings[row, core]) - current_rating
                if best is None or improvement > best[2]:
                    best = (process.pid, core, improvement)
        return best

    # ------------------------------------------------------------------ epoch
    def __call__(self, sim: Simulator) -> None:
        self.invocations += 1
        processes = sim.running_processes()
        sim.account_overhead(
            "migration",
            self.overhead_model.migration_invocation_s(len(processes), self.model),
        )
        if not processes:
            return
        ratings = self.rate_mappings(sim, processes)
        best = self.best_migration(sim, processes, ratings)
        if best is None:
            return
        pid, core, improvement = best
        if improvement <= self.improvement_threshold:
            return
        sim.migrate(pid, core)
        self.migrations_executed += 1
        if self.dvfs_loop is not None:
            self.dvfs_loop.notify_migration()

    def attach(self, sim: Simulator, name: str = "top-il-migration") -> None:
        sim.add_controller(name, self.period_s, self)
