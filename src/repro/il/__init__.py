"""TOP-IL: imitation-learning-based application migration (the paper's core).

The package implements the full design-time and run-time pipeline:

* :mod:`repro.il.features` — the feature vector of Table 2 (21 features),
  extracted identically from design-time traces and run-time observables;
* :mod:`repro.il.traces` — oracle trace collection over per-cluster VF
  grids (Fig. 2, top): the expensive, privileged design-time measurements;
* :mod:`repro.il.dataset` — QoS-target sweeping and soft-label generation
  (Eq. 4), turning traces into training examples (Fig. 2, bottom);
* :mod:`repro.il.policy` — the run-time migration policy: one batched NN
  inference per epoch with every application as the AoI, executing the
  single migration with the largest predicted rating improvement (Eq. 5);
* :mod:`repro.il.technique` — TOP-IL as an installable technique (policy +
  the QoS DVFS control loop);
* :mod:`repro.il.pipeline` — end-to-end: scenarios -> traces -> dataset ->
  three models trained with different seeds.
"""

from repro.il.features import FeatureExtractor, FEATURE_COUNT, feature_names
from repro.il.traces import TraceCollector, TraceScenario, TraceGrid, TracePoint
from repro.il.dataset import DatasetBuilder, LabelConfig, ILDataset
from repro.il.policy import TopILMigrationPolicy
from repro.il.technique import TopIL
from repro.il.pipeline import ILPipeline, PipelineConfig, generate_scenarios

__all__ = [
    "FeatureExtractor",
    "FEATURE_COUNT",
    "feature_names",
    "TraceCollector",
    "TraceScenario",
    "TraceGrid",
    "TracePoint",
    "DatasetBuilder",
    "LabelConfig",
    "ILDataset",
    "TopILMigrationPolicy",
    "TopIL",
    "ILPipeline",
    "PipelineConfig",
    "generate_scenarios",
]
