"""Oracle trace collection (design time, Fig. 2 top).

A *scenario* fixes the AoI application and the background (which
applications occupy which cores).  For every free core ``j`` and every
combination of per-cluster VF levels from a reduced grid, the collector
runs the simulated platform and records the AoI's steady performance, its
L2D access rate, and the **peak temperature** during the AoI window —
exactly the quantities the paper's measurement campaign obtains from the
instrumented board.

The paper's cost optimizations are reproduced:

* the VF grid is reduced (:func:`repro.platform.hikey.reduced_vf_grid`);
* QoS targets are *not* enumerated here — they are swept afterwards over
  the same traces (:mod:`repro.il.dataset`), avoiding redundant runs;
* the AoI window is truncated (the paper stops after 1e10 AoI
  instructions), long enough for the mapping-dependent temperature
  differences to develop;
* the background runs long before the AoI starts for a consistent initial
  temperature (the paper warms up for 2 min; we jump-start the thermal
  state to the background's steady state, which is what the warm-up
  converges to);
* active (fan) cooling avoids DTM interference, like the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.adapt import adapt_app_for_platform
from repro.apps.catalog import get_app
from repro.platform import Platform, VFLevel
from repro.platform.hikey import reduced_vf_grid
from repro.power import PowerModel
from repro.sim.kernel import SimConfig, Simulator
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.validation import check_positive

#: The paper truncates each trace after 1e10 AoI instructions.
DEFAULT_AOI_INSTRUCTIONS = 1.0e10


@dataclass(frozen=True)
class TraceScenario:
    """One combination of AoI and background placement.

    ``background`` maps core id -> application name.  Cores not in the
    mapping are free; the AoI is placed on each free core in turn.
    """

    aoi_app: str
    background: Tuple[Tuple[int, str], ...]

    def background_dict(self) -> Dict[int, str]:
        return dict(self.background)

    def free_cores(self, platform: Platform) -> List[int]:
        occupied = {core for core, _ in self.background}
        return [c for c in range(platform.n_cores) if c not in occupied]


@dataclass(frozen=True)
class TracePoint:
    """One trace: AoI on ``aoi_core`` at the given per-cluster VF levels."""

    aoi_core: int
    f_hz: Tuple[Tuple[str, float], ...]  # cluster name -> frequency
    aoi_ips: float
    aoi_l2d_rate: float
    peak_temp_c: float

    def frequency(self, cluster_name: str) -> float:
        return dict(self.f_hz)[cluster_name]


@dataclass
class TraceGrid:
    """All trace points of one scenario, indexed for the QoS sweep."""

    scenario: TraceScenario
    vf_grid: Dict[str, List[float]]
    points: Dict[Tuple[int, Tuple[float, ...]], TracePoint] = field(
        default_factory=dict
    )

    def key(self, aoi_core: int, freqs: Dict[str, float]) -> Tuple[int, Tuple[float, ...]]:
        ordered = tuple(freqs[name] for name in sorted(freqs))
        return (aoi_core, ordered)

    def add(self, point: TracePoint) -> None:
        freqs = dict(point.f_hz)
        self.points[self.key(point.aoi_core, freqs)] = point

    def lookup(self, aoi_core: int, freqs: Dict[str, float]) -> TracePoint:
        return self.points[self.key(aoi_core, freqs)]

    def aoi_cores(self) -> List[int]:
        return sorted({core for core, _ in self.points})

    def max_aoi_ips(self) -> float:
        if not self.points:
            raise ValueError("trace grid is empty")
        return max(p.aoi_ips for p in self.points.values())


class TraceCollector:
    """Runs the simulated platform to collect a :class:`TraceGrid`."""

    def __init__(
        self,
        platform: Platform,
        cooling: CoolingConfig = FAN_COOLING,
        vf_levels_per_cluster: int = 4,
        aoi_instructions: float = DEFAULT_AOI_INSTRUCTIONS,
        max_window_s: float = 8.0,
        min_window_s: float = 3.0,
        dt_s: float = 0.01,
    ):
        check_positive("aoi_instructions", aoi_instructions)
        check_positive("max_window_s", max_window_s)
        self.platform = platform
        self.cooling = cooling
        self.vf_grid = reduced_vf_grid(platform, vf_levels_per_cluster)
        self.aoi_instructions = aoi_instructions
        self.max_window_s = max_window_s
        self.min_window_s = min_window_s
        self.dt_s = dt_s

    def grid_frequencies(self) -> Dict[str, List[float]]:
        return {
            name: [lv.frequency_hz for lv in levels]
            for name, levels in self.vf_grid.items()
        }

    # ------------------------------------------------------------------ one trace
    def run_trace(
        self,
        scenario: TraceScenario,
        aoi_core: int,
        vf: Dict[str, VFLevel],
    ) -> TracePoint:
        """Execute one trace and extract (IPS, L2D rate, peak temperature)."""
        sim = Simulator(
            self.platform,
            self.cooling,
            power_model=PowerModel(self.platform),
            config=SimConfig(dt_s=self.dt_s, model_overhead_on_core=None),
            sensor_noise_std_c=0.0,
        )
        for name, level in vf.items():
            sim.set_vf_level(name, level)

        # Background placement (fixed for the whole trace).
        placements: Dict[int, int] = {}
        pid_order: List[int] = []
        for core, app_name in scenario.background_dict().items():
            pid = sim.submit(get_app(app_name), qos_target_ips=1.0, arrival_time_s=0.0)
            placements[pid] = core
            pid_order.append(pid)
        # Adapted here (not just inside submit) because the window-size
        # estimate below queries the model for this platform's clusters.
        aoi_app = adapt_app_for_platform(
            get_app(scenario.aoi_app), self.platform
        )
        aoi_pid = sim.submit(aoi_app, qos_target_ips=1.0, arrival_time_s=0.0)
        placements[aoi_pid] = aoi_core
        sim.placement_policy = lambda s, p: placements[p.pid]

        # Jump-start thermal state: run a probe step to get power, then set
        # the network to the corresponding steady state (the 2 min warm-up).
        sim.step()
        warm = sim.thermal.steady_state(
            self._background_power(sim, exclude_pid=aoi_pid)
        )
        sim.thermal.set_temperatures(warm)
        sim.sensor.reset()

        # Observation window: 1e10 AoI instructions, clamped to a sane range.
        aoi = sim.process(aoi_pid)
        cluster = self.platform.cluster_of_core(aoi_core)
        ips_estimate = aoi_app.ips(cluster.name, vf[cluster.name].frequency_hz)
        window = min(
            self.max_window_s,
            max(self.min_window_s, self.aoi_instructions / ips_estimate),
        )
        # The oracle observes the same thermal-zone sensor the run-time
        # policy is judged by (the board has no per-core sensors).
        instr_start = aoi.instructions_done
        peak = sim.zone_temp_c()
        steps = int(round(window / self.dt_s))
        for _ in range(steps):
            sim.step()
            peak = max(peak, sim.zone_temp_c())

        elapsed = steps * self.dt_s
        ips = (aoi.instructions_done - instr_start) / elapsed
        l2d_rate = ips * aoi_app.params_at(cluster.name, aoi.instructions_done)[1] / 1.0
        return TracePoint(
            aoi_core=aoi_core,
            f_hz=tuple(sorted((n, lv.frequency_hz) for n, lv in vf.items())),
            aoi_ips=ips,
            aoi_l2d_rate=l2d_rate,
            peak_temp_c=peak,
        )

    def _background_power(self, sim: Simulator, exclude_pid: int) -> Dict[str, float]:
        """Per-block power of the background alone (for the warm start)."""
        activity: Dict[int, float] = {}
        for p in sim.running_processes():
            if p.pid == exclude_pid:
                continue
            cluster = sim.platform.cluster_of_core(p.core_id)
            params, _ = p.app.params_at(cluster.name, p.instructions_done)
            activity[p.core_id] = params.activity
        ambient = sim.platform.ambient_temp_c
        temps = {c: ambient for c in range(sim.platform.n_cores)}
        breakdown = sim.power_model.compute(sim.vf_levels(), activity, temps)
        return dict(breakdown.per_block)

    # ------------------------------------------------------------------ full grid
    def collect(
        self,
        scenario: TraceScenario,
        aoi_cores: Optional[Sequence[int]] = None,
    ) -> TraceGrid:
        """Collect the full (core x VF grid) trace set for ``scenario``."""
        free = scenario.free_cores(self.platform)
        if not free:
            raise ValueError("scenario has no free core for the AoI")
        cores = list(aoi_cores) if aoi_cores is not None else free
        for c in cores:
            if c not in free:
                raise ValueError(f"core {c} is occupied by background")
        grid = TraceGrid(scenario=scenario, vf_grid=self.grid_frequencies())
        cluster_names = sorted(self.vf_grid)
        for core in cores:
            for combo in _product([self.vf_grid[n] for n in cluster_names]):
                vf = dict(zip(cluster_names, combo))
                grid.add(self.run_trace(scenario, core, vf))
        return grid


def _product(level_lists: List[List[VFLevel]]):
    """Cartesian product over per-cluster level lists."""
    if not level_lists:
        yield ()
        return
    head, *tail = level_lists
    for level in head:
        for rest in _product(tail):
            yield (level,) + rest
