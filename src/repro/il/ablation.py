"""Ablation utilities for the design choices DESIGN.md calls out.

The paper makes several silent design decisions worth quantifying:

* **soft labels** (Eq. 4) instead of one-hot labels on the coolest core;
* the **f_tilde_{x \\ AoI} features** (aspect c of Table 2) that tell the
  model how much each cluster's VF level could drop without the AoI;
* migrating **one application per epoch** instead of greedily executing
  every predicted improvement.

This module provides the pieces the ablation experiments need: a
feature-masking model wrapper, a masked training helper, and a greedy
multi-migration policy variant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.il.dataset import ILDataset
from repro.il.policy import TopILMigrationPolicy
from repro.nn.layers import Sequential, build_mlp
from repro.nn.training import TrainingConfig, train_model
from repro.sim.kernel import Simulator
from repro.utils.rng import RandomSource

#: Feature indices of the f_tilde_{x\AoI}/f_x ratios on the 8-core,
#: 2-cluster platform (see repro.il.features.feature_names).
F_WO_AOI_FEATURES = (11, 12)
#: Feature index of the AoI's L2D access rate.
L2D_FEATURE = (1,)


class FeatureMaskedModel:
    """Wraps a model, zeroing selected input features before inference.

    Training and run-time inference must see the same masking, so the
    wrapper is used in both places: :func:`train_masked_model` trains the
    inner model on masked features, and the wrapper re-applies the mask to
    every run-time batch.
    """

    def __init__(self, model: Sequential, masked_features: Sequence[int]):
        self.model = model
        self.masked_features = tuple(masked_features)

    def mask(self, features: np.ndarray) -> np.ndarray:
        masked = np.array(np.atleast_2d(features), dtype=float, copy=True)
        for idx in self.masked_features:
            masked[:, idx] = 0.0
        return masked

    def forward(self, features: np.ndarray) -> np.ndarray:
        return self.model.forward(self.mask(features))

    __call__ = forward


def train_masked_model(
    dataset: ILDataset,
    masked_features: Sequence[int] = (),
    hidden_layers: int = 4,
    hidden_width: int = 64,
    seed: int = 0,
    training: Optional[TrainingConfig] = None,
) -> FeatureMaskedModel:
    """Train a model with the given input features zeroed out."""
    if len(dataset) == 0:
        raise ValueError("cannot train on an empty dataset")
    rng = RandomSource(seed).child("ablation-model")
    inner = build_mlp(
        input_dim=dataset.features.shape[1],
        output_dim=dataset.labels.shape[1],
        hidden_layers=hidden_layers,
        hidden_width=hidden_width,
        rng=rng,
    )
    wrapper = FeatureMaskedModel(inner, masked_features)
    config = training or TrainingConfig(seed=seed)
    train_model(inner, wrapper.mask(dataset.features), dataset.labels, config)
    return wrapper


class GreedyMultiMigrationPolicy(TopILMigrationPolicy):
    """Ablation: execute *every* improving migration each epoch.

    The paper migrates only the single best application per epoch because
    simultaneous migrations interact unpredictably (they invalidate each
    other's predicted VF levels and temperatures).  This variant greedily
    applies all positive-improvement migrations in descending order,
    re-deriving the free-core set as it goes.
    """

    def __call__(self, sim: Simulator) -> None:
        self.invocations += 1
        processes = sim.running_processes()
        sim.account_overhead(
            "migration",
            self.overhead_model.migration_invocation_s(len(processes), self.model),
        )
        if not processes:
            return
        ratings = self.rate_mappings(sim, processes)
        free = set(sim.free_cores())
        candidates: List[tuple] = []
        for row, process in enumerate(processes):
            current = float(ratings[row, process.core_id])
            for core in free:
                improvement = float(ratings[row, core]) - current
                if improvement > self.improvement_threshold:
                    candidates.append((improvement, process.pid, core))
        candidates.sort(reverse=True)
        moved = set()
        for improvement, pid, core in candidates:
            if pid in moved or core not in free:
                continue
            old_core = sim.process(pid).core_id
            sim.migrate(pid, core)
            free.discard(core)
            free.add(old_core)
            moved.add(pid)
            self.migrations_executed += 1
        if moved and self.dvfs_loop is not None:
            self.dvfs_loop.notify_migration()
