"""Training-data extraction: QoS sweep + soft labels (Fig. 2 bottom, Eq. 4).

For every scenario's :class:`~repro.il.traces.TraceGrid` we sweep

* the AoI QoS target ``Q_AoI`` (fractions of the AoI's peak observed IPS),
* the background VF requirements ``f_tilde_{l \\ AoI}`` and
  ``f_tilde_{b \\ AoI}`` (over the trace grid's frequencies),

and, per candidate core ``j``, select the trace whose VF levels are the
lowest that satisfy all three constraints (Eq. 3).  Matching the run-time
DVFS control loop, the cluster *not* hosting the AoI stays at the
background requirement while the AoI's own cluster is raised until the
QoS target is met.  The peak temperatures of the selected traces yield the
soft labels of Eq. 4::

    l_j = 0                                  core j occupied by background
    l_j = -1                                 core j cannot meet Q_AoI
    l_j = exp(-alpha * (T_j - min_j' T_j'))  otherwise

One training example is emitted per feasible source core, so the policy is
trained to recover from *every* potential current mapping — the reason the
paper needs no DAgger-style iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.il.features import FEATURE_COUNT, FeatureExtractor
from repro.il.traces import TraceGrid, TracePoint
from repro.platform import Platform
from repro.utils.validation import check_positive

DEFAULT_QOS_FRACTIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.95)


@dataclass(frozen=True)
class LabelConfig:
    """Label-generation parameters (Eq. 4)."""

    alpha: float = 1.0
    occupied_label: float = 0.0
    infeasible_label: float = -1.0
    #: Ablation switch: one-hot label on the coolest mapping instead of
    #: the soft exponential labels.
    hard_labels: bool = False

    def __post_init__(self):
        check_positive("alpha", self.alpha)


@dataclass
class ILDataset:
    """Features, labels, and per-example metadata.

    ``meta`` rows are ``(aoi_app, source_core)``; filtering by AoI app
    implements the paper's train/test split for the model evaluation.
    """

    features: np.ndarray
    labels: np.ndarray
    meta: List[Tuple[str, int]] = field(default_factory=list)

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=float)
        if len(self.features) != len(self.labels) or len(self.features) != len(
            self.meta
        ):
            raise ValueError("features, labels, and meta must align")

    def __len__(self) -> int:
        return len(self.features)

    def filter_by_apps(self, app_names: Sequence[str]) -> "ILDataset":
        """Keep only examples whose AoI is one of ``app_names``."""
        wanted = set(app_names)
        idx = [i for i, (app, _) in enumerate(self.meta) if app in wanted]
        return ILDataset(
            features=self.features[idx],
            labels=self.labels[idx],
            meta=[self.meta[i] for i in idx],
        )

    def merge(self, other: "ILDataset") -> "ILDataset":
        if len(self) == 0:
            return other
        if len(other) == 0:
            return self
        return ILDataset(
            features=np.vstack([self.features, other.features]),
            labels=np.vstack([self.labels, other.labels]),
            meta=self.meta + other.meta,
        )

    def save(self, path: str) -> None:
        apps = np.array([m[0] for m in self.meta])
        cores = np.array([m[1] for m in self.meta])
        np.savez_compressed(
            path,
            features=self.features,
            labels=self.labels,
            apps=apps,
            cores=cores,
        )

    @classmethod
    def load(
        cls, path: str, expected_features: Optional[int] = None
    ) -> "ILDataset":
        """Load a saved dataset, validating its feature width.

        A dataset written for a different platform (or by an older feature
        extractor) would otherwise surface as an opaque shape error deep
        inside training; validating here names the offending file.
        ``expected_features`` defaults to :data:`~repro.il.features.FEATURE_COUNT`.
        """
        data = np.load(path, allow_pickle=False)
        features = np.asarray(data["features"], dtype=float)
        if expected_features is None:
            expected_features = FEATURE_COUNT
        if features.ndim != 2 or features.shape[1] != expected_features:
            raise ValueError(
                f"dataset file {path!r} has feature shape {features.shape}, "
                f"expected (*, {expected_features}); it was written for a "
                "different platform or feature-extractor version — delete or "
                "regenerate it"
            )
        meta = [
            (str(a), int(c)) for a, c in zip(data["apps"], data["cores"])
        ]
        return cls(features=features, labels=data["labels"], meta=meta)


@dataclass(frozen=True)
class _Selection:
    """The trace selected for one candidate core under one sweep setting."""

    point: Optional[TracePoint]  # None = QoS infeasible on this core
    f_hz: Dict[str, float]


class DatasetBuilder:
    """Turns trace grids into an :class:`ILDataset`."""

    def __init__(
        self,
        platform: Platform,
        label_config: LabelConfig = LabelConfig(),
        qos_fractions: Sequence[float] = DEFAULT_QOS_FRACTIONS,
    ):
        self.platform = platform
        self.label_config = label_config
        self.qos_fractions = tuple(qos_fractions)
        self.extractor = FeatureExtractor(platform)

    # ------------------------------------------------------------- Eq. 3 selection
    def select_trace(
        self,
        grid: TraceGrid,
        aoi_core: int,
        qos_target: float,
        f_wo_aoi: Dict[str, float],
    ) -> _Selection:
        """Lowest VF levels satisfying background needs and the QoS target.

        The non-AoI clusters run exactly at the background requirement; the
        AoI's cluster is raised (starting from its own background
        requirement) until the observed trace IPS reaches the target.
        """
        aoi_cluster = self.platform.cluster_of_core(aoi_core).name
        freqs: Dict[str, float] = {}
        for name, grid_freqs in grid.vf_grid.items():
            candidates = [f for f in grid_freqs if f >= f_wo_aoi[name] - 1e-3]
            if not candidates:
                candidates = [max(grid_freqs)]
            freqs[name] = min(candidates)
        for f_aoi in sorted(
            f for f in grid.vf_grid[aoi_cluster] if f >= freqs[aoi_cluster] - 1e-3
        ):
            trial = dict(freqs)
            trial[aoi_cluster] = f_aoi
            point = grid.lookup(aoi_core, trial)
            if point.aoi_ips >= qos_target:
                return _Selection(point=point, f_hz=trial)
        # Even the highest level cannot meet the target on this core.
        trial = dict(freqs)
        trial[aoi_cluster] = max(grid.vf_grid[aoi_cluster])
        return _Selection(point=None, f_hz=trial)

    # ------------------------------------------------------------------ Eq. 4 labels
    def make_labels(
        self, selections: Dict[int, _Selection], occupied: Sequence[int]
    ) -> Optional[np.ndarray]:
        """Soft label vector over all cores, or None if nothing is feasible."""
        cfg = self.label_config
        labels = np.full(self.platform.n_cores, cfg.occupied_label)
        feasible = {
            core: sel.point.peak_temp_c
            for core, sel in selections.items()
            if sel.point is not None
        }
        if not feasible:
            return None
        t_min = min(feasible.values())
        for core, sel in selections.items():
            if sel.point is None:
                labels[core] = cfg.infeasible_label
            elif cfg.hard_labels:
                labels[core] = 1.0 if sel.point.peak_temp_c == t_min else 0.0
            else:
                labels[core] = float(
                    np.exp(-cfg.alpha * (sel.point.peak_temp_c - t_min))
                )
        for core in occupied:
            labels[core] = cfg.occupied_label
        return labels

    # ------------------------------------------------------------------ full build
    def build_from_grid(self, grid: TraceGrid) -> ILDataset:
        """Sweep QoS targets and background requirements over one grid."""
        scenario = grid.scenario
        occupied = sorted(scenario.background_dict())
        candidates = grid.aoi_cores()
        max_ips = grid.max_aoi_ips()
        cluster_names = sorted(grid.vf_grid)

        features: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        meta: List[Tuple[str, int]] = []

        f_wo_combos = list(
            _dict_product({name: grid.vf_grid[name] for name in cluster_names})
        )
        for fraction in self.qos_fractions:
            qos_target = fraction * max_ips
            for f_wo_aoi in f_wo_combos:
                selections = {
                    core: self.select_trace(grid, core, qos_target, f_wo_aoi)
                    for core in candidates
                }
                label_vec = self.make_labels(selections, occupied)
                if label_vec is None:
                    continue
                utils = {c: 0.0 for c in range(self.platform.n_cores)}
                for c in occupied:
                    utils[c] = 1.0
                for source_core, sel in selections.items():
                    if sel.point is None:
                        continue  # AoI could not be executing here
                    source_utils = dict(utils)
                    source_utils[source_core] = 1.0
                    vec = self.extractor.build(
                        aoi_ips=sel.point.aoi_ips,
                        aoi_l2d_rate=sel.point.aoi_l2d_rate,
                        aoi_qos_target=qos_target,
                        aoi_core=source_core,
                        f_wo_aoi_hz=f_wo_aoi,
                        f_current_hz=sel.f_hz,
                        core_utilization=source_utils,
                    )
                    features.append(vec)
                    labels.append(label_vec)
                    meta.append((scenario.aoi_app, source_core))
        if not features:
            return ILDataset(
                features=np.zeros((0, self.extractor.n_features)),
                labels=np.zeros((0, self.platform.n_cores)),
                meta=[],
            )
        return ILDataset(
            features=np.vstack(features), labels=np.vstack(labels), meta=meta
        )

    def build(self, grids: Sequence[TraceGrid]) -> ILDataset:
        """Build and merge datasets from many scenario grids."""
        dataset = ILDataset(
            features=np.zeros((0, self.extractor.n_features)),
            labels=np.zeros((0, self.platform.n_cores)),
            meta=[],
        )
        for grid in grids:
            dataset = dataset.merge(self.build_from_grid(grid))
        return dataset


def _dict_product(values_by_key: Dict[str, List[float]]):
    """Cartesian product over a dict of lists, yielding dicts."""
    keys = sorted(values_by_key)
    if not keys:
        yield {}
        return

    def rec(i: int, acc: Dict[str, float]):
        if i == len(keys):
            yield dict(acc)
            return
        for value in values_by_key[keys[i]]:
            acc[keys[i]] = value
            yield from rec(i + 1, acc)

    yield from rec(0, {})
