"""End-to-end design-time pipeline: scenarios -> traces -> dataset -> models.

The paper creates 19,831 training examples from 100 combinations of AoI and
background and trains three models with different random seeds to show
robustness to weight initialization.  :class:`ILPipeline` reproduces that
flow on the simulated platform, with a size knob so tests can run a scaled
version, and optional on-disk caching of the (expensive) dataset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.apps.catalog import TRAINING_APPS
from repro.il.dataset import (
    DEFAULT_QOS_FRACTIONS,
    DatasetBuilder,
    ILDataset,
    LabelConfig,
)
from repro.il.traces import TraceCollector, TraceGrid, TraceScenario
from repro.nn.layers import Sequential, build_mlp
from repro.nn.training import TrainingConfig, TrainingResult, train_model
from repro.platform import Platform
from repro.thermal import CoolingConfig, FAN_COOLING
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # runtime imports stay lazy (repro.il must not need store)
    from repro.store import ArtifactKey, ArtifactStore


@dataclass
class PipelineConfig:
    """Size and hyperparameters of the design-time pipeline."""

    n_scenarios: int = 100
    apps: Sequence[str] = TRAINING_APPS
    seed: int = 42
    vf_levels_per_cluster: int = 4
    qos_fractions: Sequence[float] = DEFAULT_QOS_FRACTIONS
    max_background_apps: int = 6
    max_aoi_candidates: int = 4
    hidden_layers: int = 4
    hidden_width: int = 64
    n_models: int = 3
    training: TrainingConfig = field(default_factory=TrainingConfig)
    label_config: LabelConfig = field(default_factory=LabelConfig)
    cache_path: Optional[str] = None

    def __post_init__(self):
        check_positive("n_scenarios", self.n_scenarios)
        check_positive("n_models", self.n_models)
        if not self.apps:
            raise ValueError("pipeline needs at least one AoI application")


def generate_scenarios(
    platform: Platform,
    apps: Sequence[str],
    n_scenarios: int,
    rng: RandomSource,
    max_background_apps: int = 6,
) -> List[TraceScenario]:
    """Random (AoI, background) combinations with at least one free core.

    Background sizes are drawn uniformly from 0 to ``max_background_apps``
    so the model sees everything from an idle system (single-application
    workloads) to a nearly full one.
    """
    check_positive("n_scenarios", n_scenarios)
    apps = list(apps)
    scenarios: List[TraceScenario] = []
    max_bg = min(max_background_apps, platform.n_cores - 1)
    for _ in range(n_scenarios):
        aoi = str(rng.choice(apps))
        n_bg = int(rng.integers(0, max_bg + 1))
        cores = list(rng.choice(platform.n_cores, size=n_bg, replace=False))
        background = tuple(
            sorted((int(core), str(rng.choice(apps))) for core in cores)
        )
        scenarios.append(TraceScenario(aoi_app=aoi, background=background))
    return scenarios


@dataclass
class PipelineResult:
    """Everything the design-time pipeline produces."""

    dataset: ILDataset
    models: List[Sequential]
    training_results: List[TrainingResult]
    scenarios: List[TraceScenario]


class ILPipeline:
    """Run the full design-time flow on the simulated platform."""

    def __init__(
        self,
        platform: Platform,
        cooling: CoolingConfig = FAN_COOLING,
        config: PipelineConfig = None,
        artifacts: Optional["ArtifactStore"] = None,
    ):
        self.platform = platform
        self.cooling = cooling
        self.config = config or PipelineConfig()
        #: Optional content-addressed cache for per-scenario trace grids.
        self.artifacts = artifacts
        self.collector = TraceCollector(
            platform,
            cooling,
            vf_levels_per_cluster=self.config.vf_levels_per_cluster,
        )
        self.builder = DatasetBuilder(
            platform,
            label_config=self.config.label_config,
            qos_fractions=self.config.qos_fractions,
        )

    # ------------------------------------------------------------------ stages
    def plan_candidates(
        self, scenarios: Sequence[TraceScenario]
    ) -> List[Tuple[TraceScenario, List[int]]]:
        """Resolve the AoI candidate cores for every scenario, in order.

        Candidate sampling consumes one sequential RNG stream across the
        whole scenario list, so it must run for *every* scenario before
        any cache decisions — a cache hit must not skip the draws that
        later scenarios' candidates depend on.  This planning pass is
        cheap (no simulation); it also makes the candidate list part of
        each scenario's cache key.
        """
        rng = RandomSource(self.config.seed).child("aoi-candidates")
        planned: List[Tuple[TraceScenario, List[int]]] = []
        for scenario in scenarios:
            free = scenario.free_cores(self.platform)
            if not free:
                continue
            if len(free) > self.config.max_aoi_candidates:
                # Keep cluster diversity: sample candidates from both sides.
                little = [c for c in free if c < 4]
                big = [c for c in free if c >= 4]
                picks: List[int] = []
                half = self.config.max_aoi_candidates // 2
                if little:
                    k = min(len(little), max(1, half))
                    picks += [int(x) for x in rng.choice(little, size=k, replace=False)]
                if big:
                    k = min(len(big), self.config.max_aoi_candidates - len(picks))
                    if k > 0:
                        picks += [int(x) for x in rng.choice(big, size=k, replace=False)]
                candidates = sorted(picks)
            else:
                candidates = free
            planned.append((scenario, candidates))
        return planned

    def trace_grid_key(
        self, scenario: TraceScenario, candidates: Sequence[int]
    ) -> "ArtifactKey":
        """Content address of one scenario's trace grid.

        Keyed on everything the collected grid depends on: the scenario,
        the resolved candidate cores, the collector's sampling parameters,
        the cooling configuration, and the platform fingerprint.
        """
        from repro.store import ArtifactKey as _ArtifactKey

        return _ArtifactKey.create(
            "trace-grid",
            config={
                "scenario": scenario,
                "candidates": list(candidates),
                "collector": {
                    "vf_levels_per_cluster": self.config.vf_levels_per_cluster,
                    "aoi_instructions": self.collector.aoi_instructions,
                    "max_window_s": self.collector.max_window_s,
                    "min_window_s": self.collector.min_window_s,
                    "dt_s": self.collector.dt_s,
                },
                "cooling": self.cooling,
            },
            platform=self.platform,
        )

    def collect_traces(self, scenarios: Sequence[TraceScenario]) -> List[TraceGrid]:
        """Collect trace grids, bounding AoI candidates per scenario.

        With an artifact store attached, each scenario's grid is cached
        individually — a partially collected run resumes at the first
        uncollected scenario instead of starting over.
        """
        planned = self.plan_candidates(scenarios)
        if self.artifacts is None:
            return [
                self.collector.collect(scenario, aoi_cores=candidates)
                for scenario, candidates in planned
            ]
        from repro.store import TraceGridHandle

        handle = TraceGridHandle()
        grids: List[TraceGrid] = []
        for scenario, candidates in planned:
            key = self.trace_grid_key(scenario, candidates)
            grids.append(
                self.artifacts.get_or_create(
                    key,
                    handle,
                    lambda s=scenario, c=candidates: self.collector.collect(
                        s, aoi_cores=c
                    ),
                )
            )
        return grids

    def build_dataset(self, grids: Sequence[TraceGrid]) -> ILDataset:
        return self.builder.build(grids)

    def train_single(
        self, dataset: ILDataset, index: int
    ) -> Tuple[Sequential, TrainingResult]:
        """Train the ``index``-th model (its own init and shuffle seeds).

        Each model's randomness is derived from ``(seed, index)`` alone,
        so a single model can be (re)trained — or cached — independently
        of its siblings.
        """
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        rng = RandomSource(self.config.seed).child(f"model-{index}")
        model = build_mlp(
            input_dim=dataset.features.shape[1],
            output_dim=dataset.labels.shape[1],
            hidden_layers=self.config.hidden_layers,
            hidden_width=self.config.hidden_width,
            rng=rng,
        )
        cfg = TrainingConfig(
            initial_lr=self.config.training.initial_lr,
            lr_decay=self.config.training.lr_decay,
            batch_size=self.config.training.batch_size,
            max_epochs=self.config.training.max_epochs,
            patience=self.config.training.patience,
            val_fraction=self.config.training.val_fraction,
            seed=self.config.seed + index,
        )
        result = train_model(model, dataset.features, dataset.labels, cfg)
        return model, result

    def train_models(self, dataset: ILDataset) -> PipelineResult:
        """Train ``n_models`` models with different random seeds."""
        models: List[Sequential] = []
        results: List[TrainingResult] = []
        for i in range(self.config.n_models):
            model, result = self.train_single(dataset, i)
            results.append(result)
            models.append(model)
        return PipelineResult(
            dataset=dataset, models=models, training_results=results, scenarios=[]
        )

    # ------------------------------------------------------------------ end to end
    def run(self) -> PipelineResult:
        """Scenarios -> traces -> dataset (cached) -> trained models."""
        scenarios = generate_scenarios(
            self.platform,
            self.config.apps,
            self.config.n_scenarios,
            RandomSource(self.config.seed).child("scenarios"),
            self.config.max_background_apps,
        )
        cache = self.config.cache_path
        if cache is not None and os.path.exists(cache):
            dataset = ILDataset.load(cache)
        else:
            grids = self.collect_traces(scenarios)
            dataset = self.build_dataset(grids)
            if cache is not None:
                dataset.save(cache)
        result = self.train_models(dataset)
        result.scenarios = scenarios
        return result
