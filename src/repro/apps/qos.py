"""QoS-target helpers.

The paper expresses QoS targets in IPS.  Two selection rules appear in the
evaluation:

* the motivational example and illustrative runs set the target to a
  fraction (30 %) of the IPS reached at the highest VF level on the big
  cluster;
* the single-application experiments set targets "such that they can be met
  at the highest VF level on the LITTLE cluster".

Both helpers live here so every experiment selects targets identically.
"""

from __future__ import annotations

from repro.apps.model import AppModel
from repro.platform.description import Platform
from repro.platform.hikey import BIG, LITTLE
from repro.utils.validation import check_in_range


def qos_fraction_of_big_max(
    app: AppModel, platform: Platform, fraction: float = 0.3
) -> float:
    """QoS target as ``fraction`` of the app's big-cluster peak IPS."""
    check_in_range("fraction", fraction, 0.0, 1.0)
    big = platform.cluster(BIG)
    return fraction * app.max_ips(BIG, big.vf_table)


def default_qos_target(
    app: AppModel, platform: Platform, fraction_of_little_max: float = 0.75
) -> float:
    """QoS target reachable at the top LITTLE level (single-app experiments).

    A fraction of the LITTLE-cluster peak IPS guarantees feasibility on both
    clusters while leaving DVFS headroom, mirroring Sec. 7.3.
    """
    check_in_range("fraction_of_little_max", fraction_of_little_max, 0.0, 1.0)
    little = platform.cluster(LITTLE)
    return fraction_of_little_max * app.max_ips(LITTLE, little.vf_table)
