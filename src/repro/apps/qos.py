"""QoS-target helpers.

The paper expresses QoS targets in IPS.  Two selection rules appear in the
evaluation:

* the motivational example and illustrative runs set the target to a
  fraction (30 %) of the IPS reached at the highest VF level on the
  fastest cluster (big, on the HiKey 970);
* the single-application experiments set targets "such that they can be
  met at the highest VF level on the LITTLE cluster" — i.e. on the
  platform's *reference* (slowest) cluster.

Both helpers live here so every experiment selects targets identically.
On big.LITTLE the reference cluster is ``LITTLE`` and the fastest is
``big``; the cluster selectors generalize the same rules to any registry
platform (a single-cluster grid is its own reference *and* fastest
cluster).
"""

from __future__ import annotations

from repro.apps.adapt import adapt_app_for_platform
from repro.apps.model import AppModel
from repro.platform.description import Cluster, Platform
from repro.utils.validation import check_in_range


def reference_cluster(platform: Platform) -> Cluster:
    """The cluster with the lowest peak frequency (``LITTLE`` on big.LITTLE).

    QoS targets feasible at this cluster's top VF level are feasible on
    every cluster in isolation, which is what makes it the reference for
    target selection.  Ties resolve to declaration order.
    """
    best = platform.clusters[0]
    for cluster in platform.clusters[1:]:
        if (
            cluster.vf_table.max_level.frequency_hz
            < best.vf_table.max_level.frequency_hz
        ):
            best = cluster
    return best


def fastest_cluster(platform: Platform) -> Cluster:
    """The cluster with the highest peak frequency (``big`` on big.LITTLE).

    Ties resolve to declaration order.
    """
    best = platform.clusters[0]
    for cluster in platform.clusters[1:]:
        if (
            cluster.vf_table.max_level.frequency_hz
            > best.vf_table.max_level.frequency_hz
        ):
            best = cluster
    return best


def qos_fraction_of_big_max(
    app: AppModel, platform: Platform, fraction: float = 0.3
) -> float:
    """QoS target as ``fraction`` of the app's fastest-cluster peak IPS."""
    check_in_range("fraction", fraction, 0.0, 1.0)
    app = adapt_app_for_platform(app, platform)
    fastest = fastest_cluster(platform)
    return fraction * app.max_ips(fastest.name, fastest.vf_table)


def default_qos_target(
    app: AppModel, platform: Platform, fraction_of_little_max: float = 0.75
) -> float:
    """QoS target reachable at the top reference-cluster VF level.

    A fraction of the reference (slowest) cluster's peak IPS guarantees
    feasibility on every cluster while leaving DVFS headroom, mirroring
    Sec. 7.3's LITTLE-feasible targets.
    """
    check_in_range(
        "fraction_of_little_max", fraction_of_little_max, 0.0, 1.0
    )
    app = adapt_app_for_platform(app, platform)
    reference = reference_cluster(platform)
    return fraction_of_little_max * app.max_ips(
        reference.name, reference.vf_table
    )
