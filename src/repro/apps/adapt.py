"""Adapt catalog applications to platforms beyond big.LITTLE.

The application catalog carries measured per-cluster parameters for the
HiKey 970's ``LITTLE`` and ``big`` clusters only.  Other registry
platforms may have clusters the catalog never measured (a ``prime`` core,
a homogeneous ``grid``); their :class:`~repro.platform.spec.ClusterSpec`
declares a derivation hint — ``perf_like`` names the measured cluster to
inherit from and ``perf_scale`` the dimensionless speedup to apply.

:func:`adapt_app_for_platform` applies those hints.  It is called once
per submission by :meth:`repro.sim.kernel.Simulator.submit`, which makes
it the single choke point every execution path (workload runner, trace
collector, batch backend) goes through.  For applications that already
cover every cluster — every catalog app on the HiKey 970 — the input
object is returned unchanged, so existing behavior (including object
identity and the per-app parameter memoization) is untouched.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.apps.model import AppModel, ClusterPerfParams
from repro.platform.description import Platform
from repro.platform.registry import spec_for_platform


def derived_perf_params(
    base: ClusterPerfParams, perf_scale: float
) -> ClusterPerfParams:
    """Scale measured cluster parameters by a dimensionless speedup.

    A ``perf_scale`` of s makes the derived cluster retire instructions
    s times faster at equal frequency: CPI and the memory stall time per
    instruction divide by s, while the activity factor and the
    memory/frequency coupling are microarchitecture-portable and carry
    over unchanged.
    """
    return ClusterPerfParams(
        cpi=base.cpi / perf_scale,
        mem_time_per_inst=base.mem_time_per_inst / perf_scale,
        activity=base.activity,
        mem_freq_coupling=base.mem_freq_coupling,
        mem_ref_freq_hz=base.mem_ref_freq_hz,
    )


def adapt_app_for_platform(app: AppModel, platform: Platform) -> AppModel:
    """Fill in per-cluster parameters ``app`` is missing on ``platform``.

    Returns ``app`` itself when it already has parameters for every
    cluster (the big.LITTLE fast path), or a copy extended with derived
    :class:`ClusterPerfParams` for clusters whose registry spec carries a
    ``perf_like`` hint that references parameters the app has.  Clusters
    that cannot be derived (no registry spec, no hint, unknown base) are
    left missing, preserving the legacy behavior of failing loudly at
    first use.
    """
    missing: List[str] = [
        c.name for c in platform.clusters if c.name not in app.perf
    ]
    if not missing:
        return app
    spec = spec_for_platform(platform)
    if spec is None:
        return app
    perf: Dict[str, ClusterPerfParams] = dict(app.perf)
    derived_any = False
    for cluster_name in missing:
        cluster_spec = spec.cluster(cluster_name)
        if cluster_spec.perf_like is None:
            continue
        base = perf.get(cluster_spec.perf_like)
        if base is None:
            continue
        perf[cluster_name] = derived_perf_params(
            base, cluster_spec.perf_scale
        )
        derived_any = True
    if not derived_any:
        return app
    return replace(app, perf=perf)
