"""Application models: per-cluster performance, power activity, phases.

The paper's whole argument rests on applications differing in two ways:

1. **big-vs-LITTLE benefit** — how much the out-of-order pipeline and larger
   caches of the big cluster help (adi: a lot; seidel-2d: little), and
2. **frequency sensitivity** — how strongly IPS scales with the VF level
   (canneal is memory-bound and barely scales; swaptions is compute-bound
   and scales linearly).

:class:`AppModel` captures both with a two-parameter-per-cluster roofline
model, plus a phase schedule for applications with time-varying behaviour
(the PARSEC apps), a switching-activity factor for the power model, and an
L2D access rate (the feature the paper uses to characterize the AoI).
"""

from repro.apps.model import AppModel, ClusterPerfParams, Phase, PhaseSchedule
from repro.apps.catalog import (
    POLYBENCH_APPS,
    PARSEC_APPS,
    TRACE_COLLECTION_APPS,
    TRAINING_APPS,
    HELDOUT_APPS,
    app_catalog,
    get_app,
)
from repro.apps.qos import default_qos_target, qos_fraction_of_big_max
from repro.apps.profiles import AppProfile, OperatingPoint, profile_app

__all__ = [
    "AppModel",
    "ClusterPerfParams",
    "Phase",
    "PhaseSchedule",
    "POLYBENCH_APPS",
    "PARSEC_APPS",
    "TRACE_COLLECTION_APPS",
    "TRAINING_APPS",
    "HELDOUT_APPS",
    "app_catalog",
    "get_app",
    "default_qos_target",
    "qos_fraction_of_big_max",
    "AppProfile",
    "OperatingPoint",
    "profile_app",
]
