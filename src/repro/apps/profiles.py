"""Offline application characterization tables.

The paper's trace-collection campaign effectively characterizes each
benchmark across the VF grid (the Fig. 2a/2b tables).  This module
produces the same characterization directly from an application model —
IPS, required power, and energy efficiency per (cluster, VF level) — which
the examples and docs use and which makes the catalog's personalities
auditable at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.model import AppModel
from repro.platform import Platform
from repro.power import PowerModel
from repro.utils.tables import ascii_table
from repro.utils.units import format_frequency


@dataclass(frozen=True)
class OperatingPoint:
    """One (cluster, VF level) characterization row for an application."""

    cluster: str
    frequency_hz: float
    voltage_v: float
    ips: float
    core_power_w: float

    @property
    def mips(self) -> float:
        return self.ips / 1e6

    @property
    def energy_per_instruction_nj(self) -> float:
        """Core energy per instruction in nanojoules."""
        return 1e9 * self.core_power_w / self.ips


@dataclass
class AppProfile:
    """Full VF-grid characterization of one application."""

    app_name: str
    points: List[OperatingPoint] = field(default_factory=list)

    def on_cluster(self, cluster: str) -> List[OperatingPoint]:
        return [p for p in self.points if p.cluster == cluster]

    def max_ips(self) -> float:
        return max(p.ips for p in self.points)

    def most_efficient_point(self) -> OperatingPoint:
        """The operating point with the lowest energy per instruction."""
        return min(self.points, key=lambda p: p.energy_per_instruction_nj)

    def min_point_for(self, qos_ips: float) -> Optional[OperatingPoint]:
        """The lowest-power point meeting ``qos_ips``, or None."""
        feasible = [p for p in self.points if p.ips >= qos_ips]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.core_power_w)

    def report(self) -> str:
        rows = [
            (
                p.cluster,
                format_frequency(p.frequency_hz),
                f"{p.mips:.0f} MIPS",
                f"{p.core_power_w * 1e3:.0f} mW",
                f"{p.energy_per_instruction_nj:.2f} nJ",
            )
            for p in sorted(self.points, key=lambda p: (p.cluster, p.frequency_hz))
        ]
        table = ascii_table(
            ["cluster", "VF level", "performance", "core power", "energy/inst"],
            rows,
        )
        return f"profile of {self.app_name}:\n{table}"


def profile_app(
    app: AppModel,
    platform: Platform,
    power_model: Optional[PowerModel] = None,
    nominal_temp_c: float = 50.0,
) -> AppProfile:
    """Characterize ``app`` at every (cluster, VF level) of ``platform``.

    ``core_power_w`` is the single-core power (dynamic at the app's
    activity factor plus leakage at ``nominal_temp_c``) — the quantity the
    mapping trade-offs of Fig. 1 hinge on.
    """
    power_model = power_model or PowerModel(platform)
    profile = AppProfile(app_name=app.name)
    for cluster in platform.clusters:
        core_id = cluster.core_ids[0]
        params, _ = app.params_at(cluster.name, 0.0)
        for level in cluster.vf_table:
            ips = app.ips(cluster.name, level.frequency_hz)
            power = power_model.core_dynamic_power(
                core_id, level, params.activity
            ) + power_model.core_leakage_power(core_id, level, nominal_temp_c)
            profile.points.append(
                OperatingPoint(
                    cluster=cluster.name,
                    frequency_hz=level.frequency_hz,
                    voltage_v=level.voltage_v,
                    ips=ips,
                    core_power_w=power,
                )
            )
    return profile
