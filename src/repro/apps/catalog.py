"""Catalog of benchmark application models.

The paper's mixed workload draws from eight PARSEC applications
(blackscholes, bodytrack, canneal, dedup, facesim, ferret, fluidanimate,
swaptions) and eight Polybench kernels (adi, fdtd-2d, floyd-warshall,
gramschmidt, heat-3d, jacobi-2d, seidel-2d, syr2k).  Oracle traces are
collected for nine constant-behaviour kernels (the eight Polybench ones
plus covariance); seven are used for training and two (jacobi-2d and
covariance) are held out, matching the paper's 7-train / 2-test split for
the model evaluation.  All PARSEC applications are *unseen* at run time.

Parameters are calibrated to the paper's qualitative anchors:

* **adi** profits strongly from the big cluster: at a QoS target of 30 % of
  its big-cluster peak IPS it needs the top LITTLE level (~1.8 GHz) but only
  the bottom big level (~0.7 GHz), so mapping it big is cooler (Fig. 1).
* **seidel-2d** gains little from the big cluster, making the LITTLE
  mapping slightly cooler (Fig. 1).
* **canneal** is memory-bound; its performance "depends less on the CPU VF
  level" (Sec. 7.3) — it is the only app whose QoS survives powersave.
* **swaptions / syr2k / gramschmidt** are compute-bound and scale linearly
  with frequency; **heat-3d / fdtd-2d** are bandwidth-hungry stencils.
* **dedup / facesim** have pronounced execution phases (the paper observes
  negative ping-pong migration overhead for them in Fig. 5), and the other
  PARSEC apps have milder phases.  Polybench kernels are phase-free, which
  the oracle trace-collection pipeline requires.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.model import AppModel, ClusterPerfParams, Phase, PhaseSchedule
from repro.platform.hikey import BIG, LITTLE


#: Reference frequencies for memory-frequency coupling: the cluster's top
#: VF level, where the base ``mem_time_per_inst`` values are calibrated.
_LITTLE_REF_HZ = 1.844e9
_BIG_REF_HZ = 2.362e9


def _perf(
    cpi_little: float,
    mem_little: float,
    cpi_big: float,
    mem_big: float,
    activity_little: float = 0.8,
    activity_big: float = 0.85,
    coupling_little: float = 0.0,
    coupling_big: float = 0.0,
) -> Dict[str, ClusterPerfParams]:
    return {
        LITTLE: ClusterPerfParams(
            cpi_little,
            mem_little,
            activity_little,
            mem_freq_coupling=coupling_little,
            mem_ref_freq_hz=_LITTLE_REF_HZ,
        ),
        BIG: ClusterPerfParams(
            cpi_big,
            mem_big,
            activity_big,
            mem_freq_coupling=coupling_big,
            mem_ref_freq_hz=_BIG_REF_HZ,
        ),
    }


def _build_catalog() -> Dict[str, AppModel]:
    apps: List[AppModel] = [
        # ------------------------- PARSEC ---------------------------------
        AppModel(
            name="blackscholes",
            suite="parsec",
            perf=_perf(1.30, 0.3e-10, 0.68, 0.2e-10, 0.90, 0.92),
            l2d_per_inst=0.004,
            total_instructions=3.0e11,
            phases=PhaseSchedule(
                [Phase(0.8), Phase(0.2, cpi_scale=1.15, mem_scale=1.5, l2d_scale=1.5)]
            ),
        ),
        AppModel(
            name="bodytrack",
            suite="parsec",
            perf=_perf(1.20, 1.2e-10, 0.70, 0.8e-10, 0.82, 0.86),
            l2d_per_inst=0.010,
            total_instructions=2.5e11,
            phases=PhaseSchedule(
                [
                    Phase(0.5, cpi_scale=0.9, mem_scale=0.7),
                    Phase(0.5, cpi_scale=1.1, mem_scale=1.4, l2d_scale=1.4),
                ]
            ),
        ),
        AppModel(
            name="canneal",
            suite="parsec",
            perf=_perf(1.00, 12.0e-10, 0.75, 10.5e-10, 0.55, 0.60),
            l2d_per_inst=0.060,
            total_instructions=1.2e11,
            phases=PhaseSchedule(
                [Phase(0.7), Phase(0.3, mem_scale=1.25, activity_scale=0.9)]
            ),
        ),
        AppModel(
            name="dedup",
            suite="parsec",
            perf=_perf(1.20, 2.5e-10, 0.75, 1.5e-10, 0.78, 0.84),
            l2d_per_inst=0.020,
            total_instructions=2.0e11,
            # Strongly alternating compress/hash phases: the big-cluster
            # benefit swings phase to phase (negative ping-pong overhead).
            phases=PhaseSchedule(
                [
                    Phase(0.5, cpi_scale=0.80, mem_scale=0.40, l2d_scale=0.5),
                    Phase(0.5, cpi_scale=1.20, mem_scale=1.60, l2d_scale=1.5),
                ]
            ),
            phase_cycle_instructions=1.0e10,
        ),
        AppModel(
            name="facesim",
            suite="parsec",
            perf=_perf(1.10, 3.0e-10, 0.70, 2.0e-10, 0.80, 0.85),
            l2d_per_inst=0.030,
            total_instructions=2.5e11,
            phases=PhaseSchedule(
                [
                    Phase(0.4, cpi_scale=0.85, mem_scale=0.5),
                    Phase(0.6, cpi_scale=1.10, mem_scale=1.35, l2d_scale=1.3),
                ]
            ),
            phase_cycle_instructions=1.2e10,
        ),
        AppModel(
            name="ferret",
            suite="parsec",
            perf=_perf(1.25, 1.6e-10, 0.72, 1.0e-10, 0.80, 0.85),
            l2d_per_inst=0.015,
            total_instructions=2.2e11,
            phases=PhaseSchedule(
                [Phase(0.6), Phase(0.4, cpi_scale=1.1, mem_scale=1.3)]
            ),
        ),
        AppModel(
            name="fluidanimate",
            suite="parsec",
            perf=_perf(1.15, 1.8e-10, 0.70, 1.1e-10, 0.84, 0.88),
            l2d_per_inst=0.018,
            total_instructions=2.8e11,
            phases=PhaseSchedule(
                [Phase(0.7, mem_scale=0.9), Phase(0.3, mem_scale=1.4)]
            ),
        ),
        AppModel(
            name="swaptions",
            suite="parsec",
            perf=_perf(1.30, 0.10e-10, 0.68, 0.08e-10, 0.95, 0.95),
            l2d_per_inst=0.001,
            total_instructions=3.5e11,
        ),
        # ----------------------- Polybench (constant behaviour) ------------
        AppModel(
            name="adi",
            suite="polybench",
            perf=_perf(1.40, 1.5e-10, 0.55, 0.5e-10, 0.85, 0.90),
            l2d_per_inst=0.012,
            total_instructions=1.8e11,
        ),
        AppModel(
            name="fdtd-2d",
            suite="polybench",
            perf=_perf(1.15, 3.0e-10, 0.80, 2.2e-10, 0.75, 0.80,
                       coupling_little=0.3, coupling_big=0.3),
            l2d_per_inst=0.025,
            total_instructions=1.5e11,
        ),
        AppModel(
            name="floyd-warshall",
            suite="polybench",
            perf=_perf(1.50, 1.0e-10, 1.10, 0.8e-10, 0.78, 0.80),
            l2d_per_inst=0.008,
            total_instructions=2.0e11,
        ),
        AppModel(
            name="gramschmidt",
            suite="polybench",
            perf=_perf(1.25, 0.8e-10, 0.68, 0.5e-10, 0.85, 0.88),
            l2d_per_inst=0.006,
            total_instructions=2.0e11,
        ),
        AppModel(
            name="heat-3d",
            suite="polybench",
            perf=_perf(1.05, 4.5e-10, 0.85, 3.5e-10, 0.70, 0.75,
                       coupling_little=0.3, coupling_big=0.3),
            l2d_per_inst=0.040,
            total_instructions=1.3e11,
        ),
        AppModel(
            name="jacobi-2d",
            suite="polybench",
            perf=_perf(1.10, 2.4e-10, 0.75, 1.8e-10, 0.76, 0.80,
                       coupling_little=0.4, coupling_big=0.4),
            l2d_per_inst=0.020,
            total_instructions=1.6e11,
        ),
        AppModel(
            name="seidel-2d",
            suite="polybench",
            # The big-cluster memory latency is fully clock-coupled (the
            # stencil's dependent loads ride the DSU/DDR devfreq chain), so
            # IPS scales ~linearly with f on big and the 30 % QoS target
            # needs ~1.0 GHz there — the paper's Fig. 1 anchor that makes
            # the LITTLE mapping slightly cooler.
            perf=_perf(
                1.10, 1.5e-10, 0.95, 1.3e-10, 0.72, 0.74,
                coupling_little=0.5, coupling_big=1.0,
            ),
            l2d_per_inst=0.015,
            total_instructions=1.7e11,
        ),
        AppModel(
            name="syr2k",
            suite="polybench",
            perf=_perf(1.20, 0.5e-10, 0.65, 0.35e-10, 0.90, 0.92),
            l2d_per_inst=0.005,
            total_instructions=2.5e11,
        ),
        AppModel(
            name="covariance",
            suite="polybench",
            perf=_perf(1.35, 1.8e-10, 0.80, 1.0e-10, 0.80, 0.84),
            l2d_per_inst=0.015,
            total_instructions=1.8e11,
        ),
    ]
    return {app.name: app for app in apps}


_CATALOG = _build_catalog()

#: All PARSEC application names (unseen by training).
PARSEC_APPS = tuple(sorted(a.name for a in _CATALOG.values() if a.suite == "parsec"))

#: All Polybench kernel names.
POLYBENCH_APPS = tuple(
    sorted(a.name for a in _CATALOG.values() if a.suite == "polybench")
)

#: The nine constant-behaviour kernels oracle traces are collected for.
TRACE_COLLECTION_APPS = POLYBENCH_APPS

#: The seven kernels whose traces train the IL model (paper Sec. 7.2/7.4).
TRAINING_APPS = (
    "adi",
    "fdtd-2d",
    "floyd-warshall",
    "gramschmidt",
    "heat-3d",
    "seidel-2d",
    "syr2k",
)

#: Kernels held out from training, used only for model testing.
HELDOUT_APPS = tuple(sorted(set(TRACE_COLLECTION_APPS) - set(TRAINING_APPS)))


def app_catalog() -> Dict[str, AppModel]:
    """A fresh copy of the full name -> :class:`AppModel` catalog."""
    return dict(_CATALOG)


def get_app(name: str) -> AppModel:
    """Look up one application model by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(_CATALOG)}"
        ) from None
