"""Roofline-style application performance model with phases.

Performance model
-----------------
The time one instruction takes on a core running at frequency ``f`` splits
into a core part and a memory part::

    t_inst = cpi / f + mem_time_per_inst

``cpi`` is the core cycles per instruction of the pipeline (lower on the
out-of-order big cores), and ``mem_time_per_inst`` is the average stall
time spent waiting for memory per instruction (lower on the big cluster for
cache-friendly applications because of its larger caches).  This yields::

    IPS(f) = f / (cpi + mem_time_per_inst * f)

which is linear in ``f`` for compute-bound applications and saturates at
``1 / mem_time_per_inst`` for memory-bound ones — exactly the behaviour the
paper exploits (e.g. canneal's QoS "depends less on the CPU VF level").

Phases
------
PARSEC applications exhibit execution phases with different characteristics.
A :class:`PhaseSchedule` cycles through :class:`Phase` entries, each scaling
the base parameters for a given fraction of the application's instructions.
Polybench applications (used for oracle traces) have constant behaviour, as
the paper's training-data pipeline requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.platform.vf import VFLevel, VFTable
from repro.utils.floatcmp import is_zero
from repro.utils.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class ClusterPerfParams:
    """Per-cluster performance/power parameters of one application.

    ``cpi``: core cycles per instruction absent memory stalls.
    ``mem_time_per_inst``: seconds of memory stall per instruction at the
    reference frequency.
    ``activity``: switching-activity factor in [0, 1] for the power model.
    ``mem_freq_coupling``: in [0, 1] — how strongly the memory subsystem's
    effective latency follows the cluster clock.  On big.LITTLE SoCs the
    interconnect/DDR frequency is devfreq-coupled to the cluster, so
    memory-sensitive applications see *longer* stall times at low VF
    levels: ``mem_eff(f) = mem_time_per_inst * (mem_ref_freq_hz / f) **
    mem_freq_coupling``.  0 = fixed wall-clock latency (DRAM-latency
    bound), 1 = latency constant in cycles (fully coupled).
    """

    cpi: float
    mem_time_per_inst: float
    activity: float = 0.8
    mem_freq_coupling: float = 0.0
    mem_ref_freq_hz: float = 2.0e9

    def __post_init__(self):
        check_positive("cpi", self.cpi)
        check_non_negative("mem_time_per_inst", self.mem_time_per_inst)
        check_in_range("activity", self.activity, 0.0, 1.0)
        check_in_range("mem_freq_coupling", self.mem_freq_coupling, 0.0, 1.0)
        check_positive("mem_ref_freq_hz", self.mem_ref_freq_hz)

    def effective_mem_time(self, frequency_hz: float) -> float:
        """Memory stall seconds/instruction at ``frequency_hz``."""
        check_positive("frequency_hz", frequency_hz)
        if is_zero(self.mem_freq_coupling) or is_zero(self.mem_time_per_inst):
            return self.mem_time_per_inst
        return self.mem_time_per_inst * (
            self.mem_ref_freq_hz / frequency_hz
        ) ** self.mem_freq_coupling


@dataclass(frozen=True)
class Phase:
    """One execution phase: parameter multipliers over a slice of work.

    ``instruction_fraction`` is the share of the schedule's cycle spent in
    this phase; scales multiply the application's base parameters.
    """

    instruction_fraction: float
    cpi_scale: float = 1.0
    mem_scale: float = 1.0
    activity_scale: float = 1.0
    l2d_scale: float = 1.0

    def __post_init__(self):
        check_positive("instruction_fraction", self.instruction_fraction)
        check_positive("cpi_scale", self.cpi_scale)
        check_non_negative("mem_scale", self.mem_scale)
        check_non_negative("activity_scale", self.activity_scale)
        check_non_negative("l2d_scale", self.l2d_scale)


class PhaseSchedule:
    """Cyclic sequence of phases addressed by executed-instruction count."""

    def __init__(self, phases: List[Phase]):
        if not phases:
            raise ValueError("PhaseSchedule needs at least one phase")
        total = sum(p.instruction_fraction for p in phases)
        # Normalize so fractions sum to 1 regardless of the input scale.
        self._phases = [
            Phase(
                instruction_fraction=p.instruction_fraction / total,
                cpi_scale=p.cpi_scale,
                mem_scale=p.mem_scale,
                activity_scale=p.activity_scale,
                l2d_scale=p.l2d_scale,
            )
            for p in phases
        ]

    @property
    def phases(self) -> List[Phase]:
        return list(self._phases)

    @property
    def is_constant(self) -> bool:
        """True when the schedule never changes the base parameters."""
        return len(self._phases) == 1 and self._phases[0] == Phase(1.0)

    def phase_at(self, cycle_progress: float) -> Phase:
        """The phase active at ``cycle_progress`` in [0, 1) of one cycle."""
        return self._phases[self.index_at(cycle_progress)]

    def index_at(self, cycle_progress: float) -> int:
        """Index of the phase active at ``cycle_progress`` in [0, 1)."""
        progress = cycle_progress % 1.0
        acc = 0.0
        for i, phase in enumerate(self._phases):
            acc += phase.instruction_fraction
            if progress < acc - 1e-12:
                return i
        return len(self._phases) - 1

    def phase(self, index: int) -> Phase:
        """The phase at ``index`` (no list copy, unlike :attr:`phases`)."""
        return self._phases[index]


CONSTANT_SCHEDULE = PhaseSchedule([Phase(1.0)])


@dataclass
class AppModel:
    """A complete application model.

    Parameters
    ----------
    name / suite:
        Identity; ``suite`` is ``"parsec"`` or ``"polybench"``.
    perf:
        :class:`ClusterPerfParams` per cluster name.
    l2d_per_inst:
        L2 data-cache accesses per instruction (the paper's
        memory-intensiveness feature).
    total_instructions:
        Work until completion when run as a workload item.
    phases:
        Phase schedule; ``phase_cycle_instructions`` is the number of
        instructions in one pass through the schedule.
    """

    name: str
    suite: str
    perf: Dict[str, ClusterPerfParams]
    l2d_per_inst: float
    total_instructions: float = 2.0e11
    phases: PhaseSchedule = field(default_factory=lambda: CONSTANT_SCHEDULE)
    phase_cycle_instructions: float = 2.0e10

    def __post_init__(self):
        if not self.perf:
            raise ValueError(f"app {self.name!r} has no cluster parameters")
        check_non_negative("l2d_per_inst", self.l2d_per_inst)
        check_positive("total_instructions", self.total_instructions)
        check_positive("phase_cycle_instructions", self.phase_cycle_instructions)
        # Effective params per (cluster, phase index); phase scaling is a
        # pure function of the phase, so each segment is computed once.
        self._params_cache: Dict[
            Tuple[str, int], Tuple[ClusterPerfParams, float]
        ] = {}
        self._constant_phases = self.phases.is_constant

    # --- parameter resolution ----------------------------------------------------
    def clusters(self) -> List[str]:
        return list(self.perf.keys())

    def has_phases(self) -> bool:
        return not self.phases.is_constant

    def params_at(
        self, cluster_name: str, instructions_done: float = 0.0
    ) -> Tuple[ClusterPerfParams, float]:
        """Effective (params, l2d_per_inst) after ``instructions_done`` work."""
        if self._constant_phases:
            index = 0
        else:
            cycle_progress = (
                instructions_done / self.phase_cycle_instructions
            ) % 1.0
            index = self.phases.index_at(cycle_progress)
        key = (cluster_name, index)
        cached = self._params_cache.get(key)
        if cached is None:
            base = self.perf[cluster_name]
            phase = self.phases.phase(index)
            params = ClusterPerfParams(
                cpi=base.cpi * phase.cpi_scale,
                mem_time_per_inst=base.mem_time_per_inst * phase.mem_scale,
                activity=min(1.0, base.activity * phase.activity_scale),
                mem_freq_coupling=base.mem_freq_coupling,
                mem_ref_freq_hz=base.mem_ref_freq_hz,
            )
            cached = (params, self.l2d_per_inst * phase.l2d_scale)
            self._params_cache[key] = cached
        return cached

    # --- performance queries ------------------------------------------------------
    def ips(
        self,
        cluster_name: str,
        frequency_hz: float,
        instructions_done: float = 0.0,
        mem_slowdown: float = 1.0,
    ) -> float:
        """Instructions per second on ``cluster_name`` at ``frequency_hz``.

        ``mem_slowdown`` >= 1 scales the memory-stall component; the
        simulator uses it to model memory contention between co-runners.
        """
        check_positive("frequency_hz", frequency_hz)
        if mem_slowdown < 1.0:
            raise ValueError("mem_slowdown must be >= 1")
        params, _ = self.params_at(cluster_name, instructions_done)
        seconds_per_inst = (
            params.cpi / frequency_hz
            + params.effective_mem_time(frequency_hz) * mem_slowdown
        )
        return 1.0 / seconds_per_inst

    def max_ips(self, cluster_name: str, vf_table: VFTable) -> float:
        """IPS at the highest VF level of ``vf_table`` (phase 0)."""
        return self.ips(cluster_name, vf_table.max_level.frequency_hz)

    def min_frequency_for(
        self,
        cluster_name: str,
        vf_table: VFTable,
        qos_ips: float,
        instructions_done: float = 0.0,
    ) -> Optional[VFLevel]:
        """Lowest VF level on ``cluster_name`` that reaches ``qos_ips``.

        Returns ``None`` when the target is unreachable even at the highest
        level (the "-1 label" case of the paper's Eq. 4).
        """
        check_positive("qos_ips", qos_ips)
        for level in vf_table:
            if (
                self.ips(cluster_name, level.frequency_hz, instructions_done)
                >= qos_ips
            ):
                return level
        return None

    def l2d_per_second(
        self,
        cluster_name: str,
        frequency_hz: float,
        instructions_done: float = 0.0,
    ) -> float:
        """L2D accesses per second at the given operating point."""
        _, l2d = self.params_at(cluster_name, instructions_done)
        return l2d * self.ips(cluster_name, frequency_hz, instructions_done)

    def __repr__(self) -> str:
        return f"AppModel({self.name!r}, suite={self.suite!r})"
