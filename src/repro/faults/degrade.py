"""Graceful-degradation state machines (self-healing, in simulated time).

Two independent paths, both owned by :class:`DegradationManager`:

* **NPU path** — ``npu`` ⇄ ``cpu_fallback``.  On an inference failure or
  timeout the manager drops to CPU inference and arms an exponential
  backoff before *re-probing* the NPU; each consecutive failure doubles
  the backoff (capped), the first success resets it.  The policy keeps
  producing migration decisions throughout — only their cost changes.
* **Safe-mode path** — ``normal`` ⇄ ``safe_mode``.  After
  ``deadline_miss_threshold`` consecutive controller-deadline misses the
  manager disables migration entirely (DVFS-only operation) for an
  exponentially growing hold, then re-enables and observes again.

All clocks are **simulated** seconds, so the state machines are exactly
as deterministic as the fault plan driving them.  Every transition is
recorded as a :class:`DegradationEvent` for the tracer and counted per
``(path, state)`` for the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DegradationEvent:
    """One state-machine transition, for the trace and diagnostics."""

    now_s: float
    path: str  # "npu" | "safe_mode"
    state: str  # entered state, e.g. "cpu_fallback", "normal"
    detail: str = ""


class BackoffState:
    """Exponential backoff in simulated time: double per failure, capped."""

    def __init__(self, initial_s: float, max_s: float) -> None:
        check_positive("initial_s", initial_s)
        check_positive("max_s", max_s)
        self.initial_s = initial_s
        self.max_s = max_s
        self._current_s = initial_s

    def next_hold_s(self) -> float:
        """Consume one hold interval; the next one is twice as long."""
        hold = self._current_s
        self._current_s = min(self.max_s, self._current_s * 2.0)
        return hold

    def reset(self) -> None:
        self._current_s = self.initial_s

    @property
    def current_s(self) -> float:
        return self._current_s


@dataclass
class DegradationManager:
    """Tracks NPU availability and safe-mode state for one run."""

    npu_backoff_initial_s: float = 1.0
    npu_backoff_max_s: float = 30.0
    deadline_miss_threshold: int = 3
    safe_mode_hold_initial_s: float = 2.0
    safe_mode_hold_max_s: float = 60.0

    events: List[DegradationEvent] = field(default_factory=list)
    transition_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    cpu_fallback_invocations: int = 0

    def __post_init__(self) -> None:
        if self.deadline_miss_threshold < 1:
            raise ValueError("deadline_miss_threshold must be >= 1")
        self._npu_ok = True
        self._npu_reprobe_at_s = 0.0
        self._npu_backoff = BackoffState(
            self.npu_backoff_initial_s, self.npu_backoff_max_s
        )
        self._consecutive_misses = 0
        self._safe_mode = False
        self._safe_mode_until_s = 0.0
        self._safe_mode_entered_s = 0.0
        self._safe_mode_accum_s = 0.0
        self._safe_backoff = BackoffState(
            self.safe_mode_hold_initial_s, self.safe_mode_hold_max_s
        )

    def _transition(self, now_s: float, path: str, state: str, detail: str = "") -> None:
        self.events.append(DegradationEvent(now_s, path, state, detail))
        key = (path, state)
        self.transition_counts[key] = self.transition_counts.get(key, 0) + 1

    # ------------------------------------------------------------------ NPU path
    def npu_mode(self, now_s: float) -> str:
        """``"npu"`` when the NPU should be used (or re-probed), else
        ``"cpu"`` while the fallback backoff still holds."""
        if self._npu_ok or now_s >= self._npu_reprobe_at_s:
            return "npu"
        return "cpu"

    def record_npu_failure(self, now_s: float, kind: str = "npu_failure") -> None:
        """An NPU call failed/timed out: (re)enter CPU fallback."""
        hold_s = self._npu_backoff.next_hold_s()
        self._npu_reprobe_at_s = now_s + hold_s
        if self._npu_ok:
            self._npu_ok = False
            self._transition(now_s, "npu", "cpu_fallback", kind)
        else:
            # Failed re-probe: stay degraded, but record the longer hold.
            self._transition(now_s, "npu", "reprobe_failed", kind)

    def record_npu_success(self, now_s: float) -> None:
        """An NPU call (first or re-probe) succeeded: self-heal."""
        if not self._npu_ok:
            self._npu_ok = True
            self._npu_backoff.reset()
            self._transition(now_s, "npu", "recovered")

    @property
    def npu_available(self) -> bool:
        return self._npu_ok

    # ------------------------------------------------------------------ safe mode
    def record_deadline_miss(self, now_s: float) -> None:
        """A controller invocation overran its deadline."""
        self._consecutive_misses += 1
        if (
            not self._safe_mode
            and self._consecutive_misses >= self.deadline_miss_threshold
        ):
            self._safe_mode = True
            self._safe_mode_entered_s = now_s
            self._safe_mode_until_s = now_s + self._safe_backoff.next_hold_s()
            self._consecutive_misses = 0
            self._transition(
                now_s, "safe_mode", "entered",
                f"{self.deadline_miss_threshold} consecutive misses",
            )

    def record_deadline_ok(self, now_s: float) -> None:
        """A controller invocation met its deadline."""
        self._consecutive_misses = 0

    def in_safe_mode(self, now_s: float) -> bool:
        """Whether migration must stay disabled (DVFS-only operation).

        Self-healing: when the exponential hold expires the manager exits
        safe mode, accumulates the time spent there, and resumes normal
        operation — a renewed miss streak re-enters with a longer hold.
        """
        if self._safe_mode and now_s >= self._safe_mode_until_s:
            self._safe_mode = False
            self._safe_mode_accum_s += now_s - self._safe_mode_entered_s
            self._transition(now_s, "safe_mode", "exited")
        return self._safe_mode

    def safe_mode_time_s(self, now_s: float) -> float:
        """Total simulated time spent in safe mode (including ongoing)."""
        total = self._safe_mode_accum_s
        if self._safe_mode:
            total += max(0.0, now_s - self._safe_mode_entered_s)
        return total

    # ------------------------------------------------------------------ reporting
    def transitions_total(self) -> int:
        return sum(self.transition_counts.values())

    def paths_exercised(self) -> List[str]:
        """Distinct degradation paths that transitioned at least once."""
        return sorted({path for path, _ in self.transition_counts})
