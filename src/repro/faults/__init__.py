"""Deterministic fault injection and graceful degradation.

See ``docs/resilience.md`` for the operator's guide: fault-plan schema
(``--faults`` / ``REPRO_FAULTS``), the degradation state machines, and
how the supervised experiment pool retries crashed cells.
"""

from repro.faults.degrade import (
    BackoffState,
    DegradationEvent,
    DegradationManager,
)
from repro.faults.injectors import FaultInjector, FaultTolerantSensor
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_SEED_ENV,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
)
from repro.faults.runtime import FaultRuntime

__all__ = [
    "BackoffState",
    "DegradationEvent",
    "DegradationManager",
    "FAULT_KINDS",
    "FAULT_SEED_ENV",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultRuntime",
    "FaultTolerantSensor",
]
